#!/usr/bin/env python
"""Run the benchmark suite and collect ``BENCH_*.json`` results.

Each benchmark file runs in its own pytest subprocess so one failing
bench cannot take down the rest of the suite.  With ``--best-of N`` the
whole selected suite runs N times into temporary directories and the
per-benchmark results are merged metric-by-metric (minimum for
lower-is-better, maximum for higher-is-better, last run for
informational metrics) before landing in ``--results-dir`` — the
standard noise defence for wall-clock numbers.

Typical usage::

    # quick CI-scale trajectory run, 3 repetitions, merged results
    python scripts/bench_all.py --suite quick --best-of 3 \
        --results-dir /tmp/bench-current --scale 0.05 --subjects 2

    # then gate against the committed baseline
    python scripts/check_regression.py --baseline benchmarks/baseline \
        --current /tmp/bench-current --portable-only
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.perf.benchjson import (  # noqa: E402
    BenchResult,
    load_results_dir,
    merge_best,
)

#: The reduced suite CI runs every push: fast benches whose portable
#: metrics (speedups, hit rates, accuracy ratios) are machine-comparable.
QUICK_SUITE = (
    "bench_index_speedup.py",
    "bench_obs_overhead.py",
    "bench_server_throughput.py",
    "bench_caching_interactivity.py",
    "bench_ablation_sharing.py",
    "bench_ablation_sampling.py",
    "bench_anytime.py",
    "bench_macro_workload.py",
)


def suite_files(suite: str) -> list[str]:
    if suite == "quick":
        return list(QUICK_SUITE)
    return sorted(
        path.name for path in (REPO / "benchmarks").glob("bench_*.py")
    )


def run_suite_once(
    files: list[str], results_dir: Path, env: dict[str, str]
) -> list[str]:
    """Run each bench file in its own pytest process; returns failures."""
    failures: list[str] = []
    run_env = dict(env, REPRO_BENCH_RESULTS=str(results_dir))
    for name in files:
        started = time.perf_counter()
        completed = subprocess.run(
            [
                sys.executable,
                "-m",
                "pytest",
                str(REPO / "benchmarks" / name),
                "-q",
                "-p",
                "no:cacheprovider",
                "--benchmark-disable-gc",
            ],
            cwd=REPO,
            env=run_env,
            capture_output=True,
            text=True,
        )
        seconds = time.perf_counter() - started
        status = "ok" if completed.returncode == 0 else "FAILED"
        print(f"  {name:<45s} {status:>6s}  {seconds:7.1f}s", flush=True)
        if completed.returncode != 0:
            failures.append(name)
            tail = (completed.stdout + completed.stderr).splitlines()[-15:]
            for line in tail:
                print(f"    | {line}")
    return failures


def merge_runs(run_dirs: list[Path], out_dir: Path) -> dict[str, BenchResult]:
    """Best-of-k merge every benchmark seen across the repetition dirs."""
    by_name: dict[str, list[BenchResult]] = {}
    for run_dir in run_dirs:
        results, problems = load_results_dir(run_dir)
        for filename, errors in problems.items():
            print(f"  invalid {filename}: {'; '.join(errors)}")
        for name, result in results.items():
            by_name.setdefault(name, []).append(result)
    out_dir.mkdir(parents=True, exist_ok=True)
    merged: dict[str, BenchResult] = {}
    for name, runs in sorted(by_name.items()):
        merged[name] = merge_best(runs)
        path = out_dir / f"BENCH_{name}.json"
        payload = merged[name].to_dict()
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True, allow_nan=False)
            + "\n",
            encoding="utf-8",
        )
    # keep the human-readable .txt tables from the final repetition
    for txt in sorted(run_dirs[-1].glob("*.txt")):
        shutil.copy2(txt, out_dir / txt.name)
    return merged


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="run the benchmark suite, emitting BENCH_*.json results"
    )
    parser.add_argument(
        "--suite",
        choices=("quick", "full"),
        default="quick",
        help="quick = the CI subset; full = every benchmarks/bench_*.py",
    )
    parser.add_argument(
        "--best-of",
        type=int,
        default=1,
        metavar="N",
        help="repeat the suite N times and merge best-of-N per metric",
    )
    parser.add_argument(
        "--bench",
        action="append",
        default=None,
        metavar="FILE",
        help="restrict to this bench file (repeatable); filters the"
        " selected suite, e.g. --bench bench_index_speedup.py",
    )
    parser.add_argument(
        "--results-dir",
        default=str(REPO / "benchmarks" / "results"),
        help="where the merged BENCH_*.json files land",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="sets REPRO_BENCH_SCALE (dataset scale factor)",
    )
    parser.add_argument(
        "--subjects",
        type=int,
        default=None,
        help="sets REPRO_BENCH_SUBJECTS (simulated subjects per cell)",
    )
    args = parser.parse_args(argv)
    if args.best_of < 1:
        parser.error("--best-of must be >= 1")

    env = dict(os.environ)
    src = str(REPO / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )
    if args.scale is not None:
        env["REPRO_BENCH_SCALE"] = str(args.scale)
    if args.subjects is not None:
        env["REPRO_BENCH_SUBJECTS"] = str(args.subjects)

    files = suite_files(args.suite)
    if args.bench:
        wanted = set(args.bench)
        unknown = wanted.difference(files)
        if unknown:
            parser.error(
                f"--bench not in the {args.suite} suite:"
                f" {', '.join(sorted(unknown))}"
            )
        files = [name for name in files if name in wanted]
    all_failures: set[str] = set()
    with tempfile.TemporaryDirectory(prefix="bench_all_") as tmp:
        run_dirs = []
        for repetition in range(args.best_of):
            run_dir = Path(tmp) / f"run{repetition}"
            run_dir.mkdir()
            print(
                f"== repetition {repetition + 1}/{args.best_of} "
                f"({args.suite} suite, {len(files)} benches) =="
            )
            all_failures.update(run_suite_once(files, run_dir, env))
            run_dirs.append(run_dir)
        merged = merge_runs(run_dirs, Path(args.results_dir))

    print(
        f"wrote {len(merged)} BENCH_*.json results to {args.results_dir}"
        + (f" (best of {args.best_of})" if args.best_of > 1 else "")
    )
    if all_failures:
        print(f"FAILED benches: {', '.join(sorted(all_failures))}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
