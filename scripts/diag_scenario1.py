"""Dev diagnostic: per-mode exposure rates over several Scenario-I instances.

Usage: python scripts/diag_scenario1.py [n_instances] [dataset]
"""
import sys
import time

from repro import SubDEx, SubDExConfig, RecommenderConfig
from repro.core.modes import ExplorationMode
from repro.datasets import movielens, yelp
from repro.userstudy import make_scenario1_task, sample_path

n_instances = int(sys.argv[1]) if len(sys.argv) > 1 else 4
dataset = sys.argv[2] if len(sys.argv) > 2 else "yelp"
factory = {"yelp": lambda s: yelp(seed=s, scale_factor=0.03),
           "movielens": lambda s: movielens(seed=s, scale_factor=0.08)}[dataset]
cfg = SubDExConfig(recommender=RecommenderConfig(max_values_per_attribute=5))

totals = {m: [] for m in ExplorationMode}
t_start = time.time()
for i in range(n_instances):
    task = make_scenario1_task(factory(2 + i), seed=5 + i)
    engine = SubDEx(task.database, cfg)
    print(f"instance {i}:")
    for t in task.targets:
        print("   ", t.describe())
    for mode in ExplorationMode:
        exposures = []
        for ps in range(2):
            path = sample_path(engine, task, mode, "high", 7, seed=100 + ps)
            exposures.append(tuple(sorted(task.exposed_in_path(path))))
        totals[mode].extend(len(e) for e in exposures)
        print(f"    {mode.short}: exposures {exposures}")
print(f"\n=== mean exposed of 2 ({time.time()-t_start:.0f}s) ===")
for mode, counts in totals.items():
    print(f"  {mode.short}: {sum(counts)/len(counts):.2f}")
