#!/usr/bin/env python
"""Gate current ``BENCH_*.json`` results against a committed baseline.

Thin wrapper over :func:`repro.perf.regression.compare_dirs` — the
comparison rules (relative threshold, absolute wall-clock noise floor,
informational metrics never gated, missing/invalid results fail) live in
the library so tests exercise them directly.

Exit status: 0 when nothing regressed, 1 when any baseline benchmark is
missing, schema-invalid, or worse than ``--threshold`` allows.

Typical CI invocation (machine-independent metrics only)::

    python scripts/check_regression.py \
        --baseline benchmarks/baseline --current /tmp/bench-current \
        --portable-only
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.perf.regression import (  # noqa: E402
    DEFAULT_MIN_SECONDS,
    DEFAULT_THRESHOLD,
    compare_dirs,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="compare BENCH_*.json results against a baseline"
    )
    parser.add_argument(
        "--baseline",
        default=str(REPO / "benchmarks" / "baseline"),
        help="directory holding the committed baseline BENCH_*.json files",
    )
    parser.add_argument(
        "--current",
        default=str(REPO / "benchmarks" / "results"),
        help="directory holding the current run's BENCH_*.json files",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="relative worseness tolerated before a metric regresses "
        f"(default {DEFAULT_THRESHOLD})",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=DEFAULT_MIN_SECONDS,
        help="absolute delta below which second-valued metrics never "
        f"regress (default {DEFAULT_MIN_SECONDS})",
    )
    parser.add_argument(
        "--only",
        action="append",
        metavar="BENCH",
        help="gate only the named benchmark (repeatable); other baseline "
        "benches are ignored instead of counting as missing",
    )
    parser.add_argument(
        "--portable-only",
        action="store_true",
        help="gate only machine-independent metrics (ratios, rates); "
        "absolute timings are reported but never fail",
    )
    args = parser.parse_args(argv)

    if not Path(args.baseline).is_dir():
        print(f"baseline directory not found: {args.baseline}")
        return 1
    report = compare_dirs(
        args.baseline,
        args.current,
        threshold=args.threshold,
        min_seconds=args.min_seconds,
        portable_only=args.portable_only,
        only=args.only,
    )
    print(report.render())
    if report.failed:
        print("REGRESSION GATE: FAILED")
        return 1
    print("REGRESSION GATE: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
