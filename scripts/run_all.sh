#!/usr/bin/env bash
# Full verification run: the complete test suite and every benchmark,
# teeing outputs to the repository root (the reproduction deliverables).
set -u
cd "$(dirname "$0")/.."

python -m pytest tests/ 2>&1 | tee test_output.txt
python -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt
