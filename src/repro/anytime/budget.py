"""Budget precedence: one rule for ``X-Deadline-Ms`` vs ``budget_ms``.

A *deadline* is a hard limit — overruns unwind with
:class:`~repro.resilience.deadline.DeadlineExceeded` (HTTP 504).  A
*budget* is a soft limit — the anytime loop cuts at the next phase
boundary and returns its best-so-far.  When a request carries both, the
smaller wins: a budget larger than the remaining deadline can never be
honoured (the 504 fires first), and a deadline larger than the budget
just means the soft cut lands before the hard one.

Every layer (HTTP front, worker RPC, engine loop) derives its effective
limit through these helpers so the precedence rule lives in one place.
"""

from __future__ import annotations

from ..resilience.deadline import Deadline

__all__ = ["budget_deadline", "effective_deadline", "parse_budget_ms"]


def parse_budget_ms(raw: object) -> int | None:
    """Validate a wire-supplied ``budget_ms`` (``None`` passes through).

    Accepts integers and integer strings (query parameters arrive as
    strings); everything else — floats included — is rejected rather
    than silently truncated.
    """
    if raw is None:
        return None
    if isinstance(raw, str):
        try:
            raw = int(raw)
        except ValueError:
            raise ValueError(
                f"budget_ms must be an integer >= 1, got {raw!r}"
            ) from None
    if isinstance(raw, bool) or not isinstance(raw, int):
        raise ValueError(f"budget_ms must be an integer >= 1, got {raw!r}")
    if raw < 1:
        raise ValueError(f"budget_ms must be >= 1, got {raw}")
    return raw


def budget_deadline(budget_ms: int | None) -> Deadline | None:
    """A fresh soft-limit :class:`Deadline` for ``budget_ms``, if any."""
    if budget_ms is None:
        return None
    return Deadline(budget_ms / 1000.0)


def effective_deadline(
    deadline: Deadline | None, budget: Deadline | None
) -> Deadline | None:
    """The binding limit of a hard deadline and a soft budget: smaller wins."""
    if deadline is None:
        return budget
    if budget is None:
        return deadline
    return budget if budget.remaining < deadline.remaining else deadline
