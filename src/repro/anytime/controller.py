"""The anytime controller: live load signals → a quality-ladder rung.

The serving layer already has three honest load signals: the admission
gate's in-flight count against its soft/hard limits, the dataset circuit
breakers, and how long recent recommendation requests actually took
(tracked here as an EWMA).  The controller folds them into one rung
choice so recommendation traffic *steps down the ladder* under load
instead of being shed with 503 — and steps back up by itself once
pressure clears, because every signal is read live at selection time.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Callable, Iterable

from .ladder import QualityLadder, QualityRung

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..resilience.gate import AdmissionGate

__all__ = ["AnytimeController"]


class AnytimeController:
    """Selects a ladder rung from gate occupancy, latency EWMA, breakers.

    ``breaker_states`` is a zero-argument callable yielding the current
    breaker state strings (``"closed"`` / ``"half_open"`` / ``"open"``);
    an open breaker means the dataset layer is already failing, so the
    only honest answer is the cached rung.
    """

    def __init__(
        self,
        gate: "AdmissionGate | None" = None,
        ladder: QualityLadder | None = None,
        latency_target_ms: float = 500.0,
        ewma_alpha: float = 0.2,
        breaker_states: Callable[[], Iterable[str]] | None = None,
    ) -> None:
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        self._gate = gate
        self.ladder = ladder or QualityLadder()
        self._latency_target_ms = latency_target_ms
        self._alpha = ewma_alpha
        self._breaker_states = breaker_states
        self._lock = threading.Lock()
        self._ewma_ms: float | None = None
        #: rung label → requests answered at that rung
        self._rung_requests: dict[str, int] = {}
        self._partials = 0
        self._snapshots = 0
        self._forced_cuts = 0
        self._cache_serves = 0

    # -- signals -------------------------------------------------------------
    def observe_latency(self, seconds: float) -> None:
        """Feed one recommendation request's wall time into the EWMA."""
        millis = max(0.0, seconds * 1000.0)
        with self._lock:
            if self._ewma_ms is None:
                self._ewma_ms = millis
            else:
                self._ewma_ms += self._alpha * (millis - self._ewma_ms)

    @property
    def latency_ewma_ms(self) -> float | None:
        with self._lock:
            return self._ewma_ms

    # -- selection -----------------------------------------------------------
    def select_rung(self, overloaded: bool = False) -> QualityRung:
        """The rung recommendation traffic should run at, right now.

        ``overloaded`` marks a request admitted past the hard limit
        (degradable overflow): the server is beyond its worker budget, so
        the only spend-nothing answer — the cached rung — is correct.
        Softer signals each cost one rung: occupancy past the soft limit,
        and a latency EWMA over target.  An open dataset breaker forces
        the cached rung regardless.
        """
        if self._breaker_states is not None:
            if any(state == "open" for state in self._breaker_states()):
                return QualityRung.CACHED
        if overloaded:
            return QualityRung.CACHED
        steps = 0
        if self._gate is not None:
            counters = self._gate.counters()
            inflight = counters["inflight"]
            if inflight > counters["hard_limit"]:
                # someone (this very request) was overflow-admitted past
                # the worker budget: spend nothing
                return QualityRung.CACHED
            if inflight >= counters["hard_limit"]:
                steps += 2
            elif inflight > counters["soft_limit"]:
                steps += 1
        with self._lock:
            over_target = (
                self._ewma_ms is not None
                and self._ewma_ms > self._latency_target_ms
            )
        if over_target:
            steps += 1
        return QualityRung(min(steps, int(QualityRung.CACHED)))

    # -- accounting ----------------------------------------------------------
    def record(
        self,
        rung: QualityRung,
        partial: bool = False,
        snapshots: int = 0,
        forced_cut: bool = False,
    ) -> None:
        with self._lock:
            label = rung.label
            self._rung_requests[label] = self._rung_requests.get(label, 0) + 1
            if partial:
                self._partials += 1
            self._snapshots += snapshots
            if forced_cut:
                self._forced_cuts += 1
            if rung is QualityRung.CACHED:
                self._cache_serves += 1

    def counters(self) -> dict[str, object]:
        with self._lock:
            return {
                "rung_requests": dict(self._rung_requests),
                "partials": self._partials,
                "snapshots": self._snapshots,
                "forced_cuts": self._forced_cuts,
                "cache_serves": self._cache_serves,
                "latency_ewma_ms": self._ewma_ms,
            }
