"""The quality ladder: graded cheap-answer variants of recommendation scoring.

The paper's CI/MAB pruning (Alg. 3, SAR) is naturally anytime: partial
phase estimates already rank candidates, so cutting work early trades
quality for latency instead of failing.  The ladder names the discrete
trade-off points the serving layer can stand on, cheapest last:

``FULL``
    the configured pipeline, every candidate, exact previews;
``CI_ONLY``
    confidence-interval pruning only (no SAR pass) on full-pipeline
    previews, and a generous candidate cap;
``REDUCED_POOL``
    the pressure-sized candidate pool — recommendation quality degrades
    before availability does;
``SAMPLED``
    a strided sample of the reduced pool scored with single-phase
    previews — a fast sketch of the neighbourhood;
``CACHED``
    no scoring at all: serve the last full-quality answer (the stored
    step recommendations), clearly flagged stale.

A :class:`RungPlan` is deliberately plain data (ints and strings, no
engine imports) so the front can pick a rung and ship the plan to a
cluster worker over the existing IPC envelope.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["QualityRung", "RungPlan", "QualityLadder"]


class QualityRung(enum.IntEnum):
    """One step of the degradation ladder (higher value = cheaper)."""

    FULL = 0
    CI_ONLY = 1
    REDUCED_POOL = 2
    SAMPLED = 3
    CACHED = 4

    @property
    def label(self) -> str:
        return self.name.lower()

    @classmethod
    def from_label(cls, label: str) -> "QualityRung":
        try:
            return cls[label.upper()]
        except KeyError:
            raise ValueError(f"unknown quality rung {label!r}") from None


@dataclass(frozen=True)
class RungPlan:
    """What one rung is allowed to spend, in engine-agnostic terms.

    ``candidate_cap`` bounds how many neighbourhood operations are scored
    (``None`` = all); ``sample_stride`` scores every ``stride``-th
    candidate of the capped pool; ``preview_phases`` overrides the
    preview generator's phase count; ``pruning`` overrides its pruning
    strategy (a :class:`~repro.core.pruning.PruningStrategy` value string,
    honoured only when previews run the full pipeline); ``use_cached``
    skips scoring entirely.
    """

    rung: QualityRung
    candidate_cap: int | None = None
    sample_stride: int = 1
    preview_phases: int | None = None
    pruning: str | None = None
    use_cached: bool = False

    @property
    def label(self) -> str:
        return self.rung.label


class QualityLadder:
    """Maps each :class:`QualityRung` to its :class:`RungPlan`.

    The caps are tunable so deployments can widen or narrow the rungs;
    the defaults keep each rung strictly no more expensive than the one
    above it (``REDUCED_POOL`` matches the existing
    ``pressure_candidate_cap`` degradation).
    """

    def __init__(
        self,
        ci_only_cap: int = 48,
        reduced_pool_cap: int = 16,
        sampled_cap: int = 16,
        sample_stride: int = 2,
    ) -> None:
        if reduced_pool_cap < 1 or sampled_cap < 1 or ci_only_cap < 1:
            raise ValueError("ladder candidate caps must be >= 1")
        if sample_stride < 1:
            raise ValueError(f"sample_stride must be >= 1, got {sample_stride}")
        self._plans = {
            QualityRung.FULL: RungPlan(QualityRung.FULL),
            QualityRung.CI_ONLY: RungPlan(
                QualityRung.CI_ONLY,
                candidate_cap=ci_only_cap,
                pruning="ci",
            ),
            QualityRung.REDUCED_POOL: RungPlan(
                QualityRung.REDUCED_POOL,
                candidate_cap=reduced_pool_cap,
            ),
            QualityRung.SAMPLED: RungPlan(
                QualityRung.SAMPLED,
                candidate_cap=sampled_cap,
                sample_stride=sample_stride,
                preview_phases=1,
            ),
            QualityRung.CACHED: RungPlan(
                QualityRung.CACHED, candidate_cap=0, use_cached=True
            ),
        }

    def plan(self, rung: QualityRung) -> RungPlan:
        return self._plans[rung]

    def rungs(self) -> tuple[QualityRung, ...]:
        return tuple(QualityRung)
