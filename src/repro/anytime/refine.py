"""Refinement tokens: background jobs that finish what a budget cut short.

A partial (or degraded-rung) recommendation answer carries a token; the
server keeps improving the answer in a background thread and clients
poll ``GET .../recommendations/refine/<token>`` until the full-quality
result is ready.  The store is deliberately process-local state — in
cluster mode each worker owns the tokens it minted, so a worker that is
SIGKILLed mid-refinement comes back with an *empty* store and polls for
its lost tokens answer a typed ``refinement_lost`` error (never a hang,
never a 500); the client simply re-requests with a budget.

Jobs and polls are bounded: a capacity cap evicts the oldest finished
job first, and finished jobs expire after a TTL so an abandoned token
cannot pin its result forever.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from ..exceptions import ReproError
from ..obs import span as obs_span

__all__ = ["RefinementLostError", "RefinementStore"]


class RefinementLostError(ReproError):
    """The token names no live refinement job (HTTP 410, typed).

    Raised for unknown, expired and evicted tokens alike — including
    tokens minted by a worker that died before finishing.  The remedy is
    always the same: issue a fresh budgeted request.
    """

    def __init__(self, token: str) -> None:
        super().__init__(
            f"refinement {token!r} is not (or no longer) tracked here; "
            "re-request with a budget to start a new one"
        )
        self.token = token


class _Job:
    __slots__ = ("token", "status", "result", "error", "created", "finished")

    def __init__(self, token: str, created: float) -> None:
        self.token = token
        self.status = "pending"
        self.result: dict[str, Any] | None = None
        self.error: str | None = None
        self.created = created
        self.finished: float | None = None


class RefinementStore:
    """Bounded, TTL-evicting registry of background refinement jobs."""

    def __init__(
        self,
        capacity: int = 64,
        ttl_seconds: float = 600.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._ttl = ttl_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._jobs: dict[str, _Job] = {}
        self._counts = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "evicted": 0,
            "expired": 0,
            "polls": 0,
            "lost_polls": 0,
        }

    # -- lifecycle -----------------------------------------------------------
    def submit(self, token: str, fn: Callable[[], dict[str, Any]]) -> str:
        """Run ``fn`` on a daemon thread; its dict return becomes the result.

        The job is registered *before* the thread starts so a poll racing
        the submission sees ``pending`` rather than ``refinement_lost``.
        """
        job = _Job(token, self._clock())
        with self._lock:
            self._jobs[token] = job
            self._counts["submitted"] += 1
            self._evict_locked()

        def run() -> None:
            with self._lock:
                if self._jobs.get(token) is not job:
                    return  # evicted before it ever ran
                job.status = "running"
            try:
                with obs_span("anytime.refine", token=token):
                    result = fn()
                with self._lock:
                    job.result = result
                    job.status = "done"
                    job.finished = self._clock()
                    self._counts["completed"] += 1
            except Exception as error:  # noqa: BLE001 - surfaced via poll
                with self._lock:
                    job.error = f"{type(error).__name__}: {error}"
                    job.status = "failed"
                    job.finished = self._clock()
                    self._counts["failed"] += 1

        threading.Thread(
            target=run, name=f"refine-{token[:8]}", daemon=True
        ).start()
        return token

    def poll(self, token: str) -> dict[str, Any]:
        """The job's current state; raises :class:`RefinementLostError`."""
        with self._lock:
            self._evict_locked()
            self._counts["polls"] += 1
            job = self._jobs.get(token)
            if job is None:
                self._counts["lost_polls"] += 1
                raise RefinementLostError(token)
            payload: dict[str, Any] = {"token": token, "status": job.status}
            if job.status == "done" and job.result is not None:
                payload.update(job.result)
            if job.status == "failed":
                payload["error"] = job.error
            return payload

    # -- bookkeeping ---------------------------------------------------------
    def _evict_locked(self) -> None:
        now = self._clock()
        expired = [
            token
            for token, job in self._jobs.items()
            if job.finished is not None and now - job.finished > self._ttl
        ]
        for token in expired:
            del self._jobs[token]
            self._counts["expired"] += 1
        while len(self._jobs) > self._capacity:
            # oldest finished job first; oldest overall as a last resort
            victim = min(
                self._jobs.values(),
                key=lambda j: (j.finished is None, j.created),
            )
            del self._jobs[victim.token]
            self._counts["evicted"] += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

    def counters(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)
