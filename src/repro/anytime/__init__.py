"""``repro.anytime`` — budget-bounded progressive recommendations.

The recommendation path is naturally anytime: the CI/MAB pruning of the
phased framework (paper Alg. 3, SAR) produces monotonically improving
partial rankings, so a time budget can cut the candidate loop at a phase
boundary and return the best-so-far instead of failing with 504/503.
This package holds the pieces the serving layers compose:

* :mod:`repro.anytime.ladder` — the quality ladder (full → CI-only →
  reduced pool → sampled → cached) as plain, IPC-shippable plans;
* :mod:`repro.anytime.controller` — live load signals (admission-gate
  occupancy, latency EWMA, breaker state) → a ladder rung;
* :mod:`repro.anytime.partial` — partial results and their
  ``completeness`` descriptors;
* :mod:`repro.anytime.budget` — the ``X-Deadline-Ms`` vs ``budget_ms``
  precedence rule (smaller wins, everywhere);
* :mod:`repro.anytime.refine` — refinement tokens whose background jobs
  finish what the budget cut short.

The cooperative loop itself lives on
:meth:`repro.core.recommend.RecommendationBuilder.recommend_anytime`;
with no budget and no plan it reproduces ``recommend`` exactly, so the
unbudgeted path stays byte-identical.
"""

from .budget import budget_deadline, effective_deadline, parse_budget_ms
from .controller import AnytimeController
from .ladder import QualityLadder, QualityRung, RungPlan
from .partial import AnytimeRecommendation, Completeness
from .refine import RefinementLostError, RefinementStore

__all__ = [
    "AnytimeController",
    "AnytimeRecommendation",
    "Completeness",
    "QualityLadder",
    "QualityRung",
    "RefinementLostError",
    "RefinementStore",
    "RungPlan",
    "budget_deadline",
    "effective_deadline",
    "parse_budget_ms",
]
