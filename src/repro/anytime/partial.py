"""Partial recommendation results and their completeness descriptors.

An anytime run answers *something* by its budget; the
:class:`Completeness` descriptor says exactly how much of the full
computation backs that answer — the candidate universe size, how much of
it was scanned before the cut, the pruning confidence of the previews
and the ladder rung that shaped the run — so clients (and the
consistency tests) can reason about the gap to the full-run oracle
instead of guessing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a core cycle
    from ..core.recommend import ScoredOperation

from .ladder import QualityRung

__all__ = ["Completeness", "AnytimeRecommendation"]


@dataclass(frozen=True)
class Completeness:
    """How much of the full computation backs a returned answer.

    ``candidates_total`` is the size of the full-run candidate universe
    (before any cap or sampling); ``candidates_scanned`` is how many of
    them were submitted for scoring before the budget cut;
    ``candidates_scored`` how many survived the size/redundancy gates
    with a preview.  ``complete`` is True only when the answer is
    exactly what an unbudgeted full-rung run would have produced.
    ``pruning_confidence`` is ``1 - delta`` for pruned previews and 1.0
    for exact ones; ``snapshots`` counts the phase-boundary best-so-far
    cuts the cooperative loop passed through.
    """

    rung: QualityRung
    candidates_total: int
    candidates_scanned: int
    candidates_scored: int
    complete: bool
    pruning_confidence: float = 1.0
    snapshots: int = 0
    budget_cut: bool = False

    @property
    def fraction_scanned(self) -> float:
        if self.candidates_total <= 0:
            return 0.0
        return self.candidates_scanned / self.candidates_total

    def to_json(self) -> dict[str, Any]:
        return {
            "rung": self.rung.label,
            "complete": self.complete,
            "candidates_total": self.candidates_total,
            "candidates_scanned": self.candidates_scanned,
            "candidates_scored": self.candidates_scored,
            "fraction_scanned": round(self.fraction_scanned, 6),
            "pruning_confidence": self.pruning_confidence,
            "snapshots": self.snapshots,
            "budget_cut": self.budget_cut,
        }


@dataclass(frozen=True)
class AnytimeRecommendation:
    """The best-so-far top-o plus how trustworthy it is."""

    recommendations: tuple["ScoredOperation", ...]
    completeness: Completeness
    elapsed_seconds: float = 0.0

    @property
    def is_partial(self) -> bool:
        return not self.completeness.complete

    def __iter__(self):
        return iter(self.recommendations)

    def __len__(self) -> int:
        return len(self.recommendations)
