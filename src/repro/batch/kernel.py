"""Batched interestingness scoring over stacked candidate-cube slices.

One FILTER *family* — all candidate operations adding a value of the same
(side, attribute) pair — shares a fused :class:`~repro.index.cubes.CandidateCube`.
Stacking the per-candidate cube slices of one rating-map spec gives a 3-D
count tensor

    ``stack[c, g, s]  =  #ratings of candidate c, subgroup g, score bucket s``

with shape ``(n_candidates, n_groups, scale)``, and the whole family's raw
criterion scores for that spec collapse into a handful of array passes
instead of ``n_candidates`` Python-level scorer calls.

Bitwise contract
----------------
The batch path must be *fingerprint-identical* to the per-candidate oracle
(:meth:`repro.core.interestingness.InterestingnessScorer.score`, STD/TVD
fast path), which compares exact float equality.  Every operation here is
chosen so its floating-point result matches the per-candidate code bit for
bit:

* sums of integer-valued float64 counts are exact (all totals < 2^53), so
  reduction order is irrelevant for ``totals``/``pooled``;
* element-wise IEEE ops (divide, subtract, multiply, sqrt, clip, max) are
  per-element and independent of the batch dimension;
* last-axis reductions (the TVD sums over ``scale`` buckets) reduce the
  same-length vectors with the same pairwise tree regardless of leading
  dimensions;
* the one op whose result *does* depend on operand shape — the BLAS
  matvec behind ``probs @ values`` — is performed per candidate on the
  same compacted ``(n_supported, scale)`` array the scorer builds, inside
  a small Python loop over the (few) active candidates.

Anything the contract cannot cover (non-default dispersion/peculiarity
measures, MINMAX normalisation, diversity-only selection) is rejected up
front by :func:`repro.batch.scoring.supports_batch` and falls back to the
per-candidate path.

Family fusion
-------------
:func:`batch_raw_scores` scores one spec per call; at recommendation scale
that is still thousands of calls on tiny tensors, and the fixed numpy
call overhead dominates.  :func:`batch_family_scores` therefore fuses a
family's *entire* spec list into one pass: the per-spec stacks are
concatenated along the subgroup axis and every per-spec reduction becomes
a ``reduceat`` over segment boundaries.  All fused reductions are either
exact (integer-valued sums, maxes) or last-axis (same pairwise tree), and
the agreement matvecs are grouped by supported-row count so each BLAS
call sees operands of exactly the shape the per-candidate scorer uses —
``(m, scale) @ (scale,)`` slices of a ``(p, m, scale)`` batch are
computed slice by slice by the gufunc and match the 2-D call bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.interestingness import Criterion, CriterionScores
from ..core.normalization import conciseness_01
from ..core.utility import UtilityConfig

__all__ = [
    "SpecScores",
    "FamilyScores",
    "batch_raw_scores",
    "batch_dw_column",
    "batch_family_scores",
    "batch_family_dw",
]


@dataclass(frozen=True)
class SpecScores:
    """Raw criterion columns of one spec across a family stack.

    Each array has one entry per candidate; ``n_subgroups`` is already
    zeroed where the scorer would return :meth:`CriterionScores.zero`
    (fewer than two supported subgroups).  ``informative`` marks the
    candidates whose rating map for this spec would pass
    :attr:`~repro.core.rating_maps.RatingMap.is_informative` (at least two
    subgroup rows with any ratings at all — a weaker floor than support).
    """

    conciseness: np.ndarray
    agreement: np.ndarray
    pec_self: np.ndarray
    pec_global: np.ndarray
    n_subgroups: np.ndarray
    informative: np.ndarray

    def criterion_scores(self, i: int) -> CriterionScores:
        """The scorer-equivalent :class:`CriterionScores` of candidate ``i``."""
        return CriterionScores(
            conciseness=float(self.conciseness[i]),
            agreement=float(self.agreement[i]),
            pec_self=float(self.pec_self[i]),
            pec_global=float(self.pec_global[i]),
            n_subgroups=int(self.n_subgroups[i]),
        )


def batch_raw_scores(
    stack: np.ndarray,
    group_sizes: np.ndarray,
    seen_probs: "np.ndarray | None",
    min_support: int,
    global_use_min: bool,
) -> SpecScores:
    """Score one spec's ``(n, n_groups, scale)`` stack for all candidates.

    ``group_sizes`` are the candidates' rating-group sizes (not the stack
    totals: rows with missing grouping values or invalid scores are not in
    the histogram).  ``seen_probs`` is the ``(n_seen, scale)`` probability
    stack of previously seen maps (``None`` when nothing was seen), and
    ``min_support`` the scorer's already-clamped support floor.
    """
    n, n_groups, scale = stack.shape
    zeros = np.zeros(n)
    izeros = np.zeros(n, dtype=np.int64)
    counts = stack.astype(np.float64)
    row_totals = counts.sum(axis=2)  # (n, n_groups), exact
    informative = (row_totals > 0).sum(axis=1) >= 2
    if n == 0 or n_groups == 0 or scale == 0:
        return SpecScores(zeros, zeros, zeros, zeros, izeros, informative)

    gs = np.asarray(group_sizes, dtype=np.float64)
    seen_sum = row_totals.sum(axis=1)  # exact
    # _effective_support, vectorised: max(2, ceil(min_support * min(1, seen/gs)))
    with np.errstate(divide="ignore", invalid="ignore"):
        fraction = np.minimum(1.0, seen_sum / gs)
    support = np.where(
        gs > 0,
        np.maximum(2.0, np.ceil(min_support * fraction)),
        float(min_support),
    )
    supported = row_totals >= support[:, None]
    n_sub = supported.sum(axis=1)
    active = n_sub >= 2
    if not bool(active.any()):
        return SpecScores(zeros, zeros, zeros, zeros, izeros, informative)

    safe_totals = np.where(supported, row_totals, 1.0)
    probs = counts / safe_totals[:, :, None]
    pooled = np.where(supported[:, :, None], counts, 0.0).sum(axis=1)  # exact
    pooled_sum = pooled.sum(axis=1)  # exact
    safe_pooled = np.where(pooled_sum > 0, pooled_sum, 1.0)
    pooled_p = pooled / safe_pooled[:, None]

    # self peculiarity: max over supported rows of max(TVD - noise, 0)
    tvd = 0.5 * np.abs(probs - pooled_p[:, None, :]).sum(axis=2)
    penalties = np.sqrt(scale / (8.0 * safe_totals))
    pec_self = np.where(supported, np.maximum(tvd - penalties, 0.0), 0.0).max(axis=1)

    # global peculiarity: distance of the pooled distribution to seen maps'
    if seen_probs is not None and len(seen_probs):
        dist = 0.5 * np.abs(seen_probs[None, :, :] - pooled_p[:, None, :]).sum(axis=2)
        best = dist.min(axis=1) if global_use_min else dist.max(axis=1)
        noise = np.where(
            pooled_sum > 0, np.sqrt(scale / (8.0 * safe_pooled)), 1.0
        )
        pec_global = np.maximum(0.0, best - noise)
    else:
        pec_global = zeros

    # agreement: the matvec pair must see the scorer's exact compacted
    # (n_supported, scale) operands — BLAS results depend on row count
    values = np.arange(1, scale + 1, dtype=np.float64)
    values_sq = values**2
    agreement = np.zeros(n)
    for i in np.flatnonzero(active):
        sub = counts[i][supported[i]]
        sub_totals = row_totals[i][supported[i]][:, None]
        sub_probs = sub / sub_totals
        means = sub_probs @ values
        variances = sub_probs @ values_sq - means**2
        stds = np.sqrt(np.maximum(variances, 0.0))
        sigma = float(np.average(stds, weights=sub_totals[:, 0]))
        agreement[i] = 1.0 / (1.0 + sigma)

    conciseness = np.where(active, gs / np.where(active, n_sub, 1), 0.0)
    return SpecScores(
        conciseness=conciseness,
        agreement=agreement,
        pec_self=np.where(active, pec_self, 0.0),
        pec_global=np.where(active, pec_global, 0.0),
        n_subgroups=np.where(active, n_sub, 0).astype(np.int64),
        informative=informative,
    )


def batch_dw_column(
    scores: SpecScores, weight: float, config: UtilityConfig
) -> np.ndarray:
    """One spec's DW-utility column, mirroring ``score_candidate_set``.

    SQUASH normalisation + MAX aggregation only (enforced by
    ``supports_batch``); ``weight`` is the spec's combined dimension ×
    attribute weight, constant across the family's candidates.
    """
    normalized: list[np.ndarray] = []
    for criterion in config.criteria:
        if criterion is Criterion.CONCISENESS:
            lut = {
                int(u): conciseness_01(int(u))
                for u in np.unique(scores.n_subgroups)
            }
            norm = np.array(
                [lut[int(v)] for v in scores.n_subgroups], dtype=np.float64
            )
        elif criterion is Criterion.AGREEMENT:
            floor = config.agreement_floor
            norm = np.clip(
                (scores.agreement - floor) / (1.0 - floor), 0.0, 1.0
            )
        elif criterion is Criterion.PECULIARITY_SELF:
            norm = np.clip(scores.pec_self, 0.0, 1.0)
        else:
            norm = np.clip(scores.pec_global, 0.0, 1.0)
        normalized.append(norm)
    utility = normalized[0]
    for column in normalized[1:]:
        utility = np.maximum(utility, column)
    return weight * utility


@dataclass(frozen=True)
class FamilyScores:
    """Raw criterion matrices of a whole family: ``(n_candidates, n_specs)``.

    Column ``j`` equals :func:`batch_raw_scores` on spec ``j``'s stack bit
    for bit; ``criterion_scores`` materialises one candidate × spec cell as
    the scorer-equivalent :class:`CriterionScores`.
    """

    conciseness: np.ndarray
    agreement: np.ndarray
    pec_self: np.ndarray
    pec_global: np.ndarray
    n_subgroups: np.ndarray
    informative: np.ndarray

    @property
    def n_specs(self) -> int:
        return self.conciseness.shape[1]

    def criterion_scores(self, i: int, j: int) -> CriterionScores:
        return CriterionScores(
            conciseness=float(self.conciseness[i, j]),
            agreement=float(self.agreement[i, j]),
            pec_self=float(self.pec_self[i, j]),
            pec_global=float(self.pec_global[i, j]),
            n_subgroups=int(self.n_subgroups[i, j]),
        )


def _family_scores_by_spec(
    stacks: Sequence[np.ndarray],
    group_sizes: np.ndarray,
    seen_probs: "np.ndarray | None",
    min_support: int,
    global_use_min: bool,
) -> FamilyScores:
    """Per-spec fallback assembly (degenerate shapes the fused path skips)."""
    columns = [
        batch_raw_scores(stack, group_sizes, seen_probs, min_support, global_use_min)
        for stack in stacks
    ]
    return FamilyScores(
        conciseness=np.stack([c.conciseness for c in columns], axis=1),
        agreement=np.stack([c.agreement for c in columns], axis=1),
        pec_self=np.stack([c.pec_self for c in columns], axis=1),
        pec_global=np.stack([c.pec_global for c in columns], axis=1),
        n_subgroups=np.stack([c.n_subgroups for c in columns], axis=1),
        informative=np.stack([c.informative for c in columns], axis=1),
    )


def batch_family_scores(
    stacks: Sequence[np.ndarray],
    group_sizes: np.ndarray,
    seen_probs: "np.ndarray | None",
    min_support: int,
    global_use_min: bool,
) -> FamilyScores:
    """Score every spec of a family in one fused pass.

    ``stacks[j]`` is spec ``j``'s ``(n_candidates, n_groups_j, scale)``
    count tensor (all sharing the candidate axis and scale).  Equivalent to
    calling :func:`batch_raw_scores` per spec — bitwise — but the per-spec
    reductions run as segment ``reduceat`` s over one concatenated tensor
    and the agreement loop collapses into a few batched matvecs.
    """
    n_specs = len(stacks)
    n = len(group_sizes)
    if n_specs == 0:
        empty = np.zeros((n, 0))
        return FamilyScores(
            empty, empty.copy(), empty.copy(), empty.copy(),
            np.zeros((n, 0), dtype=np.int64), np.zeros((n, 0), dtype=bool),
        )
    scale = stacks[0].shape[2]
    seg_lens = np.array([stack.shape[1] for stack in stacks], dtype=np.int64)
    if n == 0 or scale == 0 or int(seg_lens.min()) == 0:
        return _family_scores_by_spec(
            stacks, group_sizes, seen_probs, min_support, global_use_min
        )
    starts = np.zeros(n_specs, dtype=np.int64)
    np.cumsum(seg_lens[:-1], out=starts[1:])

    counts = np.concatenate(stacks, axis=1).astype(np.float64)  # (n, T, scale)
    row_totals = counts.sum(axis=2)  # (n, T), exact
    nonzero_rows = np.add.reduceat(
        (row_totals > 0).astype(np.int64), starts, axis=1
    )
    informative = nonzero_rows >= 2  # (n, n_specs)

    gs = np.asarray(group_sizes, dtype=np.float64)[:, None]  # (n, 1)
    seen_sum = np.add.reduceat(row_totals, starts, axis=1)  # (n, n_specs), exact
    with np.errstate(divide="ignore", invalid="ignore"):
        fraction = np.minimum(1.0, seen_sum / gs)
    support = np.where(
        gs > 0,
        np.maximum(2.0, np.ceil(min_support * fraction)),
        float(min_support),
    )  # (n, n_specs)
    supported = row_totals >= np.repeat(support, seg_lens, axis=1)  # (n, T)
    n_sub = np.add.reduceat(supported.astype(np.int64), starts, axis=1)
    active = n_sub >= 2  # (n, n_specs)

    safe_totals = np.where(supported, row_totals, 1.0)
    probs = counts / safe_totals[:, :, None]
    pooled = np.add.reduceat(
        np.where(supported[:, :, None], counts, 0.0), starts, axis=1
    )  # (n, n_specs, scale), exact
    pooled_sum = pooled.sum(axis=2)  # exact
    safe_pooled = np.where(pooled_sum > 0, pooled_sum, 1.0)
    pooled_p = pooled / safe_pooled[:, :, None]

    # self peculiarity: per-segment max over supported rows
    tvd = 0.5 * np.abs(probs - np.repeat(pooled_p, seg_lens, axis=1)).sum(axis=2)
    penalties = np.sqrt(scale / (8.0 * safe_totals))
    pec_self = np.maximum.reduceat(
        np.where(supported, np.maximum(tvd - penalties, 0.0), 0.0), starts, axis=1
    )

    # global peculiarity of each (candidate, spec) pooled distribution
    if seen_probs is not None and len(seen_probs):
        dist = 0.5 * np.abs(
            seen_probs[None, None, :, :] - pooled_p[:, :, None, :]
        ).sum(axis=3)  # (n, n_specs, n_seen)
        best = dist.min(axis=2) if global_use_min else dist.max(axis=2)
        noise = np.where(
            pooled_sum > 0, np.sqrt(scale / (8.0 * safe_pooled)), 1.0
        )
        pec_global = np.maximum(0.0, best - noise)
    else:
        pec_global = np.zeros((n, n_specs))

    # agreement: group the active (candidate, spec) pairs by supported-row
    # count m so each batched matvec matches the scorer's (m, scale) call
    agreement = np.zeros((n, n_specs))
    values = np.arange(1, scale + 1, dtype=np.float64)
    values_sq = values**2
    cand_idx, flat_g = np.nonzero(supported)
    if len(cand_idx):
        seg_of = np.searchsorted(starts, flat_g, side="right") - 1
        pair_ids = cand_idx * n_specs + seg_of
        # the nonzero stream is (candidate, subgroup)-ordered, so each
        # (candidate, spec) pair's supported rows form one contiguous run
        is_start = np.concatenate([[True], pair_ids[1:] != pair_ids[:-1]])
        run_starts = np.flatnonzero(is_start)
        run_lens = np.diff(np.append(run_starts, len(pair_ids)))
        keep = run_lens >= 2  # pairs the scorer treats as active
        kept_starts = run_starts[keep]
        kept_lens = run_lens[keep]
        kept_pairs = pair_ids[kept_starts]
        flat_agreement = agreement.reshape(-1)
        for m in np.unique(kept_lens):
            sel = kept_starts[kept_lens == m]
            pos = sel[:, None] + np.arange(int(m))  # (p, m) stream offsets
            rows_c = cand_idx[pos]
            rows_g = flat_g[pos]
            sub_probs = counts[rows_c, rows_g] / row_totals[rows_c, rows_g][:, :, None]
            means = sub_probs @ values
            variances = sub_probs @ values_sq - means**2
            stds = np.sqrt(np.maximum(variances, 0.0))
            weights = row_totals[rows_c, rows_g]
            # np.average(stds, weights=w), inlined: multiply → sum → divide
            sigma = np.multiply(stds, weights).sum(axis=1) / weights.sum(axis=1)
            flat_agreement[kept_pairs[kept_lens == m]] = 1.0 / (1.0 + sigma)

    conciseness = np.where(
        active, np.asarray(group_sizes, dtype=np.float64)[:, None] / np.where(active, n_sub, 1), 0.0
    )
    return FamilyScores(
        conciseness=conciseness,
        agreement=agreement,
        pec_self=np.where(active, pec_self, 0.0),
        pec_global=np.where(active, pec_global, 0.0),
        n_subgroups=np.where(active, n_sub, 0).astype(np.int64),
        informative=informative,
    )


def batch_family_dw(
    scores: FamilyScores, weights: np.ndarray, config: UtilityConfig
) -> np.ndarray:
    """The family's full ``(n_candidates, n_specs)`` DW-utility matrix.

    ``weights[j]`` is spec ``j``'s combined dimension × attribute weight.
    Column ``j`` equals ``batch_dw_column(spec_j, weights[j], config)`` bit
    for bit: the normalisations are element-wise (conciseness maps through
    the same per-``n_subgroups`` lookup values) and the MAX aggregation and
    weight multiply are element-wise too.
    """
    normalized: list[np.ndarray] = []
    for criterion in config.criteria:
        if criterion is Criterion.CONCISENESS:
            uniq = np.unique(scores.n_subgroups)
            lut = np.array([conciseness_01(int(u)) for u in uniq])
            norm = lut[np.searchsorted(uniq, scores.n_subgroups)]
        elif criterion is Criterion.AGREEMENT:
            floor = config.agreement_floor
            norm = np.clip(
                (scores.agreement - floor) / (1.0 - floor), 0.0, 1.0
            )
        elif criterion is Criterion.PECULIARITY_SELF:
            norm = np.clip(scores.pec_self, 0.0, 1.0)
        else:
            norm = np.clip(scores.pec_global, 0.0, 1.0)
        normalized.append(norm)
    utility = normalized[0]
    for column in normalized[1:]:
        utility = np.maximum(utility, column)
    return np.asarray(weights, dtype=np.float64)[None, :] * utility
