"""Family-batched candidate scoring on the recommendation hot path.

The per-candidate indexed path (:meth:`RecommendationBuilder._score_one_indexed`)
walks candidates one by one even though every clean FILTER candidate of one
(side, attribute) is a slice of the same fused cube.  This module scores a
whole *family* at once:

1. **plan** — :func:`plan_units` splits the neighbourhood into family units
   (single-added-pair FILTERs with a cube) and residue blocks (GENERALIZE,
   CHANGE, multi-valued FILTER, compounds — the per-candidate path);
2. **stack** — each family stacks its cube slices into one
   ``(candidate, subgroup, bucket)`` count tensor per spec and runs the
   bitwise-exact fused kernel (:mod:`repro.batch.kernel`) to get every
   candidate's raw criteria and DW-utility matrix in a few array passes;
3. **prune** — a candidate's Eq.-(2) utility (Σ DW over the k *selected*
   maps) is bounded above by the Σ of its top-k pool DW utilities, so
   candidates are finalised in descending-bound order and the loop stops
   once the bound falls below the o-th best exact utility.  One-shot
   requests push this further: every family is *prepared* (kernel only)
   first and a single request-global queue finalises candidates
   best-bound-first, so the threshold warms up as fast as possible;
4. **exact-score cheaply, materialise lazily** — a surviving candidate's
   *exact* utility needs only the GMM selection over its pool maps'
   profiles, not the materialised preview: profiles (subgroup means and
   sizes) come straight from the count tensors, and the same
   ``gmm_select``/``weighted_points_emd`` the oracle uses picks the same
   maps bit for bit.  The full preview — through the ordinary
   ``generate_from_counts`` pipeline with the kernel's raw scores
   injected, byte-identical to the per-candidate oracle — is materialised
   only for candidates that actually reach a returned top-o (or an
   anytime snapshot).

The anytime loop keeps its original scan order: :func:`plan_lookup` maps
every operation to its family membership, and :meth:`FamilyBatchScorer.
score_scan_block` walks a worker-sized chunk in scan order, lazily running
each family's kernel pass the first time one of its members is scanned.
Snapshot, budget-cut and ``force_cut_after`` semantics are therefore
identical to the per-candidate path — only the arithmetic is batched.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from ..core.distance import weighted_points_emd
from ..core.generator import RMSetGenerator
from ..core.gmm import gmm_select
from ..core.interestingness import (
    CriterionScores,
    DispersionMeasure,
    PeculiarityDistance,
)
from ..core.normalization import NormalizationStrategy
from ..core.rating_maps import RatingMapSpec
from ..core.utility import (
    SeenMaps,
    UtilityAggregation,
    UtilityConfig,
    dimension_weights,
)
from ..model.operations import Operation
from ..obs import span as obs_span
from ..resilience.deadline import check_deadline
from ..resilience.gate import under_pressure
from .kernel import FamilyScores, batch_family_dw, batch_family_scores

if TYPE_CHECKING:  # pragma: no cover - import cycle: index builds on core
    from ..core.recommend import RecommenderConfig, ScoredOperation
    from ..index.cubes import CandidateCube
    from ..index.facade import NeighborhoodContext

__all__ = [
    "FamilyPlan",
    "PreparedFamily",
    "PreparedRows",
    "BatchScored",
    "BatchUnit",
    "supports_batch",
    "plan_units",
    "plan_lookup",
    "FamilyBatchScorer",
]

#: Safety margin of the upper-bound prune.  The bound and the exact
#: utility are few-term sums of the same DW scores, so they can disagree
#: by a couple of ULPs (~1e-16 at these magnitudes); pruning only below
#: ``threshold - margin`` keeps every exact tie-break candidate alive
#: without giving up any real pruning.
_PRUNE_MARGIN = 1e-9


def supports_batch(config: "Any") -> bool:
    """Whether a generator config is covered by the bitwise batch kernel.

    The kernel mirrors the scorer's STD/TVD fast path under SQUASH
    normalisation and MAX aggregation (the paper's defaults).  Ablation
    configurations fall back to the per-candidate path — correctness never
    depends on batching.
    """
    utility: UtilityConfig = config.utility
    return (
        not config.diversity_only
        and utility.normalization is NormalizationStrategy.SQUASH
        and utility.aggregation is UtilityAggregation.MAX
        and utility.dispersion is DispersionMeasure.STD
        and utility.peculiarity is PeculiarityDistance.TOTAL_VARIATION
    )


@dataclass
class FamilyPlan:
    """One FILTER family: all candidates adding a value of one attribute."""

    cube: "CandidateCube"
    operations: list[Operation] = field(default_factory=list)
    codes: list[int | None] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.operations)


@dataclass
class PreparedFamily:
    """A family after the kernel pass: bounds ready, previews pending.

    ``valid`` indexes into ``family.operations``; all arrays run over the
    valid candidates only.  ``pools[c]`` is candidate ``c``'s utility-ranked
    informative pool (spec indices, at most k'), and ``dw`` the full
    DW-utility matrix.  The count tensors themselves are *not* kept — an
    evaluated candidate re-reads its rows from the family cube (the same
    joint histogram the kernel stacked, so the values are identical).
    """

    family: FamilyPlan
    valid: list[int]
    codes: np.ndarray
    group_sizes: np.ndarray
    specs: "tuple[RatingMapSpec, ...]"
    scale: int
    scores: FamilyScores
    dw: np.ndarray
    pools: list[list[int]]
    bounds: np.ndarray
    n_scored: int
    _members: "dict[int, int] | None" = None

    def candidate_of(self, member: int) -> int | None:
        """The candidate row of family member ``member`` (None if gated)."""
        if self._members is None:
            self._members = {m: c for c, m in enumerate(self.valid)}
        return self._members.get(member)

    def operation(self, c: int) -> Operation:
        return self.family.operations[self.valid[c]]

    def size_of(self, c: int) -> int:
        return int(self.group_sizes[c])

    def counts_of(self, c: int, spec: RatingMapSpec) -> np.ndarray:
        return self.family.cube.candidate_counts(int(self.codes[c]), spec)

    def labels_of(self, spec: RatingMapSpec) -> tuple:
        return self.family.cube.labels_of(spec)


@dataclass
class PreparedRows:
    """A rows-served (posting-list) candidate after the kernel pass.

    GENERALIZE/CHANGE/multi-valued-FILTER candidates have no family cube,
    but their per-spec count matrices — gathered through the ordinary
    delta/direct path, so byte-identical to the per-candidate oracle's —
    still stack into a one-candidate tensor for the fused kernel.  That
    buys them the same vectorised criteria, exact-utility bound, global
    best-bound-first pruning and lazy preview as cube families.  Exposes
    the same candidate-indexed surface as :class:`PreparedFamily` (with
    ``c`` always 0), so the evaluation/materialisation code is shared.
    """

    view: Any
    op: Operation
    specs: "tuple[RatingMapSpec, ...]"
    scale: int
    counts: "dict[RatingMapSpec, np.ndarray]"
    scores: FamilyScores
    dw: np.ndarray
    pools: list[list[int]]
    bounds: np.ndarray
    n_scored: int

    def operation(self, c: int) -> Operation:
        return self.op

    def size_of(self, c: int) -> int:
        return int(self.view.size)

    def counts_of(self, c: int, spec: RatingMapSpec) -> np.ndarray:
        return self.counts[spec]

    def labels_of(self, spec: RatingMapSpec) -> tuple:
        return self.view.labels_of(spec)


class BatchScored:
    """A batch-scored candidate: exact utility now, preview on demand.

    Ranking (and the anytime re-ranks) only needs ``operation`` and
    ``utility``; :meth:`materialize` builds the full
    :class:`~repro.core.recommend.ScoredOperation` — with the preview the
    per-candidate oracle would produce — the first time the candidate
    actually makes a returned top-o, and caches it.
    """

    __slots__ = ("operation", "utility", "_scorer", "_prepared", "_c", "_final")

    def __init__(
        self,
        operation: Operation,
        utility: float,
        scorer: "FamilyBatchScorer",
        prepared: "PreparedFamily | PreparedRows",
        c: int,
    ) -> None:
        self.operation = operation
        self.utility = utility
        self._scorer = scorer
        self._prepared = prepared
        self._c = c
        self._final: "ScoredOperation | None" = None

    def materialize(self) -> "ScoredOperation | None":
        if self._final is None:
            self._final = self._scorer.materialize_candidate(
                self._prepared, self._c, self.utility
            )
        return self._final


#: A scoring unit: a batched family or a residue block of loose candidates.
BatchUnit = "FamilyPlan | list[Operation]"


def plan_units(
    ctx: "NeighborhoodContext",
    operations: Sequence[Operation],
    residue_chunk: int,
) -> list["FamilyPlan | list[Operation]"]:
    """Split the neighbourhood into family and residue units, in first-
    appearance order (so anytime snapshots stay roughly scan-ordered)."""
    units: list[FamilyPlan | list[Operation]] = []
    families: dict[tuple, FamilyPlan] = {}
    block: list[Operation] = []
    chunk = max(1, int(residue_chunk))
    for operation in operations:
        route = ctx.filter_route(operation)
        if route is None:
            block.append(operation)
            if len(block) >= chunk:
                units.append(block)
                block = []
            continue
        cube, code = route
        key = (cube.axis.side, cube.axis.attribute)
        family = families.get(key)
        if family is None:
            family = FamilyPlan(cube)
            families[key] = family
            units.append(family)
        family.operations.append(operation)
        family.codes.append(code)
    if block:
        units.append(block)
    return units


def plan_lookup(
    ctx: "NeighborhoodContext",
    operations: Sequence[Operation],
) -> "dict[int, tuple[FamilyPlan, int] | None]":
    """Map each operation (by id) to its family membership.

    The anytime loop scans candidates in their original order — so its
    snapshot and budget-cut boundaries are exactly the per-candidate
    path's — and uses this lookup to batch the *arithmetic* by family:
    the first scanned member of a family triggers the whole family's
    kernel pass.  Residue candidates map to ``None`` (the one-candidate
    stack of :meth:`FamilyBatchScorer.prepare_rows`).
    """
    lookup: "dict[int, tuple[FamilyPlan, int] | None]" = {}
    families: dict[tuple, FamilyPlan] = {}
    for operation in operations:
        route = ctx.filter_route(operation)
        if route is None:
            lookup[id(operation)] = None
            continue
        cube, code = route
        key = (cube.axis.side, cube.axis.attribute)
        family = families.get(key)
        if family is None:
            family = FamilyPlan(cube)
            families[key] = family
        lookup[id(operation)] = (family, len(family.operations))
        family.operations.append(operation)
        family.codes.append(code)
    return lookup


class FamilyBatchScorer:
    """Scores family units for one recommendation request.

    Holds the request-scoped state the upper-bound prune needs: the top-o
    exact utilities seen so far (across families *and* residue candidates —
    the builder feeds residue scores back via :meth:`note_exact`).
    """

    def __init__(
        self,
        ctx: "NeighborhoodContext",
        config: "RecommenderConfig",
        generator: RMSetGenerator,
        seen: SeenMaps,
        o: int,
    ) -> None:
        self._ctx = ctx
        self._config = config
        self._generator = generator
        self._seen = seen
        self._o = max(1, int(o))
        gcfg = generator.config
        self._k = gcfg.k
        self._k_prime = gcfg.k_prime
        self._utility = gcfg.utility
        self._min_support = max(1, int(gcfg.utility.min_support))
        pooled = seen.pooled_distributions()
        self._seen_probs = (
            np.stack([q.probabilities() for q in pooled]) if pooled else None
        )
        self._dim_weights = dimension_weights(
            seen.dimension_history(), seen.dimensions
        )
        self._top: list[float] = []  # min-heap of the o best exact utilities
        self._lock = threading.Lock()
        self._families: "dict[int, PreparedFamily | None]" = {}
        self.stats = {
            "families": 0,
            "candidates": 0,
            "batched": 0,
            "scored": 0,
            "evaluated": 0,
            "pruned": 0,
            "materialized": 0,
        }

    # -- the global exact-utility threshold ---------------------------------
    def note_exact(self, utility: float) -> None:
        """Record one candidate's exact utility (family or residue path)."""
        with self._lock:
            if len(self._top) < self._o:
                heapq.heappush(self._top, utility)
            elif utility > self._top[0]:
                heapq.heapreplace(self._top, utility)

    def _threshold(self) -> float:
        with self._lock:
            if len(self._top) < self._o:
                return float("-inf")
            return self._top[0]

    # -- per-spec weights (constant across a family's candidates) -----------
    def _spec_weight(self, spec: RatingMapSpec) -> float:
        weight = (
            self._dim_weights[spec.dimension]
            if self._utility.use_dimension_weights
            else 1.0
        )
        if self._utility.use_attribute_weights:
            weight *= self._seen.attribute_weight((spec.side, spec.attribute))
        return weight

    # -- family scoring ------------------------------------------------------
    def score_scan_block(
        self,
        operations: Sequence[Operation],
        lookup: "dict[int, tuple[FamilyPlan, int] | None]",
    ) -> tuple["list[BatchScored | None]", int]:
        """Score one scan-ordered block (the anytime form).

        Candidates are visited in their original scan order — so snapshot
        contents, best-so-far rankings and budget-cut boundaries are
        identical to the per-candidate path — while each family's kernel
        pass still runs exactly once, triggered lazily by its first
        scanned member.  Returns per-operation results aligned with
        ``operations`` (``None`` for size-gated, empty-pool and
        bound-pruned candidates) plus the number of *scored* candidates —
        those whose preview pool is non-empty, whether or not the prune
        skipped their evaluation (a pruned candidate provably cannot sit
        in the current top-o, so prunes never change a snapshot).
        """
        with obs_span("batch.scan", candidates=len(operations)) as sp:
            results: "list[BatchScored | None]" = [None] * len(operations)
            n_scored = evaluated = pruned = 0
            for i, operation in enumerate(operations):
                check_deadline()
                member = lookup.get(id(operation))
                if member is None:
                    ready: "PreparedFamily | PreparedRows | None" = (
                        self.prepare_rows(operation)
                    )
                    c = 0
                    if ready is None:
                        continue
                else:
                    family, index = member
                    ready = self._family(family)
                    if ready is None:
                        continue
                    at = ready.candidate_of(index)
                    if at is None or not ready.pools[at]:
                        continue
                    c = at
                n_scored += 1
                if ready.bounds[c] < self._threshold() - _PRUNE_MARGIN:
                    pruned += 1
                    continue
                results[i] = self.evaluate_candidate(ready, c)
                evaluated += 1
            sp.set(scored=n_scored, evaluated=evaluated, pruned=pruned)
        with self._lock:
            self.stats["evaluated"] += evaluated
            self.stats["pruned"] += pruned
        return results, n_scored

    def _family(self, family: FamilyPlan) -> "PreparedFamily | None":
        """The family's kernel pass, run once on first scanned member."""
        key = id(family)
        if key not in self._families:
            self._families[key] = self.prepare_family(family)
        return self._families[key]

    def prepare_family(self, family: FamilyPlan) -> "PreparedFamily | None":
        """Kernel pass only: raw criteria, DW matrix and utility bounds.

        One-shot requests prepare every family first and finalise through
        :meth:`finalize_prepared`, which maximises what the shared
        threshold can prune.  Returns ``None`` when no candidate survives
        the size gates.
        """
        axis = family.cube.axis
        with obs_span(
            "batch.score",
            side=axis.side.value,
            attribute=axis.attribute,
            candidates=len(family),
        ) as sp:
            prepared = self._prepare(family)
            sp.set(scored=prepared.n_scored if prepared is not None else 0)
        return prepared

    def _prepare(self, family: FamilyPlan) -> "PreparedFamily | None":
        config = self._config
        cube = family.cube
        parent_size = self._ctx.parent_size
        sizes = [
            0 if code is None else cube.candidate_size(code)
            for code in family.codes
        ]
        # same gates as _score_one_indexed: size floor, then the FILTER
        # redundancy test (child ⊆ parent, so equal size ⇒ equal rows)
        valid = [
            i
            for i, size in enumerate(sizes)
            if size >= config.min_group_size and size != parent_size
        ]
        prepared: "PreparedFamily | None" = None
        n_scored = 0
        if valid:
            self._ctx.count_cube_candidates(len(valid))
            codes = np.array([family.codes[i] for i in valid], dtype=np.intp)
            group_sizes = np.array([sizes[i] for i in valid], dtype=np.int64)
            specs = cube.specs
            stacks = []
            for spec in specs:
                check_deadline()
                stacks.append(cube.stacked_counts(codes, spec))
            scores = batch_family_scores(
                stacks,
                group_sizes,
                self._seen_probs,
                self._min_support,
                self._utility.global_use_min,
            )
            weights = np.array([self._spec_weight(spec) for spec in specs])
            dw = batch_family_dw(scores, weights, self._utility)
            pools, bounds = self._pools_and_bounds(
                dw, scores.informative, specs
            )
            n_scored = sum(1 for pool in pools if pool)
            if n_scored:
                prepared = PreparedFamily(
                    family=family,
                    valid=valid,
                    codes=codes,
                    group_sizes=group_sizes,
                    specs=specs,
                    scale=int(stacks[0].shape[2]),
                    scores=scores,
                    dw=dw,
                    pools=pools,
                    bounds=bounds,
                    n_scored=n_scored,
                )
        with self._lock:
            self.stats["families"] += 1
            self.stats["candidates"] += len(family)
            self.stats["batched"] += len(family)
            self.stats["scored"] += n_scored
        return prepared

    def _pools_and_bounds(
        self,
        dw: np.ndarray,
        informative: np.ndarray,
        specs: "tuple[RatingMapSpec, ...]",
    ) -> tuple[list[list[int]], np.ndarray]:
        """Per-candidate pool membership + utility upper bound.

        The pool is the top-k' specs by (-dw, spec) that yield informative
        maps — exactly ``finalize_from_counts``'s ranking — and the Σ of
        the pool's top-k DW scores bounds the selected set's Σ from above.
        """
        n_candidates = dw.shape[0]
        bounds = np.zeros(n_candidates)
        pools: list[list[int]] = []
        for c in range(n_candidates):
            order = sorted(
                range(len(specs)), key=lambda j: (-dw[c, j], specs[j])
            )
            pool = [
                j for j in order[: self._k_prime] if informative[c, j]
            ]
            pools.append(pool)
            if pool:
                bounds[c] = float(sum(dw[c, j] for j in pool[: self._k]))
        return pools, bounds

    # -- rows-served (residue) candidates ------------------------------------
    def prepare_rows(self, operation: Operation) -> "PreparedRows | None":
        """Kernel pass for one posting-list candidate (no family cube).

        Applies the same gates as the per-candidate path — size floor and
        the row-equality redundancy test — then runs the one-candidate
        count stack through the fused kernel.  The count matrices come
        from the unchanged delta/direct machinery, so they are the exact
        arrays the oracle would score.
        """
        view = self._ctx.candidate(operation)
        size = view.size
        prepared: "PreparedRows | None" = None
        n_scored = 0
        if (
            size >= self._config.min_group_size
            and not view.matches_parent(self._ctx.parent_size)
        ):
            specs = view.specs
            if specs:
                counts: "dict[RatingMapSpec, np.ndarray]" = {}
                stacks = []
                for spec in specs:
                    check_deadline()
                    matrix = np.asarray(view.counts_of(spec))
                    counts[spec] = matrix
                    stacks.append(matrix[None])
                scores = batch_family_scores(
                    stacks,
                    np.array([size], dtype=np.int64),
                    self._seen_probs,
                    self._min_support,
                    self._utility.global_use_min,
                )
                weights = np.array(
                    [self._spec_weight(spec) for spec in specs]
                )
                dw = batch_family_dw(scores, weights, self._utility)
                pools, bounds = self._pools_and_bounds(
                    dw, scores.informative, specs
                )
                if pools[0]:
                    n_scored = 1
                    prepared = PreparedRows(
                        view=view,
                        op=operation,
                        specs=specs,
                        scale=int(stacks[0].shape[2]),
                        counts=counts,
                        scores=scores,
                        dw=dw,
                        pools=pools,
                        bounds=bounds,
                        n_scored=1,
                    )
        with self._lock:
            self.stats["candidates"] += 1
            self.stats["batched"] += 1
            self.stats["scored"] += n_scored
        return prepared

    # -- exact utility without materialisation -------------------------------
    def _pool_profile(
        self, prepared: "PreparedFamily | PreparedRows", c: int, j: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """The PROFILE-distance point set of one pool map, from counts.

        Bitwise-identical to ``distance._profile`` of the materialised
        :class:`~repro.core.rating_maps.RatingMap`: subgroups are the
        non-empty histogram rows in label order, means reduce each row
        with the same last-axis pairwise tree ``histogram_mean`` uses, and
        weights are the (exact integer) row totals.
        """
        counts = np.asarray(
            prepared.counts_of(c, prepared.specs[j]), dtype=np.float64
        )
        totals = counts.sum(axis=1)  # exact
        nonzero = totals > 0
        rows = counts[nonzero]
        weights = totals[nonzero]
        values = np.arange(1, counts.shape[1] + 1, dtype=np.float64)
        means = (values * rows).sum(axis=1) / weights
        return means, weights

    def evaluate_candidate(
        self, prepared: "PreparedFamily | PreparedRows", c: int
    ) -> BatchScored:
        """Exact-score one candidate without materialising its preview.

        Replays the RM-Selector on pool profiles computed straight from
        the count tensors: the same GMM over the same EMD values selects
        the same maps as the oracle's ``_finish``, so the Eq.-(2) utility
        — the Σ of the selected specs' DW scores, summed in selection
        order — is bitwise-identical to ``preview.total_utility()``.
        Under load pressure the oracle skips GMM and shows the plain
        top-k, and so does this.  Feeds the exact utility back into the
        shared prune threshold.
        """
        pool = prepared.pools[c]
        k = self._k
        if under_pressure():
            # mirror _finish's load-shedding path: plain top-k by utility
            chosen = pool[:k]
        elif k >= len(pool):
            chosen = list(pool)
        else:
            profiles = [self._pool_profile(prepared, c, j) for j in pool]
            span = float(prepared.scale - 1)

            def dist(ia: int, ib: int) -> float:
                xa, wa = profiles[ia]
                xb, wb = profiles[ib]
                return weighted_points_emd(xa, wa, xb, wb, span)

            chosen = [
                pool[i]
                for i in gmm_select(
                    list(range(len(pool))), k, dist, seed_index=0
                )
            ]
        utility = sum(float(prepared.dw[c, j]) for j in chosen)
        self.note_exact(utility)
        return BatchScored(prepared.operation(c), utility, self, prepared, c)

    def materialize_candidate(
        self, prepared: "PreparedFamily | PreparedRows", c: int, utility: float
    ) -> "ScoredOperation | None":
        """Build one candidate's full preview (injected raw scores).

        The counts callable re-reads the candidate's rows from the family
        cube — the same joint histogram the kernel stacked, so the preview
        is built from values identical to the batch tensor's row ``c``.
        """
        from ..core.recommend import ScoredOperation

        specs = prepared.specs
        raw = {
            spec: prepared.scores.criterion_scores(c, j)
            for j, spec in enumerate(specs)
        }
        preview = self._generator.generate_from_counts(
            prepared.operation(c).target,
            specs,
            lambda spec: prepared.counts_of(c, spec),
            prepared.labels_of,
            prepared.size_of(c),
            self._seen,
            raw_scores=raw,
        )
        with self._lock:
            self.stats["materialized"] += 1
        if not preview.selected:  # pragma: no cover - pool ⇒ selected
            return None
        return ScoredOperation(prepared.operation(c), utility, preview)

    def finalize_prepared(
        self, prepared: "Sequence[PreparedFamily | PreparedRows]"
    ) -> "list[BatchScored]":
        """Exact-score all prepared families through one global bound queue.

        Candidates across every family are evaluated best-bound-first, so
        the o-th best exact utility rises as fast as possible and the
        remaining tail is pruned in one cut.  Order does not affect the
        result: a candidate is only skipped when its upper bound proves it
        cannot reach the top-o.
        """
        queue: list[tuple[float, int, int]] = []
        for fi, family in enumerate(prepared):
            for c in range(len(family.pools)):
                if family.pools[c]:
                    queue.append((family.bounds[c], fi, c))
        queue.sort(key=lambda entry: (-entry[0], entry[1], entry[2]))
        results: "list[BatchScored]" = []
        evaluated = pruned = 0
        with obs_span("batch.finalize", candidates=len(queue)) as sp:
            for position, (bound, fi, c) in enumerate(queue):
                check_deadline()
                if bound < self._threshold() - _PRUNE_MARGIN:
                    pruned = len(queue) - position
                    break
                results.append(self.evaluate_candidate(prepared[fi], c))
                evaluated += 1
            sp.set(evaluated=evaluated, pruned=pruned)
        with self._lock:
            self.stats["evaluated"] += evaluated
            self.stats["pruned"] += pruned
        return results
