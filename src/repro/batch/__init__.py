"""`repro.batch`: family-batched vectorized candidate scoring.

All FILTER candidates sharing an (attribute, dimension) family are scored
in one shot from a stacked 3-D count tensor, with an upper-bound prune
deciding which candidates pay for full preview finalisation.  See
:mod:`repro.batch.kernel` for the bitwise contract and
:mod:`repro.batch.scoring` for the orchestration.
"""

from .kernel import SpecScores, batch_dw_column, batch_raw_scores
from .scoring import (
    FamilyBatchScorer,
    FamilyPlan,
    plan_lookup,
    plan_units,
    supports_batch,
)

__all__ = [
    "SpecScores",
    "batch_raw_scores",
    "batch_dw_column",
    "FamilyBatchScorer",
    "FamilyPlan",
    "plan_lookup",
    "plan_units",
    "supports_batch",
]
