"""Synthetic review-text generator.

Produces English-ish review sentences whose per-dimension opinions encode
target rating scores, so that the extraction pipeline
(:mod:`repro.text.extraction`) can recover approximately those scores — the
synthetic stand-in for real Yelp review text (see DESIGN.md §2).
"""

from __future__ import annotations

import numpy as np

__all__ = ["ReviewGenerator", "DIMENSION_KEYWORDS"]

#: default keyword vocabulary per rating dimension (Yelp-style)
DIMENSION_KEYWORDS: dict[str, tuple[str, ...]] = {
    "food": ("food", "dish", "meal"),
    "service": ("service", "waiter", "staff"),
    "ambiance": ("ambiance", "atmosphere", "decor"),
    "cleanliness": ("cleanliness", "bathroom", "hygiene"),
    "comfort": ("comfort", "bed", "room"),
}

#: adjectives per rating bucket 1..5, all present in the sentiment lexicon
_BUCKET_ADJECTIVES: dict[int, tuple[str, ...]] = {
    1: ("terrible", "awful", "horrible", "disgusting", "dreadful"),
    2: ("disappointing", "mediocre", "poor", "bland", "underwhelming"),
    3: ("okay", "decent", "average", "fine", "acceptable"),
    4: ("good", "nice", "tasty", "pleasant", "friendly"),
    5: ("amazing", "excellent", "fantastic", "wonderful", "outstanding"),
}

_TEMPLATES: tuple[str, ...] = (
    "The {keyword} was {adjective}.",
    "I found the {keyword} truly {adjective}.",
    "Honestly, the {keyword} seemed {adjective} to me.",
    "Their {keyword} is {adjective}, plain and simple.",
    "We thought the {keyword} was really {adjective}.",
)

_FILLER: tuple[str, ...] = (
    "We visited on a weekday evening.",
    "Parking nearby was easy to find.",
    "I came here with a group of friends.",
    "It was our second visit this year.",
    "The menu has not changed much lately.",
)


class ReviewGenerator:
    """Generates review text encoding target per-dimension ratings.

    Parameters
    ----------
    dimensions:
        Rating dimensions to mention; each must exist in
        ``dimension_keywords``.
    seed:
        RNG seed for reproducible text.
    """

    def __init__(
        self,
        dimensions: tuple[str, ...] | list[str],
        dimension_keywords: dict[str, tuple[str, ...]] | None = None,
        seed: int = 0,
    ) -> None:
        keywords = dimension_keywords or DIMENSION_KEYWORDS
        missing = [d for d in dimensions if d not in keywords]
        if missing:
            raise KeyError(f"no keywords for dimensions: {missing}")
        self._dimensions = tuple(dimensions)
        self._keywords = {d: keywords[d] for d in self._dimensions}
        self._rng = np.random.default_rng(seed)

    def sentence_for(self, dimension: str, rating: int) -> str:
        """One sentence expressing ``rating`` (1..5) about ``dimension``."""
        bucket = min(max(int(rating), 1), 5)
        keyword = str(self._rng.choice(self._keywords[dimension]))
        adjective = str(self._rng.choice(_BUCKET_ADJECTIVES[bucket]))
        template = str(self._rng.choice(_TEMPLATES))
        return template.format(keyword=keyword, adjective=adjective)

    def review(self, ratings: dict[str, int]) -> str:
        """A full review mentioning every rated dimension plus filler."""
        sentences = [
            self.sentence_for(dimension, rating)
            for dimension, rating in ratings.items()
        ]
        if self._rng.random() < 0.7:
            sentences.insert(
                int(self._rng.integers(0, len(sentences) + 1)),
                str(self._rng.choice(_FILLER)),
            )
        order = self._rng.permutation(len(sentences))
        return " ".join(sentences[i] for i in order)
