"""Rule-based sentiment scoring (the VADER substitute, paper §5.1).

:class:`SentimentAnalyzer` scores a text in [-1, 1] with the standard
rule-based recipe: lexicon valences, negation flipping, intensity boosting,
exclamation emphasis, and length normalisation.  It is deterministic and
dependency-free; the paper's pipeline used VADER [34] for the same role.
"""

from __future__ import annotations

import math
import re

from .lexicon import INTENSIFIERS, NEGATORS, VALENCE

__all__ = ["SentimentAnalyzer", "tokenize"]

_WORD_RE = re.compile(r"[a-z']+")


def tokenize(text: str) -> list[str]:
    """Lowercase word tokens (apostrophes stripped: ``isn't`` → ``isnt``)."""
    return [w.replace("'", "") for w in _WORD_RE.findall(text.lower())]


class SentimentAnalyzer:
    """Lexicon + rules sentiment scorer.

    Parameters
    ----------
    valence, negators, intensifiers:
        Override the built-in lexicon (e.g. a domain-specific vocabulary).
    """

    def __init__(
        self,
        valence: dict[str, float] | None = None,
        negators: frozenset[str] | None = None,
        intensifiers: dict[str, float] | None = None,
    ) -> None:
        self._valence = dict(VALENCE if valence is None else valence)
        self._negators = NEGATORS if negators is None else negators
        self._intensifiers = dict(
            INTENSIFIERS if intensifiers is None else intensifiers
        )

    def word_valence(self, word: str) -> float | None:
        """Valence of a single word, or None if out of lexicon."""
        return self._valence.get(word)

    def score_tokens(self, tokens: list[str]) -> float:
        """Score a token list in [-1, 1]; 0.0 for fully neutral text."""
        total = 0.0
        n_hits = 0
        for i, token in enumerate(tokens):
            valence = self._valence.get(token)
            if valence is None:
                continue
            boost = 1.0
            # look back up to two tokens for negators / intensifiers
            for back in (1, 2):
                if i - back < 0:
                    break
                prev = tokens[i - back]
                if prev in self._negators:
                    boost *= -0.8  # negation flips and damps
                elif prev in self._intensifiers:
                    boost *= self._intensifiers[prev]
            total += valence * boost
            n_hits += 1
        if n_hits == 0:
            return 0.0
        # tanh-style squashing keeps multi-hit sentences in range
        return math.tanh(total / math.sqrt(n_hits))

    def score(self, text: str) -> float:
        """Score raw ``text`` in [-1, 1], with '!' emphasis."""
        tokens = tokenize(text)
        base = self.score_tokens(tokens)
        exclamations = min(text.count("!"), 3)
        return max(-1.0, min(1.0, base * (1.0 + 0.08 * exclamations)))

    def to_rating(self, sentiment: float, scale: int = 5) -> int:
        """Map a sentiment in [-1, 1] to the integer rating scale ``1..m``.

        Linear binning: -1 → 1, +1 → m, 0 → the middle of the scale.
        """
        if scale < 2:
            raise ValueError(f"scale must be >= 2, got {scale}")
        position = (sentiment + 1.0) / 2.0  # [0, 1]
        rating = 1 + int(position * scale)
        return min(max(rating, 1), scale)
