"""Sentiment / review-text substrate (S15): the VADER-substitute pipeline."""

from .extraction import DimensionExtractor, extract_dimension_scores, phrase_windows
from .lexicon import INTENSIFIERS, NEGATORS, VALENCE
from .reviews import DIMENSION_KEYWORDS, ReviewGenerator
from .sentiment import SentimentAnalyzer, tokenize

__all__ = [
    "DIMENSION_KEYWORDS",
    "DimensionExtractor",
    "INTENSIFIERS",
    "NEGATORS",
    "ReviewGenerator",
    "SentimentAnalyzer",
    "VALENCE",
    "extract_dimension_scores",
    "phrase_windows",
    "tokenize",
]
