"""A compact sentiment lexicon (substitute for VADER, paper §5.1).

Scores are valences in [-1, 1].  The lexicon is intentionally small but
covers the vocabulary of the synthetic review generator plus common English
opinion words, negators, and intensifiers — enough to exercise the identical
extraction code path the paper ran over real Yelp reviews.
"""

from __future__ import annotations

__all__ = ["VALENCE", "NEGATORS", "INTENSIFIERS"]

#: word → valence in [-1, 1]
VALENCE: dict[str, float] = {
    # strong positive
    "amazing": 0.9,
    "awesome": 0.9,
    "excellent": 0.9,
    "exceptional": 0.9,
    "fantastic": 0.9,
    "incredible": 0.9,
    "outstanding": 0.9,
    "perfect": 1.0,
    "phenomenal": 0.9,
    "superb": 0.9,
    "wonderful": 0.85,
    "delicious": 0.8,
    "divine": 0.8,
    "exquisite": 0.85,
    "flawless": 0.9,
    "heavenly": 0.8,
    "stellar": 0.85,
    # positive
    "attentive": 0.6,
    "charming": 0.6,
    "clean": 0.5,
    "comfortable": 0.55,
    "cozy": 0.55,
    "enjoyable": 0.6,
    "fresh": 0.55,
    "friendly": 0.6,
    "good": 0.5,
    "great": 0.7,
    "happy": 0.6,
    "helpful": 0.55,
    "impressive": 0.65,
    "lovely": 0.6,
    "nice": 0.45,
    "pleasant": 0.5,
    "polite": 0.5,
    "prompt": 0.5,
    "recommend": 0.55,
    "solid": 0.4,
    "tasty": 0.6,
    "warm": 0.45,
    "welcoming": 0.55,
    # mild / mixed
    "acceptable": 0.2,
    "adequate": 0.15,
    "average": 0.0,
    "decent": 0.2,
    "fine": 0.2,
    "okay": 0.1,
    "ordinary": 0.0,
    "passable": 0.1,
    "plain": -0.05,
    "standard": 0.05,
    "unremarkable": -0.1,
    # negative
    "bland": -0.5,
    "boring": -0.4,
    "cold": -0.35,
    "cramped": -0.4,
    "dirty": -0.6,
    "disappointing": -0.6,
    "dull": -0.4,
    "forgettable": -0.4,
    "greasy": -0.45,
    "loud": -0.3,
    "mediocre": -0.4,
    "noisy": -0.35,
    "overpriced": -0.5,
    "poor": -0.55,
    "rude": -0.65,
    "slow": -0.4,
    "stale": -0.55,
    "uncomfortable": -0.5,
    "underwhelming": -0.45,
    "unfriendly": -0.55,
    "weak": -0.4,
    # strong negative
    "abysmal": -0.9,
    "appalling": -0.9,
    "atrocious": -0.9,
    "awful": -0.85,
    "disgusting": -0.9,
    "dreadful": -0.85,
    "filthy": -0.8,
    "horrible": -0.85,
    "horrendous": -0.9,
    "inedible": -0.9,
    "nasty": -0.75,
    "repulsive": -0.9,
    "terrible": -0.85,
    "unacceptable": -0.8,
    "vile": -0.9,
    "worst": -0.95,
}

#: words that flip the valence of the following opinion word
NEGATORS: frozenset[str] = frozenset(
    {"not", "no", "never", "hardly", "barely", "isnt", "wasnt", "werent", "didnt"}
)

#: word → multiplicative booster applied to the following opinion word
INTENSIFIERS: dict[str, float] = {
    "absolutely": 1.4,
    "extremely": 1.4,
    "incredibly": 1.35,
    "really": 1.2,
    "remarkably": 1.3,
    "so": 1.15,
    "totally": 1.3,
    "truly": 1.25,
    "utterly": 1.35,
    "very": 1.25,
    "quite": 1.1,
    "fairly": 0.9,
    "pretty": 1.05,
    "slightly": 0.7,
    "somewhat": 0.8,
    "rather": 0.95,
}
