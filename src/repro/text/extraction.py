"""Per-dimension rating extraction from review text (paper §5.1).

The paper derived Yelp's food / service / ambiance scores by taking, for
each rating dimension, every phrase containing the dimension keyword plus a
fixed 5-word window around it, scoring each phrase with VADER, and averaging
the phrase sentiments.  :func:`extract_dimension_scores` reproduces exactly
that procedure on top of :class:`~repro.text.sentiment.SentimentAnalyzer`.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .sentiment import SentimentAnalyzer, tokenize

__all__ = ["phrase_windows", "extract_dimension_scores", "DimensionExtractor"]


def phrase_windows(
    tokens: Sequence[str], keywords: Sequence[str], window: int = 5
) -> list[list[str]]:
    """All ``±window``-token phrases around occurrences of any keyword."""
    keyword_set = set(keywords)
    phrases: list[list[str]] = []
    for i, token in enumerate(tokens):
        if token in keyword_set:
            lo = max(0, i - window)
            hi = min(len(tokens), i + window + 1)
            phrases.append(list(tokens[lo:hi]))
    return phrases


def extract_dimension_scores(
    text: str,
    dimension_keywords: Mapping[str, Sequence[str]],
    analyzer: SentimentAnalyzer | None = None,
    window: int = 5,
    scale: int = 5,
) -> dict[str, int | None]:
    """Per-dimension integer ratings extracted from one review.

    For each dimension: collect keyword phrases, sentiment-score each,
    average, and map to the ``1..scale`` rating scale.  Dimensions whose
    keywords never occur yield ``None`` (a missing rating).
    """
    analyzer = analyzer or SentimentAnalyzer()
    tokens = tokenize(text)
    out: dict[str, int | None] = {}
    for dimension, keywords in dimension_keywords.items():
        phrases = phrase_windows(tokens, keywords, window)
        if not phrases:
            out[dimension] = None
            continue
        sentiments = [analyzer.score_tokens(phrase) for phrase in phrases]
        average = sum(sentiments) / len(sentiments)
        out[dimension] = analyzer.to_rating(average, scale)
    return out


class DimensionExtractor:
    """Reusable extractor bound to one keyword map / analyzer / scale."""

    def __init__(
        self,
        dimension_keywords: Mapping[str, Sequence[str]],
        analyzer: SentimentAnalyzer | None = None,
        window: int = 5,
        scale: int = 5,
    ) -> None:
        self._keywords = {d: tuple(ks) for d, ks in dimension_keywords.items()}
        self._analyzer = analyzer or SentimentAnalyzer()
        self._window = window
        self._scale = scale

    @property
    def dimensions(self) -> tuple[str, ...]:
        return tuple(self._keywords)

    def extract(self, text: str) -> dict[str, int | None]:
        return extract_dimension_scores(
            text, self._keywords, self._analyzer, self._window, self._scale
        )
