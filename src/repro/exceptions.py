"""Exception hierarchy for the :mod:`repro` library.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish schema problems from query problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class SchemaError(ReproError):
    """A table schema is invalid or an attribute reference cannot be resolved."""


class ColumnTypeError(SchemaError):
    """An operation was applied to a column of an incompatible type."""


class UnknownAttributeError(SchemaError):
    """A predicate or group-by referenced an attribute that does not exist."""

    def __init__(self, attribute: str, available: tuple[str, ...] = ()) -> None:
        self.attribute = attribute
        self.available = tuple(available)
        message = f"unknown attribute {attribute!r}"
        if self.available:
            message += f" (available: {', '.join(self.available)})"
        super().__init__(message)


class PredicateError(ReproError):
    """A predicate is malformed or cannot be evaluated against a table."""


class SQLParseError(PredicateError):
    """The tiny SQL dialect parser rejected a query string."""

    def __init__(self, query: str, reason: str) -> None:
        self.query = query
        self.reason = reason
        super().__init__(f"cannot parse {query!r}: {reason}")


class EmptyGroupError(ReproError):
    """An operation produced a rating group with no records."""


class ConfigurationError(ReproError):
    """An engine or generator was configured with inconsistent parameters."""


class OperationError(ReproError):
    """An exploration operation is invalid for the current session state."""
