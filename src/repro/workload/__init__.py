"""IDEBench-style macro-workload driver and its SLO reporting.

:mod:`repro.workload.driver` simulates a population of interactive
users against a live SubDEx server — Poisson session arrivals, think
time, the paper's three exploration modes, heavy-tailed dataset
popularity — and records every request it makes.
:mod:`repro.workload.report` recomputes the SLO scorecard offline from
that request log with the *same* evaluation math the server uses, so
``benchmarks/bench_macro_workload.py`` can cross-check ``GET /slo``
against an independent tally.
"""

from .driver import (
    MacroWorkloadDriver,
    RequestRecord,
    SessionOutcome,
    WorkloadProfile,
    WorkloadResult,
)
from .report import (
    compare_scorecards,
    offline_counts,
    offline_scorecard,
    time_to_insight_summary,
)

__all__ = [
    "MacroWorkloadDriver",
    "RequestRecord",
    "SessionOutcome",
    "WorkloadProfile",
    "WorkloadResult",
    "compare_scorecards",
    "offline_counts",
    "offline_scorecard",
    "time_to_insight_summary",
]
