"""The macro-workload driver: simulated user populations over HTTP.

IDEBench-style load generation for an interactive data exploration
system: instead of hammering one endpoint, the driver simulates
*sessions* — a user arrives (Poisson), explores for a few steps
(geometric), thinks between actions (exponential), and leans on the
system in one of the paper's three modes:

* ``user_driven`` — read-heavy: the user studies maps and summaries
  each step and only then applies a recommendation;
* ``recommendation_powered`` — the intended hot path: fetch
  recommendations (optionally under an anytime ``budget_ms``), apply
  one, poll a refinement when the answer was partial;
* ``fully_automated`` — no think time: apply the top recommendation as
  fast as the server answers.

Dataset popularity across sessions is heavy-tailed (Zipf), so shared
caches see realistic skew.  Every request the driver issues is recorded
as a :class:`RequestRecord` carrying the **server-side** handling time
(the ``X-Server-Ms`` header) next to the client wall time — the server
ingests exactly that handling time into its SLO windows, so an offline
recomputation from these records (:mod:`repro.workload.report`) must
agree with ``GET /slo`` to the digit.

The driver never retries (``RetryPolicy(max_attempts=1)``): one logical
request is one record is one server-side observation, keeping the
client-side log and the server-side counters in one-to-one
correspondence.
"""

from __future__ import annotations

import http.client
import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from ..server.client import RetryPolicy, ServerError, SubDExClient

__all__ = [
    "MacroWorkloadDriver",
    "RequestRecord",
    "SessionOutcome",
    "WorkloadProfile",
    "WorkloadResult",
]

#: The paper's exploration modes and their default population shares.
DEFAULT_MODE_MIX: Mapping[str, float] = {
    "user_driven": 0.3,
    "recommendation_powered": 0.5,
    "fully_automated": 0.2,
}

#: Anytime budget mix: most requests unconstrained, a tail of
#: dashboard-like callers with tight soft budgets.
DEFAULT_BUDGET_MS_MIX: tuple[tuple[int | None, float], ...] = (
    (None, 0.6),
    (250, 0.25),
    (50, 0.15),
)


@dataclass(frozen=True)
class WorkloadProfile:
    """Everything that shapes one simulated population.

    ``arrival_rate_per_second`` is the Poisson intensity of *session*
    starts; ``mean_steps`` the geometric mean of recommendation-apply
    steps per session; ``mean_think_seconds`` the exponential mean
    pause between a user's actions (ignored by ``fully_automated``).
    ``insight_steps`` defines time-to-insight: the wall time from
    session start until that many steps have been applied.
    """

    duration_seconds: float = 10.0
    arrival_rate_per_second: float = 2.0
    mean_think_seconds: float = 0.05
    mean_steps: float = 3.0
    mode_mix: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_MODE_MIX)
    )
    budget_ms_mix: tuple[tuple[int | None, float], ...] = (
        DEFAULT_BUDGET_MS_MIX
    )
    datasets: tuple[str, ...] = ("yelp",)
    zipf_s: float = 1.1
    insight_steps: int = 2
    recommend_o: int = 5
    max_concurrent_sessions: int = 16
    request_timeout_seconds: float = 30.0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.duration_seconds <= 0:
            raise ValueError(
                f"duration_seconds must be > 0, got {self.duration_seconds}"
            )
        if self.arrival_rate_per_second <= 0:
            raise ValueError(
                f"arrival_rate_per_second must be > 0, "
                f"got {self.arrival_rate_per_second}"
            )
        if self.mean_think_seconds < 0:
            raise ValueError(
                f"mean_think_seconds must be >= 0, "
                f"got {self.mean_think_seconds}"
            )
        if self.mean_steps < 1:
            raise ValueError(f"mean_steps must be >= 1, got {self.mean_steps}")
        if not self.datasets:
            raise ValueError("datasets must not be empty")
        if not self.mode_mix:
            raise ValueError("mode_mix must not be empty")
        unknown = set(self.mode_mix) - set(DEFAULT_MODE_MIX)
        if unknown:
            raise ValueError(
                f"unknown workload modes: {', '.join(sorted(unknown))}"
            )
        for table, name in (
            (tuple(self.mode_mix.values()), "mode_mix"),
            (tuple(w for _, w in self.budget_ms_mix), "budget_ms_mix"),
        ):
            if any(w < 0 for w in table) or sum(table) <= 0:
                raise ValueError(f"{name} weights must be >= 0, sum > 0")
        if self.insight_steps < 1:
            raise ValueError(
                f"insight_steps must be >= 1, got {self.insight_steps}"
            )
        if self.max_concurrent_sessions < 1:
            raise ValueError(
                f"max_concurrent_sessions must be >= 1, "
                f"got {self.max_concurrent_sessions}"
            )


@dataclass(frozen=True)
class RequestRecord:
    """One request as the driver saw it.

    ``seconds`` is the server's own handling time (``X-Server-Ms``) —
    the number the server fed its SLO windows; ``wall_seconds`` adds
    network and client queueing on top.  ``observed`` is False for
    requests that never produced an HTTP response (connection refused):
    the server has no corresponding counter, so offline recomputation
    must set them aside.
    """

    route: str
    status: int
    seconds: float
    wall_seconds: float
    shed: bool = False
    degraded: bool = False
    rung: int | None = None
    error_code: str | None = None
    mode: str = "?"
    dataset: str = "?"
    observed: bool = True

    def to_json(self) -> dict[str, Any]:
        return {
            "route": self.route,
            "status": self.status,
            "seconds": self.seconds,
            "wall_seconds": self.wall_seconds,
            "shed": self.shed,
            "degraded": self.degraded,
            "rung": self.rung,
            "error_code": self.error_code,
            "mode": self.mode,
            "dataset": self.dataset,
            "observed": self.observed,
        }


@dataclass
class SessionOutcome:
    """One simulated user's session, end to end."""

    mode: str
    dataset: str
    steps_applied: int = 0
    requests: int = 0
    failures: int = 0
    time_to_insight_seconds: float | None = None
    completed: bool = False

    def to_json(self) -> dict[str, Any]:
        return {
            "mode": self.mode,
            "dataset": self.dataset,
            "steps_applied": self.steps_applied,
            "requests": self.requests,
            "failures": self.failures,
            "time_to_insight_seconds": self.time_to_insight_seconds,
            "completed": self.completed,
        }


@dataclass
class WorkloadResult:
    """Everything one driver run produced."""

    records: list[RequestRecord]
    outcomes: list[SessionOutcome]
    wall_seconds: float

    @property
    def unobserved(self) -> int:
        return sum(1 for r in self.records if not r.observed)


def _pick_weighted(rng: random.Random, pairs: Sequence[tuple[Any, float]]):
    """One weighted choice from ``(value, weight)`` pairs."""
    total = sum(weight for _, weight in pairs)
    point = rng.uniform(0.0, total)
    for value, weight in pairs:
        point -= weight
        if point <= 0:
            return value
    return pairs[-1][0]


def _zipf_weights(n: int, s: float) -> list[float]:
    return [1.0 / ((rank + 1) ** s) for rank in range(n)]


class MacroWorkloadDriver:
    """Run one :class:`WorkloadProfile` against a live server."""

    def __init__(
        self,
        base_url: str,
        profile: WorkloadProfile | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.base_url = base_url
        self.profile = profile or WorkloadProfile()
        self._sleep = sleep
        self._lock = threading.Lock()
        self._records: list[RequestRecord] = []
        # per-session labels; sessions run on pool threads concurrently
        self._local = threading.local()

    # -- recording ----------------------------------------------------------
    def _call(
        self,
        client: SubDExClient,
        route: str,
        fn: Callable[..., Mapping[str, Any]],
        *args: Any,
        **kwargs: Any,
    ) -> tuple[Mapping[str, Any] | None, RequestRecord]:
        """Issue one request, record it, swallow server-side failures."""
        client.last_server_ms = None  # don't inherit the previous response's
        status, code, data = 200, None, None
        started = time.perf_counter()
        try:
            data = fn(*args, **kwargs)
        except ServerError as error:
            status, code = error.status, error.code
        except (OSError, http.client.HTTPException) as error:
            status, code = 0, type(error).__name__
        wall = time.perf_counter() - started
        server_ms = client.last_server_ms
        observed = server_ms is not None
        degraded = bool(data.get("degraded")) if isinstance(data, Mapping) else False
        rung = None
        if isinstance(data, Mapping):
            quality = data.get("quality")
            if isinstance(quality, Mapping):
                rung = quality.get("rung")
        record = RequestRecord(
            route=route,
            status=status,
            seconds=(server_ms / 1000.0) if observed else wall,
            wall_seconds=wall,
            shed=status == 503 and code == "overloaded",
            degraded=degraded,
            rung=rung,
            error_code=code,
            mode=getattr(self._local, "mode", "?"),
            dataset=getattr(self._local, "dataset", "?"),
            observed=observed,
        )
        with self._lock:
            self._records.append(record)
        return data, record

    # -- one simulated user -------------------------------------------------
    def _think(self, rng: random.Random) -> None:
        if self.profile.mean_think_seconds > 0:
            self._sleep(rng.expovariate(1.0 / self.profile.mean_think_seconds))

    def _run_session(
        self, seed: int, mode: str, dataset: str
    ) -> SessionOutcome:
        rng = random.Random(seed)
        outcome = SessionOutcome(mode=mode, dataset=dataset)
        self._local.mode, self._local.dataset = mode, dataset
        profile = self.profile
        # geometric number of steps with the requested mean
        p = min(1.0, 1.0 / profile.mean_steps)
        steps = 1
        while rng.random() > p and steps < 50:
            steps += 1
        started = time.perf_counter()
        client = SubDExClient(
            self.base_url,
            timeout=profile.request_timeout_seconds,
            retry=RetryPolicy(max_attempts=1),
        )
        try:
            created, record = self._call(
                client,
                "POST /sessions",
                client.request,
                "POST",
                "/sessions",
                {"dataset": dataset},
            )
            outcome.requests += 1
            if created is None or "session_id" not in created:
                outcome.failures += 1
                return outcome
            session_id = created["session_id"]
            base = f"/sessions/{session_id}"

            def get(route: str, path: str, query=None):
                data, __ = self._call(
                    client, route, client.request, "GET", path, None, query
                )
                outcome.requests += 1
                if data is None:
                    outcome.failures += 1
                return data

            for __ in range(steps):
                if mode == "user_driven":
                    self._think(rng)
                    get("GET /sessions/{id}/maps", f"{base}/maps")
                    self._think(rng)
                    get("GET /sessions/{id}", base)
                budget_ms = None
                if mode != "user_driven":
                    budget_ms = _pick_weighted(rng, profile.budget_ms_mix)
                if mode == "recommendation_powered":
                    self._think(rng)
                query: dict[str, Any] = {"o": profile.recommend_o}
                if budget_ms is not None:
                    query["budget_ms"] = budget_ms
                envelope = get(
                    "GET /sessions/{id}/recommendations",
                    f"{base}/recommendations",
                    query,
                )
                token = None
                if isinstance(envelope, Mapping):
                    refinement = envelope.get("refinement")
                    if isinstance(refinement, Mapping):
                        token = refinement.get("token")
                if token and mode != "fully_automated":
                    self._think(rng)
                    get(
                        "GET /sessions/{id}/recommendations/refine/{token}",
                        f"{base}/recommendations/refine/{token}",
                    )
                n_options = 0
                if isinstance(envelope, Mapping):
                    n_options = len(envelope.get("recommendations") or ())
                if n_options:
                    number = (
                        1
                        if mode == "fully_automated"
                        else rng.randint(1, n_options)
                    )
                    applied, __ = self._call(
                        client,
                        "POST /sessions/{id}/apply",
                        client.request,
                        "POST",
                        f"{base}/apply",
                        {"recommendation": number},
                    )
                    outcome.requests += 1
                    if applied is None:
                        outcome.failures += 1
                    else:
                        outcome.steps_applied += 1
                        if (
                            outcome.time_to_insight_seconds is None
                            and outcome.steps_applied
                            >= profile.insight_steps
                        ):
                            outcome.time_to_insight_seconds = (
                                time.perf_counter() - started
                            )
            if mode == "user_driven":
                get("GET /sessions/{id}/history", f"{base}/history")
            closed, __ = self._call(
                client,
                "DELETE /sessions/{id}",
                client.request,
                "DELETE",
                base,
            )
            outcome.requests += 1
            if closed is None:
                outcome.failures += 1
            outcome.completed = True
        finally:
            client.close()
        return outcome

    # -- the population -----------------------------------------------------
    def run(self) -> WorkloadResult:
        """Simulate the population; block until every session finishes."""
        profile = self.profile
        rng = random.Random(profile.seed)
        arrivals = [0.0]  # at least one session, immediately
        t = rng.expovariate(profile.arrival_rate_per_second)
        while t < profile.duration_seconds:
            arrivals.append(t)
            t += rng.expovariate(profile.arrival_rate_per_second)
        dataset_weights = list(
            zip(profile.datasets, _zipf_weights(len(profile.datasets), profile.zipf_s))
        )
        mode_weights = list(profile.mode_mix.items())
        plans = [
            (
                offset,
                rng.getrandbits(32),
                _pick_weighted(rng, mode_weights),
                _pick_weighted(rng, dataset_weights),
            )
            for offset in arrivals
        ]
        outcomes: list[SessionOutcome] = []
        started = time.perf_counter()
        with ThreadPoolExecutor(
            max_workers=profile.max_concurrent_sessions
        ) as pool:
            futures = []
            for offset, seed, mode, dataset in plans:
                delay = offset - (time.perf_counter() - started)
                if delay > 0:
                    self._sleep(delay)
                futures.append(
                    pool.submit(self._run_session, seed, mode, dataset)
                )
            for future in futures:
                outcomes.append(future.result())
        wall = time.perf_counter() - started
        with self._lock:
            records = list(self._records)
        return WorkloadResult(
            records=records, outcomes=outcomes, wall_seconds=wall
        )
