"""Offline SLO recomputation and scorecard comparison.

The driver's :class:`~repro.workload.driver.RequestRecord` log carries,
per request, exactly what the server fed its own SLO windows: the
route label, the status, the server-side handling seconds and the
shed/degraded flags.  :func:`offline_scorecard` re-tallies those
records into per-class counts and pushes them through the *same*
:func:`repro.slo.spec.evaluate_counts` the live tracker uses — so when
:func:`compare_scorecards` finds a discrepancy against ``GET /slo``,
one of the two pipelines is actually wrong, not merely different.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from ..perf.spanstats import percentile
from ..slo.spec import SLOConfig, evaluate_counts
from .driver import RequestRecord, SessionOutcome

__all__ = [
    "compare_scorecards",
    "offline_counts",
    "offline_scorecard",
    "time_to_insight_summary",
]

#: Endpoint classes the driver actually exercises.  Its own scorecard
#: and metrics fetches land in ``ops`` on the server side but are not
#: part of the recorded workload, so ``ops`` is excluded from equality
#: checks by default.
TRAFFIC_CLASSES: tuple[str, ...] = ("recommendations", "steps", "reads")

#: Scorecard rate fields compared with an absolute tolerance.
_RATE_FIELDS = (
    "availability",
    "latency_attainment",
    "error_rate",
    "shed_rate",
    "degraded_rate",
)


def offline_counts(
    config: SLOConfig, records: Iterable[RequestRecord]
) -> dict[str, dict[str, Any]]:
    """Per-class raw counts in the :class:`WindowCounts` JSON shape.

    Only ``observed`` records count — a request that never produced an
    HTTP response has no server-side twin.  ``within_budget`` uses the
    class objective's latency budget against the record's *server*
    seconds, mirroring :meth:`repro.slo.tracker.SLOTracker.ingest`.
    """
    per_class: dict[str, dict[str, Any]] = {}
    for record in records:
        if not record.observed:
            continue
        cls = config.classify(record.route)
        counts = per_class.get(cls)
        if counts is None:
            counts = per_class[cls] = {
                "count": 0,
                "errors": 0,
                "shed": 0,
                "degraded": 0,
                "within_budget": 0,
                "sum_seconds": 0.0,
                "rungs": {},
            }
        objective = config.objective(cls)
        counts["count"] += 1
        if record.status >= 500:
            counts["errors"] += 1
        if record.shed:
            counts["shed"] += 1
        if record.degraded:
            counts["degraded"] += 1
        if record.seconds * 1000.0 <= objective.latency_ms:
            counts["within_budget"] += 1
        counts["sum_seconds"] += record.seconds
        if record.rung is not None:
            key = str(record.rung)
            counts["rungs"][key] = counts["rungs"].get(key, 0) + 1
    return per_class


def offline_scorecard(
    config: SLOConfig, records: Iterable[RequestRecord]
) -> dict[str, Any]:
    """An independently tallied total-window scorecard per class."""
    per_class = offline_counts(config, records)
    return {
        "classes": {
            cls: {
                "counts": counts,
                "evaluation": evaluate_counts(config.objective(cls), counts),
            }
            for cls, counts in sorted(per_class.items())
        }
    }


def _server_total_evaluation(
    server_scorecard: Mapping[str, Any], cls: str
) -> Mapping[str, Any] | None:
    entry = (server_scorecard.get("classes") or {}).get(cls)
    if entry is None:
        return None
    return (entry.get("windows") or {}).get("total")


def compare_scorecards(
    config: SLOConfig,
    server_scorecard: Mapping[str, Any],
    records: Sequence[RequestRecord],
    classes: Sequence[str] = TRAFFIC_CLASSES,
    tolerance: float = 0.01,
) -> dict[str, Any]:
    """Server ``GET /slo`` vs. the offline tally, field by field.

    Returns ``{"match": bool, "max_delta": float, "mismatches": [...],
    "checked": int}``.  Counts must agree exactly; rate fields within
    ``tolerance`` absolutely; burn rates within ``tolerance``
    relatively (burn is a ratio of rates, so its scale varies).
    Classes with zero offline traffic are skipped — the server may
    still have seen requests there from other callers.
    """
    offline = offline_scorecard(config, records)
    mismatches: list[dict[str, Any]] = []
    max_delta = 0.0
    checked = 0

    def note(cls: str, field: str, server: Any, ours: Any, delta: float):
        mismatches.append(
            {
                "class": cls,
                "field": field,
                "server": server,
                "offline": ours,
                "delta": delta,
            }
        )

    for cls in classes:
        ours = offline["classes"].get(cls)
        if ours is None:
            continue
        evaluation = ours["evaluation"]
        server_eval = _server_total_evaluation(server_scorecard, cls)
        if server_eval is None:
            note(cls, "present", None, evaluation["count"], 1.0)
            max_delta = 1.0
            continue
        checked += 1
        if int(server_eval.get("count", -1)) != evaluation["count"]:
            note(
                cls,
                "count",
                server_eval.get("count"),
                evaluation["count"],
                1.0,
            )
            max_delta = max(max_delta, 1.0)
        for field in _RATE_FIELDS:
            server_value = server_eval.get(field)
            our_value = evaluation[field]
            if server_value is None or our_value is None:
                if server_value != our_value:
                    note(cls, field, server_value, our_value, 1.0)
                    max_delta = max(max_delta, 1.0)
                continue
            delta = abs(float(server_value) - float(our_value))
            max_delta = max(max_delta, delta)
            if delta > tolerance:
                note(cls, field, server_value, our_value, delta)
        server_burns = server_eval.get("burn_rates") or {}
        our_burns = evaluation["burn_rates"]
        for objective in ("availability", "latency", "degraded"):
            server_value = float(server_burns.get(objective, 0.0))
            our_value = float(our_burns[objective])
            scale = max(1.0, abs(server_value), abs(our_value))
            delta = abs(server_value - our_value) / scale
            max_delta = max(max_delta, delta)
            if delta > tolerance:
                note(
                    cls,
                    f"burn_rates.{objective}",
                    server_value,
                    our_value,
                    delta,
                )
    return {
        "match": not mismatches,
        "max_delta": max_delta,
        "mismatches": mismatches,
        "checked": checked,
    }


def time_to_insight_summary(
    outcomes: Iterable[SessionOutcome],
) -> dict[str, Any]:
    """Time-to-insight percentiles across completed sessions.

    Sessions that never reached ``insight_steps`` applies (too short,
    or failed) are counted but excluded from the percentile sample;
    values are ``None`` (JSON null, never NaN) when nothing qualified.
    """
    outcomes = list(outcomes)
    samples = sorted(
        o.time_to_insight_seconds
        for o in outcomes
        if o.time_to_insight_seconds is not None
    )
    return {
        "sessions": len(outcomes),
        "completed": sum(1 for o in outcomes if o.completed),
        "with_insight": len(samples),
        "p50_seconds": percentile(samples, 50.0),
        "p95_seconds": percentile(samples, 95.0),
        "max_seconds": samples[-1] if samples else None,
    }
