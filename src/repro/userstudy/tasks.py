"""Study tasks and exposure tests (paper §5.2, Scenarios I and II).

A *task instance* bundles a database with its ground-truth targets and
knows when a displayed rating map **exposes** a target:

* an irregular group is exposed when a map of the right dimension, grouped
  by one of the group's description attributes, shows that value's subgroup
  with a near-minimal average score (the forced-to-1 block of records
  dragging it down);
* an insight ("group X rates dimension D lowest/highest") is exposed when a
  map of dimension D grouped by X's attribute shows X's value as the
  extreme subgroup.

Exposure is a property of what the engine actually displayed — the
simulated subject only adds detection noise on top.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.modes import ExplorationPath
from ..core.rating_maps import RatingMap
from ..core.session import StepRecord
from ..datasets.insights import Insight, ground_truth_insights
from ..datasets.irregular import IrregularGroup, inject_irregular_groups
from ..model.database import SubjectiveDatabase
from ..model.groups import RatingGroup

__all__ = [
    "irregular_group_exposed",
    "insight_exposed",
    "ScenarioITask",
    "ScenarioIITask",
    "make_scenario1_task",
    "make_scenario2_task",
]


def _label_matches(label: object, value: object) -> bool:
    text = str(label)
    if text == str(value):
        return True
    return str(value) in text.split(" | ")


def irregular_group_exposed(
    rating_map: RatingMap,
    group: IrregularGroup,
    threshold: float = 2.0,
    min_support: int = 3,
) -> bool:
    """Does this rating map visibly expose the irregular group?"""
    if rating_map.dimension != group.dimension:
        return False
    if rating_map.spec.side is not group.side:
        return False
    pair = next(
        (p for p in group.pairs if p.attribute == rating_map.spec.attribute),
        None,
    )
    if pair is None:
        return False
    averages = [
        sg.average_score
        for sg in rating_map.subgroups
        if not math.isnan(sg.average_score)
    ]
    if not averages:
        return False
    lowest = min(averages)
    for subgroup in rating_map.subgroups:
        if not _label_matches(subgroup.label, pair.value):
            continue
        avg = subgroup.average_score
        if math.isnan(avg) or subgroup.size < min_support:
            continue
        # the irregular subgroup must both look extreme and be the minimum
        if avg <= threshold and avg <= lowest + 1e-9:
            return True
    return False


def insight_exposed(
    rating_map: RatingMap,
    insight: Insight,
    min_support: int = 5,
) -> bool:
    """Does this rating map visibly expose the insight?"""
    if rating_map.dimension != insight.dimension:
        return False
    if rating_map.spec.side is not insight.side:
        return False
    if rating_map.spec.attribute != insight.attribute:
        return False
    supported = [
        sg
        for sg in rating_map.subgroups
        if sg.size >= min_support and not math.isnan(sg.average_score)
    ]
    if len(supported) < 2:
        return False
    ordered = sorted(supported, key=lambda sg: sg.average_score)
    extreme = ordered[0] if insight.direction == "low" else ordered[-1]
    return _label_matches(extreme.label, insight.value)


@dataclass(frozen=True)
class ScenarioITask:
    """Scenario I: identify the two planted irregular groups.

    A target counts as exposed in a step when either

    * a displayed map names it directly (:func:`irregular_group_exposed`:
      right dimension, grouped by a description attribute, the value's
      subgroup extreme), or
    * a displayed subgroup's records consist mostly (≥ ``overlap``) of the
      target's forced records with a near-minimal average — the user is
      effectively looking straight at the irregular block, whatever the
      grouping attribute is called.
    """

    database: SubjectiveDatabase
    targets: tuple[IrregularGroup, ...]
    overlap: float = 0.75
    _row_cache: dict = field(default_factory=dict, compare=False, repr=False)

    @property
    def max_score(self) -> int:
        return len(self.targets)

    def _subgroup_rows(self, rating_map: RatingMap) -> dict[object, set[int]]:
        """label → database row indices of the map's subgroup records."""
        key = (rating_map.criteria, rating_map.spec)
        cached = self._row_cache.get(key)
        if cached is not None:
            return cached
        group = RatingGroup(self.database, rating_map.criteria)
        codes = group.subgroup_codes(
            rating_map.spec.side, rating_map.spec.attribute
        )
        labels = group.subgroup_labels(
            rating_map.spec.side, rating_map.spec.attribute
        )
        scores = group.scores(rating_map.spec.dimension)
        scale = self.database.scale
        with np.errstate(invalid="ignore"):
            valid = (
                np.isfinite(scores) & (scores >= 1) & (scores <= scale)
            )
        out: dict[object, set[int]] = {}
        for code, label in enumerate(labels):
            mask = (codes == code) & valid
            if mask.any():
                out[label] = set(int(r) for r in group.rows[mask])
        self._row_cache[key] = out
        return out

    def _overlap_exposes(
        self, rating_map: RatingMap, target: IrregularGroup
    ) -> bool:
        if rating_map.dimension != target.dimension or not target.record_rows:
            return False
        rows_by_label = self._subgroup_rows(rating_map)
        for subgroup in rating_map.subgroups:
            if subgroup.size < 3:
                continue
            avg = subgroup.average_score
            if math.isnan(avg) or avg > 1.5:
                continue
            rows = rows_by_label.get(subgroup.label, set())
            if not rows:
                continue
            inside = len(rows & target.record_rows)
            if inside / len(rows) >= self.overlap:
                return True
        return False

    def exposed_in_step(self, step: StepRecord) -> set[int]:
        """Indices of targets exposed by the step's displayed maps."""
        out: set[int] = set()
        for rating_map in step.result.selected:
            for index, target in enumerate(self.targets):
                if index in out:
                    continue
                if irregular_group_exposed(rating_map, target) or (
                    self._overlap_exposes(rating_map, target)
                ):
                    out.add(index)
        return out

    def exposed_in_path(self, path: ExplorationPath) -> set[int]:
        out: set[int] = set()
        for step in path.steps:
            out |= self.exposed_in_step(step)
        return out


@dataclass(frozen=True)
class ScenarioIITask:
    """Scenario II: extract the five ground-truth insights."""

    database: SubjectiveDatabase
    targets: tuple[Insight, ...]

    @property
    def max_score(self) -> int:
        return len(self.targets)

    def exposed_in_step(self, step: StepRecord) -> set[int]:
        out: set[int] = set()
        for rating_map in step.result.selected:
            for index, target in enumerate(self.targets):
                if insight_exposed(rating_map, target):
                    out.add(index)
        return out

    def exposed_in_path(self, path: ExplorationPath) -> set[int]:
        out: set[int] = set()
        for step in path.steps:
            out |= self.exposed_in_step(step)
        return out


def make_scenario1_task(
    database: SubjectiveDatabase, seed: int = 0
) -> ScenarioITask:
    """Plant one reviewer and one item irregular group (paper's setup).

    Reviewer descriptions are fixed at two attribute-value pairs: with the
    sparse per-reviewer record counts of these datasets, a three-pair
    reviewer group leaves no detectable trace at any aggregation level
    above its exact description, making the task unsolvable — and the
    paper's subjects demonstrably could solve theirs.  Item groups (dense
    records) use the paper's two-or-three mix.
    """
    from ..exceptions import ConfigurationError
    from ..model.database import Side

    last_error: Exception | None = None
    # datasets with few item attributes (MovieLens has 3) may not admit a
    # strongly diluted / small description — relax constraints progressively
    for record_fraction, slice_fraction, entity_fraction in (
        (0.04, 0.22, 0.1),
        (0.04, 0.45, 0.1),
        (0.08, 0.45, 0.15),
        (0.08, 1.0, 0.2),
        (0.15, 1.0, 0.3),
    ):
        try:
            modified, groups = inject_irregular_groups(
                database,
                n_reviewer_groups=1,
                n_item_groups=1,
                seed=seed,
                max_fraction=entity_fraction,
                max_record_fraction=record_fraction,
                max_slice_fraction=slice_fraction,
                n_pairs_choices={Side.REVIEWER: (2,), Side.ITEM: (2, 3)},
            )
            return ScenarioITask(modified, tuple(groups))
        except ConfigurationError as error:
            last_error = error
    raise last_error  # pragma: no cover - no dataset admits no instance


def make_scenario2_task(
    database: SubjectiveDatabase, n_insights: int = 5
) -> ScenarioIITask:
    """The insight-extraction task over the generator's ground truth."""
    insights: Sequence[Insight] = ground_truth_insights(database.name, n_insights)
    return ScenarioIITask(database, tuple(insights))
