"""Rendering study results in the paper's table shapes (Fig. 7, Tab. 4)."""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.modes import ExplorationMode
from .study import MODE_ASSIGNMENT, GuidanceResult

__all__ = ["format_guidance_table", "format_simple_table"]


def format_guidance_table(result: GuidanceResult) -> str:
    """Figure-7-style 2×2 grid of per-mode means.

    Rows are CS expertise, columns domain knowledge; each cell lists the two
    modes assigned to that expertise level with their mean scores.
    """
    lines = [f"{result.dataset} — scenario {result.scenario}"]
    header = f"{'':<20}{'High Domain Knowledge':<28}{'Low Domain Knowledge':<28}"
    lines.append(header)
    for cs in ("high", "low"):
        cells = []
        for dk in ("high", "low"):
            parts = [
                f"{mode.short}: {result.mean(cs, dk, mode):.1f}"
                for mode in MODE_ASSIGNMENT[cs]
            ]
            cells.append(", ".join(parts))
        label = f"{cs.capitalize()} CS Expertise"
        lines.append(f"{label:<20}{cells[0]:<28}{cells[1]:<28}")
    anova = result.domain_knowledge_anova()
    if anova:
        lines.append("domain-knowledge effect (one-way ANOVA):")
        for (cs, mode), res in sorted(
            anova.items(), key=lambda kv: (kv[0][0], kv[0][1].value)
        ):
            lines.append(f"  {cs} CS / {mode.short}: {res.describe()}")
    return "\n".join(lines)


def format_simple_table(
    rows: Mapping[str, float] | Sequence[tuple[str, float]],
    header: tuple[str, str] = ("Baseline", "Score"),
    fmt: str = "{:.2f}",
) -> str:
    """A two-column aligned table (Table 4 / Table 6 shape)."""
    if isinstance(rows, Mapping):
        rows = list(rows.items())
    width = max([len(header[0])] + [len(name) for name, __ in rows]) + 2
    lines = [f"{header[0]:<{width}}{header[1]}"]
    lines.append("-" * (width + len(header[1])))
    for name, value in rows:
        lines.append(f"{name:<{width}}{fmt.format(value)}")
    return "\n".join(lines)


def recall_series_table(
    series: Mapping[ExplorationMode, Sequence[float]]
) -> str:
    """Figure-8-style recall series, one row per step."""
    modes = list(series)
    header = "step  " + "  ".join(f"{m.short:>6}" for m in modes)
    lines = [header]
    n_steps = max(len(v) for v in series.values())
    for s in range(n_steps):
        row = [f"{s + 1:<5}"]
        for mode in modes:
            values = series[mode]
            row.append(f"{values[s]:>6.2f}" if s < len(values) else f"{'—':>6}")
        lines.append("  ".join(row))
    return "\n".join(lines)
