"""Pre-qualification questionnaires (paper §5.2.1).

The paper groups subjects into high/low CS expertise and high/low domain
knowledge via 10-question questionnaires (Movielens) or a
restaurant-frequency question (Yelp), with a >5-correct threshold.  For the
simulated study the questionnaire assigns treatment groups from a latent
ability with the misclassification noise a real questionnaire has — so the
treatment-group boundaries are imperfect exactly as they were for the
authors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .subjects import SubjectProfile

__all__ = ["Questionnaire", "LatentSubject", "prequalify"]


@dataclass(frozen=True)
class LatentSubject:
    """Ground-truth abilities of a recruited subject, both in [0, 1]."""

    cs_ability: float
    domain_ability: float


@dataclass(frozen=True)
class Questionnaire:
    """A binary-scored questionnaire (paper: 10 questions, threshold > 5).

    A subject with ability ``a`` answers each question correctly with
    probability ``0.25 + 0.65·a`` (a guessing floor plus ability).
    """

    n_questions: int = 10
    threshold: int = 5

    def administer(
        self, ability: float, rng: np.random.Generator
    ) -> tuple[int, bool]:
        """(score, passed) for one subject."""
        if not 0 <= ability <= 1:
            raise ValueError(f"ability must be in [0, 1], got {ability}")
        p_correct = 0.25 + 0.65 * ability
        score = int(rng.binomial(self.n_questions, p_correct))
        return score, score > self.threshold


def prequalify(
    subjects: list[LatentSubject],
    seed: int = 0,
    cs_questionnaire: Questionnaire | None = None,
    domain_questionnaire: Questionnaire | None = None,
) -> list[SubjectProfile]:
    """Assign each latent subject to a treatment group (paper's stage 1)."""
    rng = np.random.default_rng(seed)
    cs_q = cs_questionnaire or Questionnaire()
    dk_q = domain_questionnaire or Questionnaire()
    profiles = []
    for subject in subjects:
        __, cs_high = cs_q.administer(subject.cs_ability, rng)
        __, dk_high = dk_q.administer(subject.domain_ability, rng)
        profiles.append(
            SubjectProfile(
                "high" if cs_high else "low",
                "high" if dk_high else "low",
            )
        )
    return profiles
