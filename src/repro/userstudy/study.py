"""Study runners (paper §5.2): guidance study, recall-vs-steps, Table 4.

The expensive part of a study is generating exploration paths (every step
runs the engine); the cheap part is subject detection sampling.  Paths are
therefore sampled once per (mode, expertise) with representative choosers
and shared round-robin across the cell's subjects, whose Bernoulli
detection draws provide the within-cell variance the ANOVA checks need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from ..core.engine import SubDEx, SubDExConfig
from ..core.modes import (
    ExplorationMode,
    ExplorationPath,
    run_fully_automated,
    run_recommendation_powered,
    run_user_driven,
)
from ..core.session import ExplorationSession
from ..model.groups import RatingGroup
from ..model.operations import Operation
from ..stats.anova import AnovaResult, one_way_anova
from .subjects import SimulatedSubject, SubjectProfile
from .tasks import ScenarioIITask, ScenarioITask

__all__ = [
    "StudyConfig",
    "GuidanceResult",
    "sample_path",
    "simulate_subject_score",
    "run_guidance_study",
    "run_recall_vs_steps",
    "run_recommendation_quality",
]

Task = ScenarioITask | ScenarioIITask


def _check_engine_matches_task(engine: SubDEx, task: Task) -> None:
    """The engine must explore the task's database (the injected copy)."""
    if engine.database is not task.database:
        raise ValueError(
            "engine.database is not the task's database — build the engine "
            "over task.database (the copy with injected ground truth)"
        )


@dataclass(frozen=True)
class StudyConfig:
    """Study-level parameters (defaults = paper Table 3 / §5.2.1)."""

    n_subjects_per_cell: int = 30
    n_path_samples: int = 3
    n_steps: int = 7
    seed: int = 0


def sample_path(
    engine: SubDEx,
    task: Task,
    mode: ExplorationMode,
    expertise: str,
    n_steps: int,
    seed: int,
) -> ExplorationPath:
    """One exploration path in ``mode`` driven by a representative chooser.

    Scenario-I tasks get the anomaly-hunting choosers (investigate /
    retreat), Scenario-II tasks the shallow browse choosers — matching how
    real subjects approach each task.
    """
    session = engine.session()
    if mode is ExplorationMode.FULLY_AUTOMATED:
        return run_fully_automated(session, n_steps)
    chooser_subject = SimulatedSubject(
        SubjectProfile(expertise, "high"), seed=seed
    )
    browsing = isinstance(task, ScenarioIITask)
    if mode is ExplorationMode.USER_DRIVEN:
        chooser = (
            chooser_subject.choose_user_driven_browse
            if browsing
            else chooser_subject.choose_user_driven
        )
        return run_user_driven(session, chooser, n_steps)
    chooser = (
        chooser_subject.choose_recommendation_powered_browse
        if browsing
        else chooser_subject.choose_recommendation_powered
    )
    return run_recommendation_powered(session, chooser, n_steps)


def simulate_subject_score(
    subject: SimulatedSubject, task: Task, path: ExplorationPath
) -> int:
    """Number of distinct targets the subject identifies along the path.

    A target exposed for the first time is noticed with the subject's
    detection probability; if missed, later re-exposures only help with a
    damped probability — a subject who mis-read a chart once tends to
    anchor on that reading (and simulation-wise, repeated certain
    re-detection would wash out all between-subject variance).
    """
    found: set[int] = set()
    times_exposed: dict[int, int] = {}
    for step in path.steps:
        exposed = sorted(task.exposed_in_step(step) - found)
        fresh = [t for t in exposed if times_exposed.get(t, 0) == 0]
        stale = [t for t in exposed if times_exposed.get(t, 0) > 0]
        found |= subject.detect(fresh)
        found |= subject.detect(stale, damp=0.3)
        for target in exposed:
            times_exposed[target] = times_exposed.get(target, 0) + 1
    return len(found)


@dataclass
class GuidanceResult:
    """Figure-7-shaped outcome of one (dataset, scenario) guidance study."""

    dataset: str
    scenario: str
    #: (cs_expertise, domain_knowledge, mode) → per-subject scores
    scores: dict[tuple[str, str, ExplorationMode], list[int]] = field(
        default_factory=dict
    )

    def mean(self, cs: str, dk: str, mode: ExplorationMode) -> float:
        cell = self.scores.get((cs, dk, mode), [])
        return float(np.mean(cell)) if cell else float("nan")

    def domain_knowledge_anova(self) -> dict[tuple[str, ExplorationMode], AnovaResult]:
        """Per (cs, mode): does domain knowledge change the outcome?

        The paper reports these as not significant; the simulator's design
        makes the same true in expectation.
        """
        out: dict[tuple[str, ExplorationMode], AnovaResult] = {}
        by_mode: dict[tuple[str, ExplorationMode], list[list[int]]] = {}
        for (cs, __, mode), cell in self.scores.items():
            by_mode.setdefault((cs, mode), []).append(list(cell))
        for key, groups in by_mode.items():
            if len(groups) >= 2:
                out[key] = one_way_anova(groups)
        return out


#: mode assignment per CS expertise (paper §5.2.1)
MODE_ASSIGNMENT: dict[str, tuple[ExplorationMode, ExplorationMode]] = {
    "high": (ExplorationMode.USER_DRIVEN, ExplorationMode.RECOMMENDATION_POWERED),
    "low": (ExplorationMode.RECOMMENDATION_POWERED, ExplorationMode.FULLY_AUTOMATED),
}


def run_guidance_study(
    instances: Sequence[tuple[SubDEx, Task]],
    scenario: str,
    config: StudyConfig | None = None,
) -> GuidanceResult:
    """The paper's guidance experiment for one dataset and scenario.

    ``instances`` are independent task instances (engine + injected task);
    several are needed because an individual instance can be uniformly
    easy or uniformly hard — the paper's intermediate averages arise from
    the spread.  Four treatment groups (high/low CS × high/low domain
    knowledge), each subject performing the task in its two assigned
    modes; exploration order is irrelevant here because runs are
    independent (matching the paper's non-significant order effect).
    """
    if not instances:
        raise ValueError("at least one (engine, task) instance is required")
    config = config or StudyConfig()
    for engine, task in instances:
        _check_engine_matches_task(engine, task)
    result = GuidanceResult(
        dataset=instances[0][0].database.name, scenario=scenario
    )

    # representative paths per (instance, mode, expertise)
    mode_index = {mode: i for i, mode in enumerate(ExplorationMode)}
    paths: dict[tuple[int, ExplorationMode, str], list[ExplorationPath]] = {}
    for instance_id, (engine, task) in enumerate(instances):
        for cs, modes in MODE_ASSIGNMENT.items():
            for mode in modes:
                key = (instance_id, mode, cs)
                if key in paths:
                    continue
                paths[key] = [
                    sample_path(
                        engine,
                        task,
                        mode,
                        cs,
                        config.n_steps,
                        seed=(
                            config.seed * 1000
                            + 101 * instance_id
                            + 17 * sample
                            + mode_index[mode]
                        ),
                    )
                    for sample in range(config.n_path_samples)
                ]

    subject_counter = 0
    for cs in ("high", "low"):
        for dk in ("high", "low"):
            for mode in MODE_ASSIGNMENT[cs]:
                cell: list[int] = []
                for index in range(config.n_subjects_per_cell):
                    instance_id = index % len(instances)
                    __, task = instances[instance_id]
                    mode_paths = paths[(instance_id, mode, cs)]
                    subject = SimulatedSubject(
                        SubjectProfile(cs, dk),
                        seed=config.seed * 100_000 + subject_counter,
                    )
                    subject_counter += 1
                    path = mode_paths[(index // len(instances)) % len(mode_paths)]
                    cell.append(simulate_subject_score(subject, task, path))
                result.scores[(cs, dk, mode)] = cell
    return result


def run_recall_vs_steps(
    engine: SubDEx,
    task: Task,
    max_steps: int,
    n_subjects: int = 30,
    n_path_samples: int = 3,
    seed: int = 0,
) -> dict[ExplorationMode, list[float]]:
    """Figure 8: per-mode recall as a function of exploration steps.

    Recall at step s = mean over subjects of (targets detected within the
    first s steps) / (total targets).
    """
    _check_engine_matches_task(engine, task)
    out: dict[ExplorationMode, list[float]] = {}
    for mode in ExplorationMode:
        mode_paths = [
            sample_path(engine, task, mode, "high", max_steps, seed=seed + 31 * i)
            for i in range(n_path_samples)
        ]
        recall = np.zeros(max_steps)
        for index in range(n_subjects):
            subject = SimulatedSubject(
                SubjectProfile("high", "high"), seed=seed * 7919 + index
            )
            path = mode_paths[index % len(mode_paths)]
            found: set[int] = set()
            for s in range(max_steps):
                if s < len(path.steps):
                    exposed = sorted(task.exposed_in_step(path.steps[s]) - found)
                    found |= subject.detect(exposed)
                recall[s] += len(found) / task.max_score
        out[mode] = list(recall / n_subjects)
    return out


#: a baseline recommender: rating group → ranked candidate operations
BaselineRecommender = Callable[[RatingGroup], Sequence[Operation]]


def _baseline_driven_path(
    engine: SubDEx,
    recommender: BaselineRecommender,
    n_steps: int,
) -> ExplorationPath:
    """Fully-Automated path whose operations come from ``recommender``.

    Rating maps are always generated by SubDEx's RM-Set Generator — the
    paper fixes the displayed maps across baselines so only the quality of
    the next-action recommendations differs.
    """
    session = engine.session()
    records = [session.step()]
    for __ in range(n_steps - 1):
        operations = [
            op
            for op in recommender(session.group)
            if not RatingGroup(engine.database, op.target).is_empty
        ]
        if not operations:
            break
        records.append(session.step(operations[0]))
    return ExplorationPath(ExplorationMode.FULLY_AUTOMATED, tuple(records))


def run_recommendation_quality(
    engine: SubDEx,
    task: ScenarioITask,
    recommenders: Mapping[str, BaselineRecommender | None],
    n_steps: int = 7,
    n_subjects: int = 30,
    seed: int = 0,
) -> dict[str, float]:
    """Table 4: avg #identified irregular groups per recommendation source.

    ``recommenders`` maps a display name to a baseline recommender, or to
    ``None`` for SubDEx's own Recommendation Builder (the FA mode).
    """
    _check_engine_matches_task(engine, task)
    out: dict[str, float] = {}
    for name, recommender in recommenders.items():
        if recommender is None:
            path = run_fully_automated(engine.session(), n_steps)
        else:
            path = _baseline_driven_path(engine, recommender, n_steps)
        scores = [
            simulate_subject_score(
                SimulatedSubject(SubjectProfile("high", "high"), seed=seed + i),
                task,
                path,
            )
            for i in range(n_subjects)
        ]
        out[name] = float(np.mean(scores))
    return out
