"""Simulated user study (S17): subjects, tasks, runners, reporting."""

from .questionnaire import LatentSubject, Questionnaire, prequalify
from .reporting import format_guidance_table, format_simple_table, recall_series_table
from .study import (
    MODE_ASSIGNMENT,
    GuidanceResult,
    StudyConfig,
    run_guidance_study,
    run_recall_vs_steps,
    run_recommendation_quality,
    sample_path,
    simulate_subject_score,
)
from .subjects import (
    SimulatedSubject,
    SubjectProfile,
    drill_into_subgroup,
    suspicious_subgroup,
)
from .tasks import (
    ScenarioIITask,
    ScenarioITask,
    insight_exposed,
    irregular_group_exposed,
    make_scenario1_task,
    make_scenario2_task,
)

__all__ = [
    "GuidanceResult",
    "LatentSubject",
    "Questionnaire",
    "MODE_ASSIGNMENT",
    "ScenarioIITask",
    "ScenarioITask",
    "SimulatedSubject",
    "StudyConfig",
    "SubjectProfile",
    "drill_into_subgroup",
    "format_guidance_table",
    "format_simple_table",
    "insight_exposed",
    "prequalify",
    "irregular_group_exposed",
    "make_scenario1_task",
    "make_scenario2_task",
    "recall_series_table",
    "run_guidance_study",
    "run_recall_vs_steps",
    "run_recommendation_quality",
    "sample_path",
    "simulate_subject_score",
    "suspicious_subgroup",
]
