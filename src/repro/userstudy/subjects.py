"""Simulated study subjects (paper §5.2.1; substitution documented in DESIGN.md).

A subject is a noisy observer plus a choice policy:

* **Observation** — when a step's rating maps *expose* a task target (an
  irregular group or an insight), the subject notices it with a detection
  probability that depends on CS expertise only.  Domain knowledge has, by
  design, no effect on behaviour — reproducing the paper's finding that
  results do not depend on domain knowledge (it is still tracked and
  ANOVA-tested, as in the paper).
* **Choice** — how the next operation is picked, per mode:

  - *User-Driven*: if a displayed map shows a suspicious subgroup the
    subject drills into it (experts act on the signal more reliably);
    otherwise the subject picks an operation blindly — the paper's "little
    information on which operation is the most interesting".
  - *Recommendation-Powered*: same investigative reflex, but with no
    signal on screen the subject follows the top recommendation instead of
    guessing.
  - *Fully-Automated*: no choices at all.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Sequence

import numpy as np

from ..core.rating_maps import RatingMap
from ..core.recommend import ScoredOperation
from ..core.session import ExplorationSession
from ..model.groups import AVPair
from ..model.operations import Operation, OperationKind

__all__ = [
    "SubjectProfile",
    "SimulatedSubject",
    "suspicious_subgroup",
    "drill_into_subgroup",
]

#: per-expertise detection probability of an exposed target
_DETECTION_P = {"high": 0.85, "low": 0.7}
#: per-expertise probability of acting on a suspicious on-screen signal
_INVESTIGATE_P = {"high": 0.9, "low": 0.7}


@dataclass(frozen=True)
class SubjectProfile:
    """Treatment-group coordinates of one subject."""

    cs_expertise: str  # "high" | "low"
    domain_knowledge: str  # "high" | "low"

    def __post_init__(self) -> None:
        for field_name in ("cs_expertise", "domain_knowledge"):
            value = getattr(self, field_name)
            if value not in ("high", "low"):
                raise ValueError(f"{field_name} must be 'high'|'low', got {value!r}")


def suspicious_subgroup(
    maps: Sequence[RatingMap],
    threshold: float = 2.0,
    gap: float = 0.45,
    min_support: int = 10,
) -> tuple[RatingMap, object] | None:
    """The most suspicious subgroup on screen, if any.

    A subgroup looks suspicious when its average score is extreme in
    absolute terms (≤ ``threshold``) *or* sits at least ``gap`` below its
    map's overall average — a partially-diluted anomaly (an irregular block
    mixed into an otherwise normal subgroup) shows up as exactly such a
    relative dip.
    """
    best: tuple[float, RatingMap, object] | None = None
    for rating_map in maps:
        pooled_avg = rating_map.pooled().mean()
        for subgroup in rating_map.subgroups:
            avg = subgroup.average_score
            if math.isnan(avg) or subgroup.size < min_support:
                continue
            looks_low = avg <= threshold or (
                not math.isnan(pooled_avg) and pooled_avg - avg >= gap
            )
            if looks_low and (best is None or avg < best[0]):
                best = (avg, rating_map, subgroup.label)
    if best is None:
        return None
    return best[1], best[2]


def drill_into_subgroup(
    session: ExplorationSession, rating_map: RatingMap, label: object
) -> Operation | None:
    """Build the FILTER operation that zooms into a displayed subgroup.

    Multi-valued subgroup labels ("Barbeque | Seafood") drill into their
    first member.  Returns None when the pair is already part of the
    current criteria (nothing to do).
    """
    value = str(label)
    if " | " in value:
        value = value.split(" | ")[0]
    pair = AVPair(rating_map.spec.side, rating_map.spec.attribute, value)
    if pair in session.criteria:
        return None
    return Operation(
        session.criteria.with_pair(pair), OperationKind.FILTER, added=(pair,)
    )


class SimulatedSubject:
    """One subject: detection sampling + the two mode-specific choosers."""

    def __init__(self, profile: SubjectProfile, seed: int = 0) -> None:
        self.profile = profile
        self._rng = np.random.default_rng(seed)
        #: suspicious signals already chased: (side, attribute, value)
        self._investigated: set[tuple] = set()
        #: selections already examined (users remember where they've been)
        self._visited: set = set()

    def _remember(self, session: ExplorationSession) -> None:
        self._visited.add(session.criteria)

    def _unvisited(self, operations: Sequence) -> list:
        fresh = [
            op
            for op in operations
            if getattr(op, "operation", op).target not in self._visited
        ]
        return fresh or list(operations)

    @property
    def detection_probability(self) -> float:
        return _DETECTION_P[self.profile.cs_expertise]

    @property
    def investigate_probability(self) -> float:
        return _INVESTIGATE_P[self.profile.cs_expertise]

    def detect(
        self, exposed: Sequence[Hashable], damp: float = 1.0
    ) -> set[Hashable]:
        """Which of the targets exposed in one step the subject notices.

        ``damp`` scales the detection probability (used for re-exposures a
        subject already mis-read once).
        """
        p = damp * self.detection_probability
        return {t for t in exposed if self._rng.random() < p}

    # -- choosers -------------------------------------------------------------
    def _fresh_signal(
        self, session: ExplorationSession
    ) -> tuple[RatingMap, object] | None:
        """A suspicious on-screen subgroup the subject has not chased yet."""
        if not session.steps:
            return None
        maps = session.steps[-1].result.selected
        hit = suspicious_subgroup(maps)
        if hit is None:
            return None
        rating_map, label = hit
        value = str(label).split(" | ")[0]
        key = (rating_map.spec.side, rating_map.spec.attribute, value)
        if key in self._investigated:
            return None
        return hit

    def _investigate(
        self,
        session: ExplorationSession,
        factor: float = 1.0,
        precision: float = 1.0,
    ) -> Operation | None:
        """Chase a fresh suspicious subgroup.

        ``factor`` scales the probability of acting at all; ``precision``
        is the probability of drilling into the *right* subgroup — a UD
        subject translating a chart into a hand-written selection slips to
        a neighbouring subgroup some of the time.
        """
        hit = self._fresh_signal(session)
        if hit is None or self._rng.random() >= factor * self.investigate_probability:
            return None
        rating_map, label = hit
        # the subject *believes* they are checking this signal — it is
        # spent either way, even if the hand-built drill lands elsewhere
        true_value = str(label).split(" | ")[0]
        self._investigated.add(
            (rating_map.spec.side, rating_map.spec.attribute, true_value)
        )
        if self._rng.random() >= precision:
            others = [
                sg.label for sg in rating_map.subgroups if sg.label != label
            ]
            if others:
                label = others[int(self._rng.integers(0, len(others)))]
                value = str(label).split(" | ")[0]
                self._investigated.add(
                    (rating_map.spec.side, rating_map.spec.attribute, value)
                )
        return drill_into_subgroup(session, rating_map, label)

    def _avoids_investigated(self, operation: Operation) -> bool:
        """Does the operation steer away from already-chased signals?"""
        return not any(
            (p.side, p.attribute, str(p.value)) in self._investigated
            for p in operation.target.pairs
        )

    def _retreat(self, session: ExplorationSession) -> Operation | None:
        """Roll up out of an exhausted anomaly region.

        Once a chased region shows nothing fresh, a real analyst notes the
        finding and generalises back out to look elsewhere — the roll-up
        move the paper identifies as essential (and which the drill-down
        baselines lack).
        """
        stale = [
            pair
            for pair in session.criteria
            if (pair.side, pair.attribute, str(pair.value)) in self._investigated
        ]
        if not stale:
            return None
        pair = stale[0]
        return Operation(
            session.criteria.without_pair(pair),
            OperationKind.GENERALIZE,
            removed=(pair,),
        )

    def choose_user_driven(
        self, session: ExplorationSession, candidates: Sequence[Operation]
    ) -> Operation | None:
        """UD policy: investigate a fresh signal, retreat from exhausted
        regions, else pick blindly.

        The 0.55 investigation factor and 0.6 precision model that a UD
        user must translate a visual hunch into a hand-built selection with
        no system support — the information gap the paper's study isolates.
        """
        self._remember(session)
        operation = self._investigate(session, factor=0.55, precision=0.6)
        if operation is not None:
            return operation
        operation = self._retreat(session)
        if operation is not None:
            return operation
        pool = [c for c in candidates if self._avoids_investigated(c)] or list(
            candidates
        )
        pool = self._unvisited(pool)
        if not pool:
            return None
        # blind choice: mildly prefer simple drill-downs, like real users
        filters = [c for c in pool if c.kind is OperationKind.FILTER]
        if filters and self._rng.random() < 0.7:
            pool = filters
        return pool[int(self._rng.integers(0, len(pool)))]

    def choose_recommendation_powered(
        self,
        session: ExplorationSession,
        recommendations: Sequence[ScoredOperation],
    ) -> Operation | None:
        """RP policy: investigate fresh signals, then follow recommendations
        that lead *away* from anomalies already chased — the user control
        the paper credits for RP's advantage over Fully-Automated."""
        self._remember(session)
        operation = self._investigate(session)
        if operation is not None:
            return operation
        operation = self._retreat(session)
        if operation is not None:
            return operation
        if not recommendations:
            return None
        preferred = [
            r
            for r in recommendations
            if self._avoids_investigated(r.operation)
        ] or list(recommendations)
        preferred = self._unvisited(preferred)
        # mostly the best remaining recommendation, sometimes a lower one
        if len(preferred) > 1 and self._rng.random() < 0.25:
            index = int(self._rng.integers(1, len(preferred)))
        else:
            index = 0
        return preferred[index].operation

    # -- browse policies (Scenario II: insight extraction) ------------------
    # Global insights live in broad aggregations; deep drill-downs hide
    # them.  A subject extracting insights therefore browses shallow
    # selections, which these variants of the two choosers model.

    def _shallow(self, operations: Sequence, max_pairs: int = 2) -> list:
        """Operations with the smallest target depth (capped at max_pairs).

        When nothing at or below ``max_pairs`` is available, the shallowest
        operations offered are returned instead — a browsing subject always
        moves *toward* the surface, never deeper for lack of options.
        """
        if not operations:
            return []
        depths = [
            len(getattr(op, "operation", op).target) for op in operations
        ]
        cutoff = max(min(depths), 1)
        limit = max_pairs if min(depths) <= max_pairs else cutoff
        return [
            op for op, depth in zip(operations, depths) if depth <= limit
        ]

    def choose_user_driven_browse(
        self, session: ExplorationSession, candidates: Sequence[Operation]
    ) -> Operation | None:
        """UD browse: an unguided wander.

        Without recommendations, real subjects *anchor*: much of the time
        they tweak the selection they already have (change one value) or
        drill further into it rather than jumping to genuinely new ground
        — the coverage loss behind UD's low Scenario-II scores in the
        paper.  Modelled as: 60% sideways/deeper moves on the current
        criteria, otherwise a uniformly random candidate of any depth.
        """
        if not candidates:
            return None
        self._remember(session)
        if len(session.criteria) > 0 and self._rng.random() < 0.6:
            anchored = [
                op
                for op in candidates
                if op.kind in (OperationKind.CHANGE, OperationKind.FILTER)
                and op.target.edit_distance(session.criteria) == 1
                and len(op.target) >= len(session.criteria)
            ]
            if anchored:
                return anchored[int(self._rng.integers(0, len(anchored)))]
        return candidates[int(self._rng.integers(0, len(candidates)))]

    def choose_recommendation_powered_browse(
        self,
        session: ExplorationSession,
        recommendations: Sequence[ScoredOperation],
    ) -> Operation | None:
        """RP browse: trust the recommendations.

        For insight extraction the system's DW-utility ranking is already
        an excellent browsing policy (it rotates dimensions and attributes
        and avoids revisits), so the subject applies the best
        recommendation that doesn't retrace their own steps.  Injecting
        "curiosity" deviations measurably lowered coverage — an RP subject
        doing well is one who lets the guidance work.
        """
        if not recommendations:
            return None
        self._remember(session)
        pool = self._unvisited(recommendations)
        return pool[0].operation
