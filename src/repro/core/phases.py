"""Phase-based execution framework (paper Algorithm 1).

The framework materialises all candidate rating maps of a rating group
incrementally: the group's records are split into ``n`` near-equal fractions
and each phase folds one fraction into per-candidate histogram accumulators.
Between phases a pluggable pruner (see :mod:`repro.core.pruning`) inspects
the partial scores and discards low-utility candidates so later phases touch
less state.

Sharing (paper §4.2.1) is structural: candidates that group by the same
attribute share one :class:`~repro.db.groupby.SharedGroupByScan`, so a phase
scans each attribute once regardless of how many rating dimensions remain.

Records are processed in a seeded random permutation so the
Hoeffding–Serfling assumptions (uniform sampling without replacement) hold
regardless of the physical row order of the rating table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

import numpy as np

from ..db.groupby import Grouping, SharedGroupByScan, phase_slices
from ..model.groups import RatingGroup, SelectionCriteria
from ..obs import span as obs_span
from ..resilience.deadline import check_deadline
from .interestingness import CriterionScores, InterestingnessScorer
from .rating_maps import RatingMap, RatingMapSpec, rating_map_from_counts
from .utility import ScoredCandidate, SeenMaps, UtilityConfig, score_candidate_set

if TYPE_CHECKING:  # pragma: no cover
    from .pruning import Pruner

__all__ = [
    "PhaseSnapshot",
    "PhasedExecutionResult",
    "PhasedExecution",
    "finalize_from_counts",
]


@dataclass(frozen=True)
class PhaseSnapshot:
    """What a pruner sees at the end of a phase."""

    phase: int
    n_phases: int
    rows_seen: int
    n_total: int
    scores: Mapping[RatingMapSpec, ScoredCandidate]

    @property
    def fraction_seen(self) -> float:
        return self.rows_seen / self.n_total if self.n_total else 1.0


@dataclass(frozen=True)
class PhasedExecutionResult:
    """Outcome of one Algorithm-1 run."""

    ranked: tuple[RatingMap, ...]
    scores: Mapping[RatingMapSpec, ScoredCandidate]
    pruned: tuple[RatingMapSpec, ...]
    phases_run: int

    def top(self, n: int) -> tuple[RatingMap, ...]:
        return self.ranked[:n]


def finalize_from_counts(
    specs: Sequence[RatingMapSpec],
    counts_of: Callable[[RatingMapSpec], np.ndarray],
    labels_of: Callable[[RatingMapSpec], tuple[Any, ...]],
    criteria: SelectionCriteria,
    group_size: int,
    seen: SeenMaps,
    utility_config: UtilityConfig,
    scorer: InterestingnessScorer,
    k_prime: int,
    pruned: Sequence[RatingMapSpec] = (),
    phases_run: int = 1,
    raw_scores: Mapping[RatingMapSpec, CriterionScores] | None = None,
) -> PhasedExecutionResult:
    """Score and rank candidate maps from their final histogram matrices.

    This is the tail of Algorithm 1 once every phase has run: since the
    ``(n_groups, scale)`` count matrices are sufficient statistics, the
    scoring/ranking step is independent of *how* the counts were obtained
    — a phased scan, a fused candidate cube, or delta maintenance.
    ``counts_of``/``labels_of`` supply each spec's matrix and subgroup
    labels; both the phased executor and :mod:`repro.index` route here.

    ``raw_scores`` lets a caller that already holds the raw criterion
    scores (the batched family kernel of :mod:`repro.batch`) inject them
    instead of re-running the scorer; they must equal what ``scorer``
    would produce from ``counts_of`` — everything downstream (normalise,
    rank, materialise) is shared either way.
    """
    if raw_scores is not None:
        raw = {spec: raw_scores[spec] for spec in specs}
    else:
        seen_pooled = seen.pooled_distributions()
        raw = {
            spec: scorer.score(counts_of(spec), group_size, seen_pooled)
            for spec in specs
        }
    dimension_of = {spec: spec.dimension for spec in raw}
    attribute_of = {spec: (spec.side, spec.attribute) for spec in raw}
    final_scores = score_candidate_set(
        raw, dimension_of, seen, utility_config, attribute_of
    )
    order = sorted(
        final_scores,
        key=lambda s: (-final_scores[s].dw_utility, s),
    )
    ranked: list[RatingMap] = []
    for spec in order[:k_prime]:
        counts = np.array(counts_of(spec))
        rating_map = rating_map_from_counts(
            spec, criteria, counts, labels_of(spec), group_size
        )
        if rating_map.is_informative:
            ranked.append(rating_map)
    return PhasedExecutionResult(
        ranked=tuple(ranked),
        scores=final_scores,
        pruned=tuple(pruned),
        phases_run=phases_run,
    )


class PhasedExecution:
    """One run of the phase-based framework over a rating group.

    Parameters
    ----------
    group:
        The rating group g_R to summarise.
    specs:
        Candidate rating-map specs (GroupBy attribute × dimension).
    seen:
        The cross-step RM state (dimension weights, global-peculiarity refs).
    utility_config:
        Utility function configuration.
    scorer:
        Raw-criteria scorer (shared across phases).
    n_phases:
        The paper sets n = 10.
    shuffle_seed:
        Seed of the record permutation (``None`` disables shuffling).
    """

    def __init__(
        self,
        group: RatingGroup,
        specs: Sequence[RatingMapSpec],
        seen: SeenMaps,
        utility_config: UtilityConfig,
        scorer: InterestingnessScorer,
        n_phases: int = 10,
        shuffle_seed: int | None = 0,
    ) -> None:
        self._group = group
        self._specs = tuple(specs)
        self._seen = seen
        self._config = utility_config
        self._scorer = scorer
        self._n_phases = max(1, int(n_phases))
        self._shuffle_seed = shuffle_seed
        self._seen_pooled = seen.pooled_distributions()

        # Shared scans: one per grouping attribute, covering all dimensions
        # of the specs that use it ("Combining Multiple Aggregates").
        self._scans: dict[tuple, SharedGroupByScan] = {}
        self._labels: dict[tuple, tuple] = {}
        by_attribute: dict[tuple, list[RatingMapSpec]] = {}
        for spec in self._specs:
            by_attribute.setdefault((spec.side, spec.attribute), []).append(spec)
        for (side, attribute), attr_specs in by_attribute.items():
            codes = group.subgroup_codes(side, attribute)
            labels = group.subgroup_labels(side, attribute)
            grouping = Grouping(attribute, codes, labels)
            dimension_scores = {
                spec.dimension: group.scores(spec.dimension) for spec in attr_specs
            }
            self._scans[(side, attribute)] = SharedGroupByScan(
                grouping, dimension_scores, group.database.scale
            )
            self._labels[(side, attribute)] = labels

        self._active: set[RatingMapSpec] = set(self._specs)
        self._pruned: list[RatingMapSpec] = []
        self._rows_seen = 0

    # -- internals ----------------------------------------------------------
    def _permuted_rows(self) -> np.ndarray:
        n = len(self._group)
        rows = np.arange(n, dtype=np.int64)
        if self._shuffle_seed is not None and n > 1:
            rng = np.random.default_rng(self._shuffle_seed)
            rng.shuffle(rows)
        return rows

    def _counts_of(self, spec: RatingMapSpec) -> np.ndarray:
        scan = self._scans[(spec.side, spec.attribute)]
        return scan.accumulator(spec.dimension).counts

    def _raw_scores(self) -> dict[RatingMapSpec, CriterionScores]:
        group_size = len(self._group)
        return {
            spec: self._scorer.score(
                self._counts_of(spec), group_size, self._seen_pooled
            )
            for spec in self._active
        }

    def _scored(self) -> dict[RatingMapSpec, ScoredCandidate]:
        raw = self._raw_scores()
        dimension_of = {spec: spec.dimension for spec in raw}
        attribute_of = {spec: (spec.side, spec.attribute) for spec in raw}
        return score_candidate_set(
            raw, dimension_of, self._seen, self._config, attribute_of
        )

    def _drop(self, specs: set[RatingMapSpec]) -> None:
        for spec in specs:
            if spec not in self._active:
                continue
            self._active.discard(spec)
            self._pruned.append(spec)
            scan = self._scans[(spec.side, spec.attribute)]
            # only stop accumulating a dimension nothing else needs
            if not any(
                s.dimension == spec.dimension
                and (s.side, s.attribute) == (spec.side, spec.attribute)
                for s in self._active
            ):
                scan.drop_dimension(spec.dimension)

    # -- the algorithm ------------------------------------------------------
    def run(self, pruner: "Pruner", k_prime: int) -> PhasedExecutionResult:
        """Algorithm 1: phased scan with inter-phase pruning.

        ``k_prime`` is k × l, the number of maps to retain.  Returns the
        surviving maps ranked by DW utility (materialised from their final
        histograms) together with their scores.
        """
        pruner.begin(self._specs, k_prime)
        rows = self._permuted_rows()
        slices = phase_slices(len(rows), self._n_phases)
        phases_run = 0
        for i, block in enumerate(slices):
            with obs_span(
                "phase.scan", phase=i + 1, n_phases=len(slices)
            ) as sp:
                phase_rows = rows[block]
                for scan in self._scans.values():
                    # cooperative cancellation: an oversized request aborts
                    # between GroupBy scans instead of hogging its worker
                    check_deadline()
                    scan.update(phase_rows)
                self._rows_seen += int(len(phase_rows))
                phases_run += 1
                is_last = i == len(slices) - 1
                if is_last or len(self._active) <= k_prime:
                    sp.set(
                        rows_seen=self._rows_seen,
                        active=len(self._active),
                        pruned=len(self._pruned),
                    )
                    continue
                if not getattr(pruner, "needs_snapshots", True):
                    sp.set(
                        rows_seen=self._rows_seen,
                        active=len(self._active),
                        pruned=len(self._pruned),
                    )
                    continue  # e.g. NoPruning: skip the inter-phase scoring
                snapshot = PhaseSnapshot(
                    phase=i + 1,
                    n_phases=len(slices),
                    rows_seen=self._rows_seen,
                    n_total=len(self._group),
                    scores=self._scored(),
                )
                to_drop = pruner.prune(snapshot)
                self._drop(to_drop & self._active)
                sp.set(
                    rows_seen=self._rows_seen,
                    active=len(self._active),
                    pruned=len(self._pruned),
                )

        return finalize_from_counts(
            tuple(s for s in self._specs if s in self._active),
            self._counts_of,
            lambda spec: self._labels[(spec.side, spec.attribute)],
            self._group.criteria,
            len(self._group),
            self._seen,
            self._config,
            self._scorer,
            k_prime,
            pruned=self._pruned,
            phases_run=phases_run,
        )
