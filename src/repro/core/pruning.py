"""Pruning strategies for the phased framework (paper §4.2.1).

Three pruners plus a combiner:

* :class:`NoPruning` — every candidate survives to the final phase (the
  paper's "No-Pruning" scalability baseline).
* :class:`ConfidenceIntervalPruner` — Algorithm 3.  Each utility criterion
  gets a worst-case Hoeffding–Serfling interval around its partial estimate;
  dominated criteria are discarded, the surviving intervals are combined
  into one interval per map and scaled by the dimension weight; a map whose
  upper bound falls below the lowest lower bound of the current top-k' is
  pruned.
* :class:`MABPruner` — Successive Accepts and Rejects.  Candidates are arms,
  phase estimates are rewards; at each phase end the SAR gap test accepts
  the best arm or rejects the worst, following a budget schedule that
  resolves all arms by the final phase.
* :class:`CombinedPruner` — CI then MAB, the full SubDEx configuration.
"""

from __future__ import annotations

import enum
import math
from typing import Protocol, Sequence

from ..stats.bandits import SuccessiveAcceptsRejects
from ..stats.hoeffding import serfling_epsilon
from ..stats.intervals import ConfidenceInterval, combine_max_intervals
from .phases import PhaseSnapshot
from .rating_maps import RatingMapSpec

__all__ = [
    "PruningStrategy",
    "Pruner",
    "NoPruning",
    "ConfidenceIntervalPruner",
    "MABPruner",
    "CombinedPruner",
    "make_pruner",
]


class PruningStrategy(str, enum.Enum):
    """Which pruning scheme the generator uses."""

    NONE = "none"
    CONFIDENCE_INTERVAL = "ci"
    MAB = "mab"
    COMBINED = "combined"


class Pruner(Protocol):
    """Inter-phase pruning interface used by :class:`PhasedExecution`."""

    def begin(self, specs: Sequence[RatingMapSpec], k_prime: int) -> None:
        """Reset state for a new run over ``specs`` targeting top ``k_prime``."""
        ...

    def prune(self, snapshot: PhaseSnapshot) -> set[RatingMapSpec]:
        """Return the specs to discard given the phase-end ``snapshot``."""
        ...


class NoPruning:
    """Keeps everything (the No-Pruning baseline)."""

    #: the framework may skip inter-phase scoring entirely
    needs_snapshots = False

    def begin(self, specs: Sequence[RatingMapSpec], k_prime: int) -> None:
        return None

    def prune(self, snapshot: PhaseSnapshot) -> set[RatingMapSpec]:
        return set()


class ConfidenceIntervalPruner:
    """Algorithm 3: confidence-interval based pruning.

    ``delta`` is the failure probability of the Hoeffding–Serfling bound.
    The per-criterion half-width is shared (the bound depends only on how
    much data has been seen), so intervals are ``estimate ± ε`` clamped to
    [0, 1] before dominance elimination and weighting.
    """

    def __init__(self, delta: float = 0.05) -> None:
        if not 0 < delta < 1:
            raise ValueError(f"delta must be in (0, 1), got {delta}")
        self._delta = delta
        self._k_prime = 1

    def begin(self, specs: Sequence[RatingMapSpec], k_prime: int) -> None:
        self._k_prime = max(1, k_prime)

    def map_interval(
        self, candidate, epsilon: float
    ) -> ConfidenceInterval:
        """One combined, weighted interval for a scored candidate."""
        criterion_intervals = [
            ConfidenceInterval.around(value, epsilon)
            for value in candidate.normalized.values()
        ]
        combined = combine_max_intervals(criterion_intervals)
        return combined.scaled(candidate.weight)

    def prune(self, snapshot: PhaseSnapshot) -> set[RatingMapSpec]:
        epsilon = serfling_epsilon(
            snapshot.rows_seen, snapshot.n_total, self._delta
        )
        intervals = {
            spec: self.map_interval(candidate, epsilon)
            for spec, candidate in snapshot.scores.items()
        }
        if len(intervals) <= self._k_prime:
            return set()
        by_upper = sorted(
            intervals, key=lambda s: (-intervals[s].hi, s)
        )
        top = by_upper[: self._k_prime]
        lowest_lower = min(intervals[s].lo for s in top)
        return {
            spec
            for spec in by_upper[self._k_prime :]
            if intervals[spec].hi < lowest_lower
        }


class MABPruner:
    """Successive-Accepts-and-Rejects pruning.

    One SAR instance per run; at each phase end the means are refreshed from
    the snapshot and the gap test is applied repeatedly until the number of
    still-active arms meets this phase's budget target.  The target decays
    geometrically from the initial arm count down to k' at the final phase,
    mirroring SAR's shrinking-arm-set schedule under a fixed phase budget.
    Only *rejected* arms are reported for pruning; accepted arms keep
    accumulating data (their final histograms are still needed).
    """

    def __init__(self) -> None:
        self._sar: SuccessiveAcceptsRejects | None = None
        self._n_arms = 0
        self._k_prime = 1

    def begin(self, specs: Sequence[RatingMapSpec], k_prime: int) -> None:
        self._n_arms = len(specs)
        self._k_prime = max(1, k_prime)
        self._sar = SuccessiveAcceptsRejects(list(specs), self._k_prime)

    def _target_active(self, phase: int, n_phases: int) -> int:
        """Geometric schedule from n_arms (phase 0) to k' (final phase)."""
        if self._n_arms <= self._k_prime:
            return self._k_prime
        fraction = phase / max(1, n_phases - 1)
        target = self._n_arms * (self._k_prime / self._n_arms) ** fraction
        return max(self._k_prime, int(math.ceil(target)))

    def prune(self, snapshot: PhaseSnapshot) -> set[RatingMapSpec]:
        if self._sar is None:
            raise RuntimeError("begin() must be called before prune()")
        # arms removed by another scheme (e.g. CI in CombinedPruner) vanish
        # from the snapshot; retire them so SAR never accepts a ghost
        for arm in self._sar.active:
            if arm not in snapshot.scores:
                self._sar.force_reject(arm)
        means = {
            spec: candidate.dw_utility
            for spec, candidate in snapshot.scores.items()
        }
        target = self._target_active(snapshot.phase, snapshot.n_phases)
        dropped: set[RatingMapSpec] = set()
        while (
            not self._sar.finished
            and len(self._sar.surviving()) > max(target, self._k_prime)
        ):
            decision = self._sar.step(means)
            if decision is None:
                break
            verdict, arm = decision
            if verdict == "reject":
                dropped.add(arm)
        return dropped


class CombinedPruner:
    """CI pruning followed by MAB pruning (the full SubDEx configuration)."""

    def __init__(self, delta: float = 0.05) -> None:
        self._ci = ConfidenceIntervalPruner(delta)
        self._mab = MABPruner()

    def begin(self, specs: Sequence[RatingMapSpec], k_prime: int) -> None:
        self._ci.begin(specs, k_prime)
        self._mab.begin(specs, k_prime)

    def prune(self, snapshot: PhaseSnapshot) -> set[RatingMapSpec]:
        dropped = self._ci.prune(snapshot)
        if dropped:
            remaining = {
                spec: candidate
                for spec, candidate in snapshot.scores.items()
                if spec not in dropped
            }
            snapshot = PhaseSnapshot(
                snapshot.phase,
                snapshot.n_phases,
                snapshot.rows_seen,
                snapshot.n_total,
                remaining,
            )
        return dropped | self._mab.prune(snapshot)


def make_pruner(strategy: PruningStrategy, delta: float = 0.05) -> Pruner:
    """Factory mapping a :class:`PruningStrategy` to a pruner instance."""
    if strategy is PruningStrategy.NONE:
        return NoPruning()
    if strategy is PruningStrategy.CONFIDENCE_INTERVAL:
        return ConfidenceIntervalPruner(delta)
    if strategy is PruningStrategy.MAB:
        return MABPruner()
    if strategy is PruningStrategy.COMBINED:
        return CombinedPruner(delta)
    raise ValueError(f"unknown pruning strategy {strategy!r}")
