"""Interestingness criteria of rating maps (paper §3.2.3 and §4.1).

The four criteria, computed from a per-subgroup histogram matrix (so they
work identically on full data and on the phased framework's partial data):

* **Conciseness** — compaction gain ``|g_R| / |rm|`` [15]: how many records
  each subgroup summarises on average.
* **Agreement** — ``1 / (1 + σ̃)`` where σ̃ is the mean subgroup dispersion
  [16]; the dispersion measure is configurable (SD default; Schutz and
  MacArthur per Hilderman & Hamilton).
* **Self peculiarity** — the max over subgroups of the distance between the
  subgroup's distribution and the map's overall distribution ([51]'s
  max-of-subgroup-scores rule).
* **Global peculiarity** — the max distance between the map's pooled
  distribution and the pooled distribution of each previously seen map.

The peculiarity distance is total variation by default, with KL divergence
and the Outlier Function as the paper's stated alternatives.  A map with
fewer than two supported subgroups is uninformative: every criterion
scores 0.

Note on global peculiarity: this scorer's *default* aggregation over seen
maps is the paper's ``max``; the engine's default configuration
(:class:`~repro.core.utility.UtilityConfig`) flips it to ``min`` (distance
to the closest seen map) because max saturates after a few steps — see
EXPERIMENTS.md for the rationale.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..stats.dispersion import histogram_std, macarthur_index, schutz_coefficient
from .distance import kl_divergence, total_variation
from .distributions import RatingDistribution


def outlier_distance(p: "RatingDistribution", q: "RatingDistribution") -> float:
    """Outlier-function peculiarity [39]: normalised mean-score gap ∈ [0, 1]."""
    if p.scale != q.scale:
        raise ValueError("distributions must share a scale")
    mean_p, mean_q = p.mean(), q.mean()
    if math.isnan(mean_p) or math.isnan(mean_q):
        return 0.0
    return abs(mean_p - mean_q) / (p.scale - 1)

__all__ = [
    "Criterion",
    "outlier_distance",
    "DispersionMeasure",
    "PeculiarityDistance",
    "CriterionScores",
    "InterestingnessScorer",
]


class Criterion(str, enum.Enum):
    """The four utility criteria."""

    CONCISENESS = "conciseness"
    AGREEMENT = "agreement"
    PECULIARITY_SELF = "pec_self"
    PECULIARITY_GLOBAL = "pec_global"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class DispersionMeasure(str, enum.Enum):
    """Dispersion measure underlying the agreement score."""

    STD = "std"
    SCHUTZ = "schutz"
    MACARTHUR = "macarthur"


class PeculiarityDistance(str, enum.Enum):
    """Distance underlying the peculiarity scores.

    TVD is the prototype's choice (§4.1); KL and the Outlier Function of
    the Subjective Databases paper [39] are the stated alternatives.  The
    outlier function compares the *means*: the absolute gap between the two
    distributions' average scores, normalised by the scale range — blunter
    than TVD (shape-blind) but directly interpretable on the rating scale.
    """

    TOTAL_VARIATION = "tvd"
    KL = "kl"
    OUTLIER = "outlier"


_DISPERSION_FN: dict[DispersionMeasure, Callable[[np.ndarray], float]] = {
    DispersionMeasure.STD: histogram_std,
    DispersionMeasure.SCHUTZ: schutz_coefficient,
    DispersionMeasure.MACARTHUR: macarthur_index,
}


@dataclass(frozen=True)
class CriterionScores:
    """Raw (pre-normalization) criterion scores of one rating map.

    ``n_subgroups`` (non-empty subgroups) rides along so the fixed
    normalization can derive a scale-free conciseness.
    """

    conciseness: float
    agreement: float
    pec_self: float
    pec_global: float
    n_subgroups: int = 0

    def get(self, criterion: Criterion) -> float:
        return {
            Criterion.CONCISENESS: self.conciseness,
            Criterion.AGREEMENT: self.agreement,
            Criterion.PECULIARITY_SELF: self.pec_self,
            Criterion.PECULIARITY_GLOBAL: self.pec_global,
        }[criterion]

    @classmethod
    def zero(cls) -> "CriterionScores":
        return cls(0.0, 0.0, 0.0, 0.0, 0)


class InterestingnessScorer:
    """Computes raw criterion scores from per-subgroup histogram matrices."""

    def __init__(
        self,
        dispersion: DispersionMeasure = DispersionMeasure.STD,
        peculiarity: PeculiarityDistance = PeculiarityDistance.TOTAL_VARIATION,
        global_use_min: bool = False,
        min_support: int = 5,
    ) -> None:
        self._dispersion_fn = _DISPERSION_FN[dispersion]
        self._peculiarity = peculiarity
        self._global_use_min = global_use_min
        # every criterion needs a support floor or 2-record subgroups
        # dominate; 5 matches the paper's minimum irregular-group size, so
        # planted anomalies always stay above it
        self._min_support = max(1, int(min_support))

    # -- distances ----------------------------------------------------------
    def _distance(self, p: RatingDistribution, q: RatingDistribution) -> float:
        if self._peculiarity is PeculiarityDistance.KL:
            return kl_divergence(p, q)
        if self._peculiarity is PeculiarityDistance.OUTLIER:
            return outlier_distance(p, q)
        return total_variation(p, q)

    def _noise_penalty(self, n: float, scale: int) -> float:
        """Expected sampling noise of an n-record distribution's distance.

        An n-sample empirical distribution over m cells sits at an expected
        total-variation distance of order ``sqrt(m / (8n))`` from its
        source even when nothing is peculiar about it; subtracting this
        keeps peculiarity from systematically inflating in small subgroups
        (where it would otherwise pull exploration into noise-chasing
        drill-downs).
        """
        if n <= 0:
            return 1.0
        return math.sqrt(scale / (8.0 * n))

    def _effective_support(self, counts: np.ndarray, group_size: int) -> int:
        """The support floor, scaled down for partial (phased) data.

        ``min_support`` is meant against full data; during early phases a
        subgroup has only seen a fraction of its records, so the floor
        shrinks proportionally (never below 2).
        """
        seen = float(counts.sum())
        if group_size <= 0:
            return self._min_support
        fraction = min(1.0, seen / group_size)
        return max(2, int(math.ceil(self._min_support * fraction)))

    # -- per-criterion ------------------------------------------------------
    def conciseness(self, counts: np.ndarray, group_size: int) -> float:
        """Compaction gain ``|g_R| / |rm|`` over supported subgroups."""
        support = self._effective_support(counts, group_size)
        n_subgroups = int((counts.sum(axis=1) >= support).sum())
        if n_subgroups < 2:
            return 0.0
        return group_size / n_subgroups

    def agreement(self, counts: np.ndarray, group_size: int | None = None) -> float:
        """``1 / (1 + \u03c3\u0303)`` with \u03c3\u0303 the size-weighted mean subgroup dispersion.

        Only supported subgroups participate, and larger subgroups weigh
        more: a 3-record unanimous subgroup cannot drag \u03c3\u0303 to 0 and hand
        the map a perfect agreement score.
        """
        if group_size is None:
            group_size = int(counts.sum())
        support = self._effective_support(counts, group_size)
        rows = [(row, row.sum()) for row in counts if row.sum() >= support]
        if len(rows) < 2:
            return 0.0
        values = []
        weights = []
        for row, size in rows:
            v = self._dispersion_fn(row)
            if not math.isnan(v):
                values.append(v)
                weights.append(size)
        if not values:
            return 0.0
        sigma = float(np.average(values, weights=weights))
        return 1.0 / (1.0 + sigma)

    def self_peculiarity(
        self, counts: np.ndarray, group_size: int | None = None
    ) -> float:
        """Max over supported subgroups of distance(subgroup, whole map).

        The support floor (default 5 = the paper's minimum irregular-group
        size) keeps two-record subgroups, which are always extreme, from
        pinning every map's peculiarity at the top.
        """
        if group_size is None:
            group_size = int(counts.sum())
        support = self._effective_support(counts, group_size)
        supported = [row for row in counts if row.sum() >= support]
        if len(supported) < 2:
            return 0.0
        pooled = RatingDistribution(np.sum(supported, axis=0).astype(np.int64))
        return max(
            max(
                0.0,
                self._distance(RatingDistribution(row.astype(np.int64)), pooled)
                - self._noise_penalty(float(row.sum()), counts.shape[1]),
            )
            for row in supported
        )

    def global_peculiarity(
        self,
        counts: np.ndarray,
        seen_pooled: Sequence[RatingDistribution],
        group_size: int | None = None,
    ) -> float:
        """Distance between the map's pooled distribution and seen maps'.

        The paper aggregates per-seen-map distances with ``max``;
        ``global_use_min=True`` switches to the stricter ``min`` (distance
        to the *closest* seen map), provided as an ablation knob.
        """
        if group_size is None:
            group_size = int(counts.sum())
        support = self._effective_support(counts, group_size)
        supported = [row for row in counts if row.sum() >= support]
        if len(supported) < 2 or not seen_pooled:
            return 0.0
        pooled_counts = np.sum(supported, axis=0)
        pooled = RatingDistribution(pooled_counts.astype(np.int64))
        distances = [self._distance(pooled, q) for q in seen_pooled]
        best = min(distances) if self._global_use_min else max(distances)
        return max(
            0.0,
            best - self._noise_penalty(float(pooled_counts.sum()), counts.shape[1]),
        )

    # -- all four -----------------------------------------------------------
    def score(
        self,
        counts: np.ndarray,
        group_size: int,
        seen_pooled: Sequence[RatingDistribution],
    ) -> CriterionScores:
        """Raw scores of one candidate map from its histogram matrix.

        Fully vectorised for the default STD/TVD configuration (the hot
        path of the phased framework); other configurations fall back to
        the per-subgroup reference implementations above.
        """
        counts = np.asarray(counts, dtype=np.float64)
        if counts.size == 0:
            return CriterionScores.zero()
        totals = counts.sum(axis=1)
        support = self._effective_support(counts, group_size)
        supported = totals >= support
        n_subgroups = int(supported.sum())
        if n_subgroups < 2:
            return CriterionScores.zero()

        fast = (
            self._dispersion_fn is histogram_std
            and self._peculiarity is PeculiarityDistance.TOTAL_VARIATION
        )
        if not fast:
            return CriterionScores(
                conciseness=self.conciseness(counts, group_size),
                agreement=self.agreement(counts, group_size),
                pec_self=self.self_peculiarity(counts, group_size),
                pec_global=self.global_peculiarity(
                    counts, seen_pooled, group_size
                ),
                n_subgroups=n_subgroups,
            )

        sub = counts[supported]
        sub_totals = totals[supported][:, None]
        values = np.arange(1, counts.shape[1] + 1, dtype=np.float64)
        probs = sub / sub_totals
        means = probs @ values
        variances = probs @ (values**2) - means**2
        stds = np.sqrt(np.maximum(variances, 0.0))
        sigma = float(np.average(stds, weights=sub_totals[:, 0]))
        agreement = 1.0 / (1.0 + sigma)

        pooled = sub.sum(axis=0)
        pooled_p = pooled / pooled.sum()
        scale = counts.shape[1]
        per_subgroup_tvd = 0.5 * np.abs(probs - pooled_p).sum(axis=1)
        penalties = np.sqrt(scale / (8.0 * sub_totals[:, 0]))
        pec_self = float(np.maximum(per_subgroup_tvd - penalties, 0.0).max())

        pec_global = 0.0
        if seen_pooled:
            seen_p = np.stack([q.probabilities() for q in seen_pooled])
            distances = 0.5 * np.abs(seen_p - pooled_p).sum(axis=1)
            best = float(
                distances.min() if self._global_use_min else distances.max()
            )
            pec_global = max(
                0.0, best - self._noise_penalty(float(pooled.sum()), scale)
            )

        return CriterionScores(
            conciseness=group_size / n_subgroups,
            agreement=agreement,
            pec_self=pec_self,
            pec_global=pec_global,
            n_subgroups=n_subgroups,
        )
