"""Approximate rating maps via sampling (paper §2, after Kim et al. [36]).

For very large rating groups a full scan per map may be unnecessary: a
uniform sample preserves each subgroup's distribution up to a quantifiable
error, and — the property [36] optimises for — usually preserves the
*ordering* of subgroups by average score, which is what a user reads off a
rating map.

:func:`approximate_rating_map` draws a seeded uniform sample of the group's
records and materialises the map from the sample, attaching per-subgroup
Hoeffding–Serfling confidence half-widths.  :func:`ordering_agreement`
measures how well an approximation preserved the exact map's score
ordering (Kendall-style pairwise agreement), which the test-suite bounds.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from ..model.groups import RatingGroup
from ..stats.hoeffding import serfling_epsilon
from .rating_maps import RatingMap, RatingMapSpec, rating_map_from_counts

__all__ = ["ApproximateMap", "approximate_rating_map", "ordering_agreement"]


@dataclass(frozen=True)
class ApproximateMap:
    """A sampled rating map plus its sampling metadata."""

    rating_map: RatingMap
    sample_size: int
    population_size: int
    #: per-subgroup half-width of the mean estimate, in scale units —
    #: keyed by subgroup label (each subgroup has its own effective sample)
    subgroup_epsilons: dict

    @property
    def sample_fraction(self) -> float:
        if self.population_size == 0:
            return 1.0
        return self.sample_size / self.population_size

    @property
    def mean_epsilon(self) -> float:
        """The weakest (largest) subgroup bound — 0.0 for a full scan."""
        if not self.subgroup_epsilons:
            return 0.0
        return max(self.subgroup_epsilons.values())

    def epsilon_for(self, label: object) -> float:
        return self.subgroup_epsilons.get(label, float("inf"))


def approximate_rating_map(
    group: RatingGroup,
    spec: RatingMapSpec,
    sample_fraction: float = 0.1,
    seed: int = 0,
    delta: float = 0.05,
) -> ApproximateMap:
    """Materialise ``spec`` over a uniform sample of ``group``.

    The returned ``mean_epsilon`` bounds (w.p. ≥ 1 − delta, per subgroup)
    how far a sampled subgroup's average score can sit from its exact
    average, via the Hoeffding–Serfling inequality scaled to the rating
    range.
    """
    if not 0 < sample_fraction <= 1:
        raise ValueError(
            f"sample_fraction must be in (0, 1], got {sample_fraction}"
        )
    database = group.database
    n = len(group)
    sample_size = max(1, int(round(sample_fraction * n)))
    rng = np.random.default_rng(seed)
    local_rows = (
        np.arange(n)
        if sample_size >= n
        else np.sort(rng.choice(n, size=sample_size, replace=False))
    )

    full_codes = group.subgroup_codes(spec.side, spec.attribute)
    codes = full_codes[local_rows]
    labels = group.subgroup_labels(spec.side, spec.attribute)
    scores = group.scores(spec.dimension)[local_rows]
    scale = database.scale
    with np.errstate(invalid="ignore"):
        valid = (codes >= 0) & np.isfinite(scores) & (scores >= 1) & (scores <= scale)
    flat = np.bincount(
        codes[valid] * scale + (scores[valid].astype(np.int64) - 1),
        minlength=len(labels) * scale,
    )
    counts = flat.reshape(len(labels), scale)
    rating_map = rating_map_from_counts(
        spec, group.criteria, counts, labels, n
    )
    # per-subgroup bounds: each subgroup's mean is estimated from its own
    # (much smaller) sample drawn from its own population
    population_sizes = np.bincount(
        full_codes[full_codes >= 0], minlength=len(labels)
    )
    epsilons = {}
    for code, label in enumerate(labels):
        sampled = int(counts[code].sum())
        population = int(population_sizes[code])
        if sampled == 0 or population == 0:
            continue
        epsilons[label] = float(
            serfling_epsilon(sampled, population, delta) * (scale - 1)
        )
    return ApproximateMap(
        rating_map=rating_map,
        sample_size=int(sample_size),
        population_size=n,
        subgroup_epsilons=epsilons,
    )


def ordering_agreement(exact: RatingMap, approximate: RatingMap) -> float:
    """Pairwise score-ordering agreement between two maps ∈ [0, 1].

    For every pair of subgroup labels present in both maps, checks whether
    the two maps order the pair's average scores the same way (ties agree
    with everything).  1.0 = identical ordering; 0.5 ≈ random.
    """
    exact_scores = {sg.label: sg.average_score for sg in exact.subgroups}
    approx_scores = {sg.label: sg.average_score for sg in approximate.subgroups}
    shared = [label for label in exact_scores if label in approx_scores]
    if len(shared) < 2:
        return 1.0
    agree = 0
    total = 0
    for a, b in itertools.combinations(shared, 2):
        exact_sign = np.sign(exact_scores[a] - exact_scores[b])
        approx_sign = np.sign(approx_scores[a] - approx_scores[b])
        total += 1
        if exact_sign == approx_sign or exact_sign == 0 or approx_sign == 0:
            agree += 1
    return agree / total
