"""Subgroup score aggregation functions (paper Def. 2, remark).

The paper assigns each subgroup a single aggregated score, using the
*average* "in this work" and noting that "other aggregations could be used
such as the highest probability for the rating dimension" — i.e. the mode.
This module provides the catalogue (mean / mode / median) so rating-map
displays and downstream analyses can swap the aggregate.
"""

from __future__ import annotations

import enum
import math
from typing import Callable

import numpy as np

from .distributions import RatingDistribution

__all__ = ["ScoreAggregation", "aggregate_score", "mode_score", "median_score"]


class ScoreAggregation(str, enum.Enum):
    """How a subgroup's distribution becomes one displayed score."""

    MEAN = "mean"
    MODE = "mode"  # the paper's "highest probability" alternative
    MEDIAN = "median"


def mode_score(distribution: RatingDistribution) -> float:
    """The score with the highest probability (ties → the lowest score).

    NaN for empty distributions.
    """
    if distribution.is_empty:
        return math.nan
    return float(int(np.argmax(distribution.counts)) + 1)


def median_score(distribution: RatingDistribution) -> float:
    """The (lower) median score of the histogram; NaN when empty."""
    total = distribution.total
    if total == 0:
        return math.nan
    midpoint = (total + 1) // 2
    running = 0
    for score, count in enumerate(distribution.counts, start=1):
        running += int(count)
        if running >= midpoint:
            return float(score)
    return float(distribution.scale)  # pragma: no cover - unreachable


_AGGREGATORS: dict[ScoreAggregation, Callable[[RatingDistribution], float]] = {
    ScoreAggregation.MEAN: lambda d: d.mean(),
    ScoreAggregation.MODE: mode_score,
    ScoreAggregation.MEDIAN: median_score,
}


def aggregate_score(
    distribution: RatingDistribution,
    aggregation: ScoreAggregation = ScoreAggregation.MEAN,
) -> float:
    """The subgroup's displayed score under the chosen aggregation."""
    return _AGGREGATORS[aggregation](distribution)
