"""Exploration-log persistence.

SubDEx's related work leans on logs of previous operations for personalised
recommendations (paper §5.2.2: "the Recommendation Builder may be replaced
with alternative implementations, yielding personalized recommendations
using logs of previous operations").  This module provides the log format:
an :class:`ExplorationLog` serialises a completed path (criteria, displayed
maps, chosen operations, timings) to JSON and back, losing the raw
histograms' bulk but keeping everything the personalisation layer
(:mod:`repro.extensions.personalize`) and offline analyses need.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Iterable

from ..model.database import Side
from .modes import ExplorationMode, ExplorationPath

__all__ = ["SCHEMA_VERSION", "LoggedMap", "LoggedStep", "ExplorationLog"]

#: Version of the exploration-log JSON schema.  Written into every export
#: so server-produced logs stay forward-compatible with the
#: personalisation extension; loaders accept and ignore unknown versions.
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class LoggedMap:
    """A displayed rating map, reduced to its identity and headline stats."""

    side: str
    attribute: str
    dimension: str
    n_subgroups: int
    covered: int
    dw_utility: float
    top_label: str | None = None
    top_average: float | None = None


@dataclass(frozen=True)
class LoggedStep:
    """One step of a logged exploration."""

    index: int
    criteria: dict[str, dict[str, Any]]  # side → {attribute: value}
    group_size: int
    maps: tuple[LoggedMap, ...]
    operation_kind: str | None
    elapsed_seconds: float


@dataclass(frozen=True)
class ExplorationLog:
    """A serialisable record of one exploration path."""

    dataset: str
    mode: str
    steps: tuple[LoggedStep, ...]
    user: str = "anonymous"
    metadata: dict[str, Any] = field(default_factory=dict)

    # -- construction --------------------------------------------------------
    @classmethod
    def from_path(
        cls,
        path: ExplorationPath,
        dataset: str,
        user: str = "anonymous",
        metadata: dict[str, Any] | None = None,
    ) -> "ExplorationLog":
        steps = []
        for record in path.steps:
            criteria = {
                Side.REVIEWER.value: record.criteria.side_pairs(Side.REVIEWER),
                Side.ITEM.value: record.criteria.side_pairs(Side.ITEM),
            }
            maps = []
            for rating_map in record.result.selected:
                top = rating_map.sorted_by_score()
                maps.append(
                    LoggedMap(
                        side=rating_map.spec.side.value,
                        attribute=rating_map.spec.attribute,
                        dimension=rating_map.dimension,
                        n_subgroups=rating_map.n_subgroups,
                        covered=rating_map.covered,
                        dw_utility=record.result.dw_utility(rating_map),
                        top_label=str(top[0].label) if top else None,
                        top_average=top[0].average_score if top else None,
                    )
                )
            steps.append(
                LoggedStep(
                    index=record.index,
                    criteria=criteria,
                    group_size=record.group_size,
                    maps=tuple(maps),
                    operation_kind=(
                        record.operation.kind.value if record.operation else None
                    ),
                    elapsed_seconds=record.elapsed_seconds,
                )
            )
        return cls(
            dataset=dataset,
            mode=path.mode.value,
            steps=tuple(steps),
            user=user,
            metadata=dict(metadata or {}),
        )

    # -- (de)serialisation ----------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """The JSON-ready payload, including the schema version stamp."""
        payload = asdict(self)
        payload["schema_version"] = SCHEMA_VERSION
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExplorationLog":
        data = json.loads(text)
        # schema_version is accepted on load but intentionally not required
        # or validated: older logs lack it, newer ones may bump it.
        data.pop("schema_version", None)
        steps = tuple(
            LoggedStep(
                index=s["index"],
                criteria=s["criteria"],
                group_size=s["group_size"],
                maps=tuple(LoggedMap(**m) for m in s["maps"]),
                operation_kind=s["operation_kind"],
                elapsed_seconds=s["elapsed_seconds"],
            )
            for s in data["steps"]
        )
        return cls(
            dataset=data["dataset"],
            mode=data["mode"],
            steps=steps,
            user=data.get("user", "anonymous"),
            metadata=data.get("metadata", {}),
        )

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json(), encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "ExplorationLog":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    @classmethod
    def load_all(cls, directory: str | Path) -> list["ExplorationLog"]:
        """Load every ``*.json`` log in a directory (sorted by name)."""
        return [
            cls.load(p) for p in sorted(Path(directory).glob("*.json"))
        ]

    # -- analysis helpers ------------------------------------------------------
    @property
    def explored_mode(self) -> ExplorationMode:
        return ExplorationMode(self.mode)

    def shown_specs(self) -> list[tuple[str, str, str]]:
        """Every displayed (side, attribute, dimension), in order."""
        return [
            (m.side, m.attribute, m.dimension)
            for step in self.steps
            for m in step.maps
        ]

    def total_seconds(self) -> float:
        return sum(step.elapsed_seconds for step in self.steps)

    @staticmethod
    def spec_frequencies(
        logs: Iterable["ExplorationLog"],
    ) -> dict[tuple[str, str, str], int]:
        """Display counts of each map spec across a set of logs."""
        counts: dict[tuple[str, str, str], int] = {}
        for log in logs:
            for spec in log.shown_specs():
                counts[spec] = counts.get(spec, 0) + 1
        return counts
