"""Rating maps (paper Definition 2) and candidate enumeration.

A rating map partitions a rating group by one reviewer/item attribute and
aggregates one rating dimension per subgroup.  The identity of a candidate
map — before any data is scanned — is its :class:`RatingMapSpec`; the
materialised object is :class:`RatingMap`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Sequence

import numpy as np

from ..model.database import Side, SubjectiveDatabase
from ..model.groups import RatingGroup, SelectionCriteria
from .distributions import RatingDistribution

__all__ = [
    "RatingMapSpec",
    "Subgroup",
    "RatingMap",
    "enumerate_map_specs",
    "build_rating_map",
]


@dataclass(frozen=True, order=True)
class RatingMapSpec:
    """Identity of a candidate rating map: GroupBy attribute × dimension."""

    side: Side
    attribute: str
    dimension: str

    def describe(self) -> str:
        return (
            f"GroupBy {self.side.value}.{self.attribute}, "
            f"aggregated by {self.dimension}"
        )

    def __repr__(self) -> str:
        return f"RatingMapSpec({self.describe()})"


@dataclass(frozen=True)
class Subgroup:
    """One (subgroup, rating distribution) pair of a rating map."""

    label: Any
    distribution: RatingDistribution

    @property
    def size(self) -> int:
        return self.distribution.total

    @property
    def average_score(self) -> float:
        """The paper's aggregated score (average in this work)."""
        return self.distribution.mean()

    def score(self, aggregation=None) -> float:
        """Aggregated score under any :class:`ScoreAggregation` (mean default)."""
        from .aggregation import ScoreAggregation, aggregate_score

        if aggregation is None:
            aggregation = ScoreAggregation.MEAN
        return aggregate_score(self.distribution, aggregation)


class RatingMap:
    """A materialised rating map: spec + non-empty subgroups.

    ``covered`` is the number of records in the subgroups (records with a
    missing grouping value are excluded, per Def. 2's disjoint partition of
    g_R into labelled subgroups); ``group_size`` is |g_R|.
    """

    def __init__(
        self,
        spec: RatingMapSpec,
        criteria: SelectionCriteria,
        subgroups: Sequence[Subgroup],
        group_size: int,
    ) -> None:
        self._spec = spec
        self._criteria = criteria
        self._subgroups = tuple(sg for sg in subgroups if not sg.distribution.is_empty)
        self._group_size = int(group_size)
        self._pooled: RatingDistribution | None = None
        self._profile_cache: tuple[np.ndarray, np.ndarray] | None = None

    @property
    def spec(self) -> RatingMapSpec:
        return self._spec

    @property
    def criteria(self) -> SelectionCriteria:
        return self._criteria

    @property
    def dimension(self) -> str:
        return self._spec.dimension

    @property
    def subgroups(self) -> tuple[Subgroup, ...]:
        return self._subgroups

    @property
    def n_subgroups(self) -> int:
        return len(self._subgroups)

    @property
    def group_size(self) -> int:
        """|g_R| — the size of the underlying rating group."""
        return self._group_size

    @property
    def covered(self) -> int:
        """Records that fall into some subgroup."""
        return sum(sg.size for sg in self._subgroups)

    @property
    def scale(self) -> int:
        if not self._subgroups:
            return 2
        return self._subgroups[0].distribution.scale

    @property
    def is_informative(self) -> bool:
        """A map needs ≥ 2 subgroups to show any contrast."""
        return self.n_subgroups >= 2

    def pooled(self) -> RatingDistribution:
        """Distribution of the whole map (all subgroups merged; cached)."""
        if self._pooled is None:
            counts = np.zeros(self.scale, dtype=np.int64)
            for sg in self._subgroups:
                counts += sg.distribution.counts
            self._pooled = RatingDistribution(counts)
        return self._pooled

    def sorted_by_score(self, descending: bool = True) -> tuple[Subgroup, ...]:
        """Subgroups ordered by average score (Figure 3's presentation)."""
        return tuple(
            sorted(
                self._subgroups,
                key=lambda sg: sg.average_score,
                reverse=descending,
            )
        )

    def render(self) -> str:
        """Textual rendering in the shape of the paper's Figure 3 tables."""
        lines = [f"rm: {self._spec.describe()} — over {self._criteria.describe()}"]
        header = f"{self._spec.attribute:<20} {'# of records':>12}  {'rating distribution':<30} {'avg. score':>10}"
        lines.append(header)
        lines.append("-" * len(header))
        for sg in self.sorted_by_score():
            dist = "{" + ",".join(
                f"{k}:{v}" for k, v in sg.distribution.to_mapping().items()
            ) + "}"
            lines.append(
                f"{str(sg.label):<20} {sg.size:>12}  {dist:<30} {sg.average_score:>10.1f}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"RatingMap({self._spec.describe()}: {self.n_subgroups} subgroups, "
            f"{self.covered}/{self._group_size} records)"
        )


def enumerate_map_specs(
    database: SubjectiveDatabase,
    criteria: SelectionCriteria,
    dimensions: Sequence[str] | None = None,
) -> Iterator[RatingMapSpec]:
    """All candidate map specs for a rating group.

    Candidates are every (explorable attribute) × (rating dimension) pair,
    excluding attributes the criteria already fixes to a single value —
    grouping by those would produce a degenerate single-subgroup map.
    """
    fixed = criteria.attributes()
    dims = tuple(dimensions) if dimensions is not None else database.dimensions
    for side, attribute in database.grouping_attributes():
        if (side, attribute) in fixed:
            continue
        for dimension in dims:
            yield RatingMapSpec(side, attribute, dimension)


def rating_map_from_counts(
    spec: RatingMapSpec,
    criteria: SelectionCriteria,
    counts: np.ndarray,
    labels: Sequence[Any],
    group_size: int,
) -> RatingMap:
    """Assemble a :class:`RatingMap` from a per-subgroup histogram matrix."""
    subgroups = [
        Subgroup(label, RatingDistribution(row))
        for label, row in zip(labels, counts)
        if row.sum() > 0
    ]
    return RatingMap(spec, criteria, subgroups, group_size)


def build_rating_map(group: RatingGroup, spec: RatingMapSpec) -> RatingMap:
    """Materialise one rating map over ``group`` with a single full scan."""
    database = group.database
    codes = group.subgroup_codes(spec.side, spec.attribute)
    labels = group.subgroup_labels(spec.side, spec.attribute)
    scores = group.scores(spec.dimension)
    scale = database.scale
    with np.errstate(invalid="ignore"):
        valid = (codes >= 0) & np.isfinite(scores) & (scores >= 1) & (scores <= scale)
    flat = np.bincount(
        codes[valid] * scale + (scores[valid].astype(np.int64) - 1),
        minlength=len(labels) * scale,
    )
    counts = flat.reshape(len(labels), scale)
    return rating_map_from_counts(spec, group.criteria, counts, labels, len(group))
