"""Interactivity caching (paper §2: in-memory caching / avoiding repeated
data access, after [18] and Data Canopy [57]).

Interactive SDE repeatedly revisits rating groups — a user rolls up, drills
back down, retraces recommendations.  :class:`CachingEngine` wraps a
:class:`~repro.core.engine.SubDEx` engine with two LRU caches:

* **group cache** — materialised :class:`RatingGroup` row sets per
  selection criteria (the dominant per-operation cost);
* **result cache** — full :class:`RMSetResult` per (criteria, seen-state
  fingerprint), so re-examining a selection under the same display history
  is instant.

The caches are transparent (identical results) and expose hit statistics
for the interactivity bench.

Both :class:`LRUCache` and :class:`CachingEngine` are **thread-safe**: the
serving layer (:mod:`repro.server`) shares one caching engine per dataset
across every concurrent session so group/result reuse is amortised across
users.  Cache bookkeeping (lookup, insertion, eviction, statistics) is
guarded by a per-cache lock; the expensive computation on a miss runs
*outside* the lock, under a per-key **single-flight** lock
(:class:`~repro.concurrency.KeyedSingleFlight`): when several threads miss
the same key simultaneously, one computes while the rest wait and then
read the freshly cached value — no thundering herd of duplicate
generations.  Different keys never block each other.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Hashable

from ..concurrency import KeyedSingleFlight
from ..model.groups import RatingGroup, SelectionCriteria
from ..obs import span as obs_span
from ..resilience.gate import under_pressure
from .engine import SubDEx
from .generator import RMSetResult
from .utility import SeenMaps

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .session import ExplorationSession

__all__ = ["CacheStats", "LRUCache", "CachingEngine"]


@dataclass
class CacheStats:
    """Hit/miss counters of one cache.

    Mutated only while the owning cache's lock is held, so the counters
    stay consistent under concurrent use; reads are single-attribute and
    therefore safe without the lock.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def snapshot(self) -> dict[str, float]:
        """A point-in-time JSON-friendly view (for the /metrics endpoint)."""
        hits, misses, evictions = self.hits, self.misses, self.evictions
        requests = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "requests": requests,
            "evictions": evictions,
            "hit_rate": hits / requests if requests else 0.0,
        }

    def describe(self) -> str:
        return (
            f"{self.hits} hits / {self.requests} requests "
            f"({self.hit_rate:.0%}), {self.evictions} evictions"
        )


class LRUCache:
    """A small, explicit, thread-safe LRU cache (no functools.lru_cache:
    we need stats and non-function usage)."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._store: OrderedDict[Hashable, object] = OrderedDict()
        self._lock = threading.RLock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def get(self, key: Hashable) -> object | None:
        with self._lock:
            if key in self._store:
                self._store.move_to_end(key)
                self.stats.hits += 1
                return self._store[key]
            self.stats.misses += 1
            return None

    def peek(self, key: Hashable) -> object | None:
        """Like :meth:`get` but without touching the hit/miss counters.

        Used for the re-check after acquiring a single-flight lock: the
        original miss was already counted, and a waiter finding the value
        the first holder computed is not a second logical request.
        """
        with self._lock:
            if key in self._store:
                self._store.move_to_end(key)
                return self._store[key]
            return None

    def put(self, key: Hashable, value: object) -> None:
        with self._lock:
            if key in self._store:
                self._store.move_to_end(key)
            self._store[key] = value
            if len(self._store) > self._capacity:
                self._store.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._store.clear()


def _seen_fingerprint(seen: SeenMaps) -> tuple:
    """A hashable fingerprint of the display history that affects results.

    DW utilities depend on the dimension/attribute histories and global
    peculiarity on the pooled distributions; both are captured by the
    ordered dimension history plus the pooled distributions themselves
    (hashable RatingDistribution values).
    """
    return (
        seen.dimension_history(),
        seen.pooled_distributions(),
    )


class CachingEngine:
    """A drop-in caching layer over :class:`SubDEx`.

    ``rating_maps`` / ``group`` calls hit the caches; everything else
    delegates to the wrapped engine.  Safe to share across threads — each
    server worker thread (or exploration session) may call into one shared
    instance concurrently.
    """

    def __init__(
        self,
        engine: SubDEx,
        group_capacity: int = 256,
        result_capacity: int = 128,
    ) -> None:
        self._engine = engine
        self._groups = LRUCache(group_capacity)
        self._results = LRUCache(result_capacity)
        # criteria → most recent full-quality result under *any* display
        # history: the graceful-degradation fallback ("stale RM-Set")
        self._latest = LRUCache(result_capacity)
        self._flight = KeyedSingleFlight()
        self.stale_hits = 0
        #: Requests that blocked on another thread's in-flight computation
        #: and then read its freshly cached value (no duplicate work done).
        self.flight_waits = 0

    @property
    def engine(self) -> SubDEx:
        return self._engine

    @property
    def database(self):
        return self._engine.database

    @property
    def group_stats(self) -> CacheStats:
        return self._groups.stats

    @property
    def result_stats(self) -> CacheStats:
        return self._results.stats

    def _materialise(self, criteria: SelectionCriteria) -> RatingGroup:
        index = self._engine.index
        if index is not None:
            return index.group(criteria)
        return RatingGroup(self._engine.database, criteria)

    def group(self, criteria: SelectionCriteria) -> RatingGroup:
        """A (cached) materialised rating group."""
        with obs_span("cache.group") as sp:
            cached = self._groups.get(criteria)
            if cached is not None:
                sp.set(outcome="hit")
                return cached  # type: ignore[return-value]
            with self._flight.lock(("group", criteria)):
                cached = self._groups.peek(criteria)
                if cached is None:
                    cached = self._materialise(criteria)
                    self._groups.put(criteria, cached)
                    sp.set(outcome="miss")
                else:
                    self.flight_waits += 1
                    sp.set(outcome="wait")
            return cached  # type: ignore[return-value]

    def rating_maps(
        self,
        criteria: SelectionCriteria | None = None,
        seen: SeenMaps | None = None,
    ) -> RMSetResult:
        """Problem 1 with caching; results identical to the plain engine."""
        criteria = criteria or SelectionCriteria.root()
        seen = seen or SeenMaps(
            self._engine.database.dimensions,
            n_attributes=len(self._engine.database.grouping_attributes()),
        )
        key = (criteria, _seen_fingerprint(seen))
        with obs_span("cache.rating_maps") as sp:
            cached = self._results.get(key)
            if cached is not None:
                sp.set(outcome="hit")
                return cached  # type: ignore[return-value]
            with self._flight.lock(("result", key)):
                cached = self._results.peek(key)
                if cached is not None:
                    self.flight_waits += 1
                    sp.set(outcome="wait")
                    return cached  # type: ignore[return-value]
                if under_pressure():
                    # graceful degradation: reuse the latest result computed
                    # for the same selection under a *different* display
                    # history instead of paying a full generation, flagged
                    # ``degraded`` so the serving layer can tell the client
                    stale = self._latest.peek(criteria)
                    if stale is not None:
                        self.stale_hits += 1
                        sp.set(outcome="stale")
                        return replace(stale, degraded=True)  # type: ignore[arg-type]
                sp.set(outcome="miss")
                group = self.group(criteria)
                result = self._engine.generator.generate(group, seen)
                if not result.degraded:
                    # degraded (pressure-time) results are answers, not truth:
                    # keep them out of the shared caches so later requests
                    # recompute at full fidelity
                    self._results.put(key, result)
                    self._latest.put(criteria, result)
                return result

    def session(self, start: SelectionCriteria | None = None) -> "ExplorationSession":
        """A fresh exploration session whose group materialisation and
        RM-Set generation run through this shared cache.

        Sessions created this way by different users amortise each other's
        work: revisiting a selection another session already examined under
        the same display history is a cache hit.
        """
        from .session import ExplorationSession

        return ExplorationSession(
            self._engine.database,
            self._engine.generator,
            self._engine.recommender,
            start,
            cache=self,
            index=self._engine.index,
        )

    def clear(self) -> None:
        self._groups.clear()
        self._results.clear()
        self._latest.clear()
