"""Recommendation Builder: next-step recommendations (Problem 2, paper §4.3).

Candidate operations are the ≤-2-edit neighbourhood of the current selection
criteria.  Each candidate is scored by Eq. (2): the sum of the DW utilities
of the k rating maps its rating group would display — i.e. the RM-Set
Generator is reused as the scoring oracle, which is exactly how the paper
recommends maps and operations *simultaneously*.

Scoring independent candidates is embarrassingly parallel; the builder
evaluates them on a thread pool (the histogram accumulation is numpy-bound
and releases the GIL).  ``parallel=False`` gives the paper's No-Parallelism
baseline.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle: index builds on core
    from ..index.facade import IndexedDatabase, NeighborhoodContext

from ..anytime.budget import effective_deadline
from ..anytime.ladder import QualityRung, RungPlan
from ..anytime.partial import AnytimeRecommendation, Completeness
from ..batch.scoring import (
    BatchScored,
    FamilyBatchScorer,
    FamilyPlan,
    plan_lookup,
    plan_units,
    supports_batch,
)
from ..model.database import SubjectiveDatabase
from ..model.groups import RatingGroup, SelectionCriteria
from ..model.operations import Operation, enumerate_operations
from ..obs import activate as obs_activate
from ..obs import current_context as obs_current_context
from ..obs import span as obs_span
from ..resilience.deadline import (
    Deadline,
    DeadlineExceeded,
    current_deadline,
    deadline_scope,
)
from ..resilience.gate import pressure_scope, under_pressure
from .generator import RMSetGenerator, RMSetResult
from .pruning import PruningStrategy
from .utility import SeenMaps

__all__ = ["RecommenderConfig", "ScoredOperation", "RecommendationBuilder"]


@dataclass(frozen=True)
class RecommenderConfig:
    """Parameters of the Recommendation Builder.

    ``o`` is the number of recommendations (paper default 3);
    ``max_values_per_attribute`` caps the FILTER/CHANGE fan-out per
    attribute (most frequent values first); ``min_group_size`` discards
    operations whose rating group is too small to chart.

    ``preview_uses_full_pipeline`` controls how candidate operations are
    scored.  By default each candidate's rating maps are computed with a
    single exact pass (``preview_n_phases`` = 1, no pruning): the phased
    pruning framework exists to cut *scan* cost, but for in-memory
    candidate scoring a single vectorised pass is both faster and exact.
    The scalability benches set ``preview_uses_full_pipeline=True`` so the
    recommender exercises the configured pruning scheme end to end, as the
    paper's timing experiments do.
    """

    o: int = 3
    max_values_per_attribute: int | None = None
    include_compound: bool = False
    min_group_size: int = 5
    parallel: bool = True
    max_workers: int | None = None
    preview_uses_full_pipeline: bool = False
    preview_n_phases: int = 1
    #: Under load pressure (see :mod:`repro.resilience.gate`) only the
    #: first this-many candidate operations are scored — recommendation
    #: quality degrades before availability does.
    pressure_candidate_cap: int = 16

    def workers(self) -> int:
        if not self.parallel:
            return 1
        if self.max_workers is not None:
            return max(1, self.max_workers)
        return max(1, os.cpu_count() or 1)


@dataclass(frozen=True)
class ScoredOperation:
    """A candidate operation with its Eq.-(2) utility and map preview."""

    operation: Operation
    utility: float
    preview: RMSetResult

    @property
    def target(self) -> SelectionCriteria:
        return self.operation.target

    def describe(self) -> str:
        return f"{self.operation.describe()}  [u={self.utility:.3f}]"


class RecommendationBuilder:
    """Scores the operation neighbourhood and returns the top-o."""

    def __init__(
        self,
        database: SubjectiveDatabase,
        generator: RMSetGenerator,
        config: RecommenderConfig | None = None,
        index: "IndexedDatabase | None" = None,
        batch_scoring: bool = True,
    ) -> None:
        self._database = database
        self._generator = generator
        self._config = config or RecommenderConfig()
        self._index = index
        self._batch_scoring = bool(batch_scoring)
        if self._config.preview_uses_full_pipeline:
            self._preview_generator = generator
        else:
            self._preview_generator = RMSetGenerator(
                replace(
                    generator.config,
                    n_phases=max(1, self._config.preview_n_phases),
                    pruning=PruningStrategy.NONE,
                )
            )
        # shared scoring pool: created once on first parallel request and
        # reused for the builder's lifetime (no per-request thread churn)
        self._pool_lock = threading.Lock()
        self._executor: ThreadPoolExecutor | None = None
        self._batch_lock = threading.Lock()
        self._batch_totals = {
            "requests": 0,
            "families": 0,
            "candidates": 0,
            "batched": 0,
            "scored": 0,
            "evaluated": 0,
            "pruned": 0,
            "materialized": 0,
            "fallback": 0,
        }

    @property
    def config(self) -> RecommenderConfig:
        return self._config

    @property
    def batch_scoring(self) -> bool:
        """Whether family-batched scoring is enabled for this builder."""
        return self._batch_scoring

    def batch_stats(self) -> dict[str, int]:
        """Lifetime family-batching counters (for ``/metrics``)."""
        with self._batch_lock:
            return dict(self._batch_totals)

    def _merge_batch_stats(self, stats: "dict[str, int]", fallback: int) -> None:
        with self._batch_lock:
            self._batch_totals["requests"] += 1
            self._batch_totals["fallback"] += fallback
            for key in ("families", "candidates", "batched", "scored",
                        "evaluated", "pruned", "materialized"):
                self._batch_totals[key] += stats[key]

    def _shared_pool(self) -> "ThreadPoolExecutor | None":
        """The builder-lifetime scoring pool (``None`` when serial)."""
        workers = self._config.workers()
        if workers <= 1:
            return None
        with self._pool_lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="subdex-score"
                )
            return self._executor

    def _use_batch(self, ctx: "NeighborhoodContext | None") -> bool:
        """Family batching needs the index context and a kernel-covered config."""
        return (
            ctx is not None
            and self._batch_scoring
            and supports_batch(self._preview_generator.config)
        )

    def candidate_operations(self, current: SelectionCriteria) -> list[Operation]:
        """The enumerated (unscored) neighbourhood of ``current``."""
        return list(
            enumerate_operations(
                self._database,
                current,
                max_values_per_attribute=self._config.max_values_per_attribute,
                include_compound=self._config.include_compound,
            )
        )

    def _materialise(self, criteria: SelectionCriteria) -> RatingGroup:
        """A criteria's rating group, via the index when one is attached."""
        if self._index is not None:
            return self._index.group(criteria)
        return RatingGroup(self._database, criteria)

    def _score_one(
        self,
        operation: Operation,
        seen: SeenMaps,
        current_rows: "np.ndarray | None" = None,
        generator: RMSetGenerator | None = None,
    ) -> ScoredOperation | None:
        group = self._materialise(operation.target)
        if len(group) < self._config.min_group_size:
            return None
        if current_rows is not None and len(group) == len(current_rows):
            # §3.2.1: an operation generates a *new* rating group — adding a
            # redundant pair (1992 ⊆ 1990s) selects the same records and is
            # not a real move (it also causes add/remove oscillation in FA)
            if np.array_equal(group.rows, current_rows):
                return None
        preview = (generator or self._preview_generator).generate(group, seen)
        if not preview.selected:
            return None
        return ScoredOperation(operation, preview.total_utility(), preview)

    def _score_one_indexed(
        self,
        ctx: "NeighborhoodContext",
        operation: Operation,
        seen: SeenMaps,
        generator: RMSetGenerator | None = None,
    ) -> ScoredOperation | None:
        """Score from sufficient statistics — no group materialisation.

        Mirrors :meth:`_score_one` decision for decision: same size gate,
        same redundancy test (a FILTER child is a subset of the parent, so
        its size alone settles row equality), and the preview is generated
        from count matrices identical to what the naive scan produces.
        """
        view = ctx.candidate(operation)
        size = view.size
        if size < self._config.min_group_size:
            return None
        if view.matches_parent(ctx.parent_size):
            return None
        preview = (generator or self._preview_generator).generate_from_counts(
            operation.target,
            view.specs,
            view.counts_of,
            view.labels_of,
            size,
            seen,
        )
        if not preview.selected:
            return None
        return ScoredOperation(operation, preview.total_utility(), preview)

    def recommend(
        self,
        current: SelectionCriteria,
        seen: SeenMaps,
        o: int | None = None,
        candidates: Sequence[Operation] | None = None,
        exclude_targets: "set[SelectionCriteria] | frozenset[SelectionCriteria] | None" = None,
        current_group: RatingGroup | None = None,
    ) -> list[ScoredOperation]:
        """Problem 2: the top-o next operations by aggregated DW utility.

        ``exclude_targets`` drops candidates leading back to selections the
        session has already examined — the operation-level counterpart of
        multi-step diversity.  Without it, two selections whose map sets
        tie in utility trap the Fully-Automated mode in an A↔B cycle.

        ``current_group`` lets callers that already hold the current
        selection's rating group (sessions, the caching engine) pass it in
        instead of having it re-materialised here; it is used only when its
        criteria matches ``current``.
        """
        o = self._config.o if o is None else o
        with obs_span("engine.recommend") as sp:
            operations = (
                list(candidates)
                if candidates is not None
                else self.candidate_operations(current)
            )
            if exclude_targets:
                filtered = [
                    op for op in operations if op.target not in exclude_targets
                ]
                if filtered:
                    operations = filtered
            # Ambient request context (deadline, load pressure, active trace)
            # lives in contextvars, which worker threads do not inherit:
            # capture it here and re-install it around every pooled scoring
            # call so candidate spans join this request's trace.
            deadline = current_deadline()
            pressure = under_pressure()
            trace_ctx = obs_current_context()
            if pressure:
                operations = operations[: self._config.pressure_candidate_cap]
            if current_group is None or current_group.criteria != current:
                current_group = self._materialise(current)
            current_rows = current_group.rows
            # Sufficient-statistic fast path: candidates are scored from fused
            # cube slices / delta-maintained histograms instead of per-candidate
            # group scans.  The full-pipeline preview mode exercises the phased
            # pruning machinery on purpose, so it keeps the group-based path.
            ctx: "NeighborhoodContext | None" = None
            if self._index is not None and not self._config.preview_uses_full_pipeline:
                ctx = self._index.neighborhood(current_group)

            def score(operation: Operation) -> ScoredOperation | None:
                with deadline_scope(deadline), pressure_scope(pressure), \
                        obs_activate(trace_ctx):
                    if deadline is not None:
                        deadline.check()
                    if ctx is not None:
                        return self._score_one_indexed(ctx, operation, seen)
                    return self._score_one(operation, seen, current_rows)

            workers = self._config.workers()
            use_batch = self._use_batch(ctx)
            pool = (
                self._shared_pool()
                if workers > 1 and len(operations) > 1
                else None
            )
            if use_batch:
                batch = FamilyBatchScorer(
                    ctx, self._config, self._preview_generator, seen, o
                )
                units = plan_units(ctx, operations, workers)
                families = [u for u in units if isinstance(u, FamilyPlan)]
                residue = [
                    op
                    for u in units
                    if not isinstance(u, FamilyPlan)
                    for op in u
                ]

                def prep_rows(operation: Operation):
                    with deadline_scope(deadline), pressure_scope(pressure), \
                            obs_activate(trace_ctx):
                        if deadline is not None:
                            deadline.check()
                        return batch.prepare_rows(operation)

                if pool is not None and len(residue) > 1:
                    rows_ready = list(pool.map(prep_rows, residue))
                else:
                    rows_ready = [prep_rows(op) for op in residue]
                prepared = [ready for ready in rows_ready if ready is not None]
                for family in families:
                    if deadline is not None:
                        deadline.check()
                    ready = batch.prepare_family(family)
                    if ready is not None:
                        prepared.append(ready)
                scored_count = sum(ready.n_scored for ready in prepared)
                # one request-global queue: evaluate best-bound-first across
                # all families and residue candidates, prune the tail in a
                # single cut
                scored = list(batch.finalize_prepared(prepared))
            else:
                if pool is not None:
                    scored = list(pool.map(score, operations))
                else:
                    scored = [score(op) for op in operations]
                scored_count = sum(1 for s in scored if s is not None)
            ranked = self._rank(scored)
            top = self._materialize_top(ranked, o)
            if use_batch:
                self._merge_batch_stats(
                    batch.stats,
                    fallback=len(operations) - batch.stats["candidates"],
                )
            sp.set(
                candidates=len(operations),
                scored=scored_count,
                indexed=ctx is not None,
                batched=use_batch,
                returned=len(top),
            )
            return top

    # -- anytime --------------------------------------------------------------
    def _preview_for(self, plan: "RungPlan | None") -> RMSetGenerator:
        """The preview generator a ladder rung prescribes.

        ``preview_phases`` applies everywhere; a ``pruning`` override only
        makes sense when previews run the full phased pipeline (the exact
        single-pass preview has nothing to prune).
        """
        if plan is None:
            return self._preview_generator
        base = self._preview_generator.config
        changes: dict[str, object] = {}
        if plan.preview_phases is not None and base.n_phases != plan.preview_phases:
            changes["n_phases"] = max(1, plan.preview_phases)
        if plan.pruning is not None and self._config.preview_uses_full_pipeline:
            strategy = PruningStrategy(plan.pruning)
            if base.pruning is not strategy:
                changes["pruning"] = strategy
        if not changes:
            return self._preview_generator
        return RMSetGenerator(replace(base, **changes))

    def recommend_anytime(
        self,
        current: SelectionCriteria,
        seen: SeenMaps,
        budget: "Deadline | None" = None,
        o: int | None = None,
        plan: "RungPlan | None" = None,
        candidates: Sequence[Operation] | None = None,
        exclude_targets: "set[SelectionCriteria] | frozenset[SelectionCriteria] | None" = None,
        current_group: RatingGroup | None = None,
        force_cut_after: int | None = None,
        on_snapshot: "Callable[[list[ScoredOperation]], None] | None" = None,
    ) -> AnytimeRecommendation:
        """Cooperative-anytime Problem 2: best-so-far under a soft budget.

        The candidate loop runs in phase-sized chunks; between chunks the
        best-so-far ranking is a well-defined snapshot (``on_snapshot``
        observes each one).  When ``budget`` — a *soft* limit, distinct
        from the ambient hard deadline — expires, the loop cuts at the
        next boundary and returns a partial result with an honest
        :class:`~repro.anytime.partial.Completeness` instead of raising.
        The ambient hard deadline still unwinds with
        :class:`~repro.resilience.deadline.DeadlineExceeded` (a budget
        larger than the remaining deadline can never be honoured — the
        smaller limit always wins).

        ``plan`` applies a quality-ladder rung: a candidate cap, a sample
        stride and cheaper previews.  ``force_cut_after`` (from
        :meth:`~repro.resilience.faults.FaultPlan.budget_cut`) forces the
        cut after that many chunks, making partial-result paths testable
        without timing races.  With no budget, no plan and no forced cut
        the result is exactly :meth:`recommend`'s.
        """
        o = self._config.o if o is None else o
        started = time.perf_counter()
        hard = current_deadline()
        soft = effective_deadline(hard, budget)
        with obs_span(
            "anytime.recommend",
            rung=plan.label if plan is not None else QualityRung.FULL.label,
            budget_ms=(
                round(budget.budget_seconds * 1000.0) if budget is not None else None
            ),
        ) as sp:
            operations = (
                list(candidates)
                if candidates is not None
                else self.candidate_operations(current)
            )
            if exclude_targets:
                filtered = [
                    op for op in operations if op.target not in exclude_targets
                ]
                if filtered:
                    operations = filtered
            pressure = under_pressure()
            trace_ctx = obs_current_context()
            if pressure:
                operations = operations[: self._config.pressure_candidate_cap]
            total = len(operations)
            if plan is not None:
                if plan.candidate_cap is not None:
                    operations = operations[: plan.candidate_cap]
                if plan.sample_stride > 1:
                    operations = operations[:: plan.sample_stride]
            if current_group is None or current_group.criteria != current:
                current_group = self._materialise(current)
            current_rows = current_group.rows
            preview = self._preview_for(plan)
            ctx: "NeighborhoodContext | None" = None
            if self._index is not None and not self._config.preview_uses_full_pipeline:
                ctx = self._index.neighborhood(current_group)

            def score(operation: Operation) -> "ScoredOperation | None":
                # the *soft* limit governs scoring so a spent budget aborts
                # the in-flight preview quickly; the cut decision below
                # distinguishes it from the hard deadline
                with deadline_scope(soft), pressure_scope(pressure), \
                        obs_activate(trace_ctx):
                    if soft is not None:
                        soft.check()
                    if ctx is not None:
                        return self._score_one_indexed(
                            ctx, operation, seen, preview
                        )
                    return self._score_one(
                        operation, seen, current_rows, preview
                    )

            workers = self._config.workers()
            chunk = max(1, workers)
            use_batch = self._use_batch(ctx)
            batch: "FamilyBatchScorer | None" = None
            lookup: "dict[int, tuple[FamilyPlan, int] | None] | None" = None
            if use_batch:
                batch = FamilyBatchScorer(
                    ctx, self._config, preview, seen, o
                )
                # candidates keep their scan order (so snapshot and
                # budget-cut boundaries match the per-candidate path);
                # the lookup batches the arithmetic by family lazily
                lookup = plan_lookup(ctx, operations)
            units = [
                operations[offset : offset + chunk]
                for offset in range(0, len(operations), chunk)
            ]
            scored: list[ScoredOperation | None] = []
            scanned = 0
            scored_count = 0
            snapshots = 0
            budget_cut = False
            pool = (
                self._shared_pool()
                if workers > 1 and len(operations) > 1
                else None
            )
            for unit in units:
                if hard is not None:
                    hard.check()
                if force_cut_after is not None and snapshots >= force_cut_after:
                    budget_cut = True
                    break
                if budget is not None and budget.expired:
                    budget_cut = True
                    break
                try:
                    if batch is not None:
                        # the batch scorer checks the soft limit between
                        # spec stacks and evaluations
                        with deadline_scope(soft), pressure_scope(pressure), \
                                obs_activate(trace_ctx):
                            block_scored, block_count = (
                                batch.score_scan_block(unit, lookup)
                            )
                    else:
                        if pool is not None and len(unit) > 1:
                            block_scored = list(pool.map(score, unit))
                        else:
                            block_scored = [score(op) for op in unit]
                        block_count = sum(
                            1 for result in block_scored if result is not None
                        )
                except DeadlineExceeded:
                    if hard is not None and hard.expired:
                        raise  # the hard deadline, not the budget
                    budget_cut = True
                    break
                scored.extend(block_scored)
                scanned += len(unit)
                scored_count += block_count
                snapshots += 1
                if on_snapshot is not None:
                    on_snapshot(
                        self._materialize_top(self._rank(scored), o)
                    )
            ranked = self._rank(scored)
            top = tuple(self._materialize_top(ranked, o))
            if batch is not None:
                self._merge_batch_stats(
                    batch.stats,
                    fallback=scanned - batch.stats["candidates"],
                )
            confidence = 1.0
            if preview.config.pruning is not PruningStrategy.NONE:
                confidence = 1.0 - preview.config.delta
            completeness = Completeness(
                rung=plan.rung if plan is not None else QualityRung.FULL,
                candidates_total=total,
                candidates_scanned=scanned,
                candidates_scored=scored_count,
                complete=not budget_cut and scanned == total,
                pruning_confidence=confidence,
                snapshots=snapshots,
                budget_cut=budget_cut,
            )
            sp.set(
                candidates=total,
                scanned=scanned,
                complete=completeness.complete,
                batched=use_batch,
                snapshots=snapshots,
            )
            return AnytimeRecommendation(
                recommendations=top,
                completeness=completeness,
                elapsed_seconds=time.perf_counter() - started,
            )

    @staticmethod
    def _rank(
        scored: "Sequence[ScoredOperation | BatchScored | None]",
    ) -> "list[ScoredOperation | BatchScored]":
        # describe_key memoises target.describe(): anytime re-ranks after
        # every chunk, so the tie-break string is built once per operation
        return sorted(
            (s for s in scored if s is not None),
            key=lambda s: (-s.utility, s.operation.describe_key),
        )

    @staticmethod
    def _materialize_top(
        ranked: "Sequence[ScoredOperation | BatchScored]", o: int
    ) -> "list[ScoredOperation]":
        """The top-o with previews built — batch entries materialise here.

        Batch-scored candidates carry an exact utility but a lazy preview;
        only entries that actually make a returned top-o (or an anytime
        snapshot) pay for ``generate_from_counts``.  Materialisation is
        cached on the entry, so repeated snapshots re-use it.
        """
        top: "list[ScoredOperation]" = []
        for entry in ranked:
            if len(top) >= o:
                break
            if isinstance(entry, BatchScored):
                final = entry.materialize()
                if final is None:  # pragma: no cover - pool ⇒ selected
                    continue
                top.append(final)
            else:
                top.append(entry)
        return top
