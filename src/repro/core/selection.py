"""RM-Selector: the Diverse Rating Map Set Selection problem (Problem 1).

Given the l × k highest-DW-utility rating maps produced by the RM-Generator,
select the k most diverse among them using GMM (paper §4.2.2).  The seed is
the highest-utility map, so the top map is always shown — with l = 1 the
selection degenerates to pure top-k by utility, exactly as the paper
describes ("when l = 1 ... the highest utility scores").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .distance import MapDistanceMethod, map_distance, min_pairwise_distance
from .gmm import gmm_select
from .rating_maps import RatingMap

__all__ = ["SelectionResult", "select_diverse_maps"]


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of one Problem-1 selection."""

    selected: tuple[RatingMap, ...]
    candidates: tuple[RatingMap, ...]
    diversity: float

    @property
    def k(self) -> int:
        return len(self.selected)


def select_diverse_maps(
    candidates: Sequence[RatingMap],
    k: int,
    method: MapDistanceMethod = MapDistanceMethod.PROFILE,
) -> SelectionResult:
    """Pick the k most diverse maps among utility-ranked ``candidates``.

    ``candidates`` must be ordered by descending DW utility (the
    RM-Generator's output); the first is used as the GMM seed.  Diversity of
    the selection, ``div(RM') = min pairwise d``, is reported alongside.
    """
    if k <= 0:
        return SelectionResult((), tuple(candidates), 0.0)
    chosen = gmm_select(
        list(candidates),
        k,
        lambda a, b: map_distance(a, b, method),
        seed_index=0,
    )
    return SelectionResult(
        tuple(chosen),
        tuple(candidates),
        min_pairwise_distance(chosen, method),
    )
