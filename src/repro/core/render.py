"""Terminal rendering of rating maps (the UI's histograms, paper Fig. 1/5).

The paper's UI draws rating maps as bar-chart histograms; this module is
the terminal equivalent: per-subgroup distribution bars, score gauges, and
a compact step dashboard used by the CLI.
"""

from __future__ import annotations

import math
from typing import Sequence

from .rating_maps import RatingMap

__all__ = ["distribution_bar", "score_gauge", "render_histogram", "render_step"]

_BLOCKS = " ▁▂▃▄▅▆▇█"


def distribution_bar(counts: Sequence[int], width_per_bucket: int = 1) -> str:
    """A sparkline of a score histogram, one block glyph per bucket."""
    counts = [int(c) for c in counts]
    peak = max(counts) if len(counts) else 0
    if peak == 0:
        return " " * len(counts) * width_per_bucket
    glyphs = []
    for count in counts:
        level = int(round((len(_BLOCKS) - 1) * count / peak))
        glyphs.append(_BLOCKS[level] * width_per_bucket)
    return "".join(glyphs)


def score_gauge(score: float, scale: int, width: int = 10) -> str:
    """A ``[████······]`` gauge of a score's position on the 1..m scale."""
    if math.isnan(score):
        return "[" + "·" * width + "]"
    position = (score - 1) / (scale - 1)
    filled = int(round(position * width))
    return "[" + "█" * filled + "·" * (width - filled) + "]"


def render_histogram(rating_map: RatingMap, max_rows: int = 12) -> str:
    """A rating map as per-subgroup sparklines + gauges (UI histogram)."""
    lines = [f"▌ {rating_map.spec.describe()}"]
    ordered = rating_map.sorted_by_score()
    shown = ordered[:max_rows]
    label_width = max((len(str(sg.label)) for sg in shown), default=5)
    label_width = min(label_width, 24)
    for sg in shown:
        label = str(sg.label)
        if len(label) > label_width:
            label = label[: label_width - 1] + "…"
        avg = sg.average_score
        avg_text = " n/a" if math.isnan(avg) else f"{avg:4.1f}"
        lines.append(
            f"  {label:<{label_width}}  "
            f"{distribution_bar(sg.distribution.counts, 2)}  "
            f"{score_gauge(avg, rating_map.scale)} {avg_text}  "
            f"({sg.size} records)"
        )
    if len(ordered) > max_rows:
        lines.append(f"  … {len(ordered) - max_rows} more subgroups")
    return "\n".join(lines)


def render_step(maps: Sequence[RatingMap], title: str = "") -> str:
    """A step dashboard: every displayed map as a histogram block."""
    parts = []
    if title:
        parts.append(f"━━ {title} ━━")
    for rating_map in maps:
        parts.append(render_histogram(rating_map))
    return "\n\n".join(parts)
