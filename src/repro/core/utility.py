"""Utility and dimension-weighted utility of rating maps (paper §3.2.3).

``u(rm, RM) = max(Conc, Agr, Pec_self, Pec_global)`` over *normalised*
criterion scores, and the dimension-weighted score of Eq. (1):

.. math::
    \\widehat{u}(rm_{r_i}, RM) = (1 - m_{r_i}/m) \\cdot u(rm_{r_i}, RM)

:func:`get_weights` is the paper's Algorithm 2 and returns the per-dimension
*frequencies* ``m_{r_i}/m``; the multiplicative weight applied to utilities
is ``1 − frequency`` (Eq. 1) — rarely-shown dimensions are promoted.

:class:`SeenMaps` is the cross-step state RM: which dimensions were shown,
plus the pooled distribution of each seen map (needed by global
peculiarity).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable, Mapping, Sequence, TypeVar

from .distributions import RatingDistribution
from .interestingness import (
    Criterion,
    CriterionScores,
    DispersionMeasure,
    PeculiarityDistance,
)
from .normalization import (
    NormalizationStrategy,
    conciseness_01,
    minmax_normalize,
)

if TYPE_CHECKING:  # pragma: no cover
    from .rating_maps import RatingMap

__all__ = [
    "UtilityAggregation",
    "UtilityConfig",
    "SeenMaps",
    "ScoredCandidate",
    "get_weights",
    "dimension_weights",
    "normalize_criteria",
    "aggregate_utility",
    "score_candidate_set",
]

K = TypeVar("K", bound=Hashable)

ALL_CRITERIA: tuple[Criterion, ...] = (
    Criterion.CONCISENESS,
    Criterion.AGREEMENT,
    Criterion.PECULIARITY_SELF,
    Criterion.PECULIARITY_GLOBAL,
)


class UtilityAggregation(str, enum.Enum):
    """How per-criterion scores combine into a utility (max in the paper)."""

    MAX = "max"
    AVG = "avg"


@dataclass(frozen=True)
class UtilityConfig:
    """Configuration of the utility function.

    Defaults reproduce the paper's prototype (§4.1).  The other values are
    the paper's stated alternatives, exercised by the ablation benches.
    """

    criteria: tuple[Criterion, ...] = ALL_CRITERIA
    aggregation: UtilityAggregation = UtilityAggregation.MAX
    dispersion: DispersionMeasure = DispersionMeasure.STD
    peculiarity: PeculiarityDistance = PeculiarityDistance.TOTAL_VARIATION
    #: aggregate per-seen-map peculiarity distances with min (novelty =
    #: distance to the *closest* seen map).  The paper's text says max, but
    #: max saturates once a handful of diverse maps has been shown (every
    #: candidate is then far from *some* seen map) and multi-step diversity
    #: — which the paper demonstrates working — collapses; min is the
    #: reading that produces the demonstrated behaviour.  Set True→False to
    #: ablate (see bench_ablation_utility_criteria).
    global_use_min: bool = True
    normalization: NormalizationStrategy = NormalizationStrategy.SQUASH
    use_dimension_weights: bool = True
    #: also weight by grouping-attribute display frequency — the natural
    #: generalisation of Eq. (1) from rating dimensions to grouping
    #: attributes (need N2 applied to the other axis of a rating map).
    #: Without it the engine keeps re-showing the few highest-utility
    #: attributes across steps; Table 5's "more attributes seen" behaviour
    #: needs the rotation.  Ablatable.
    use_attribute_weights: bool = True
    min_support: int = 5
    #: agreement of a maximum-entropy (uniform) rating map — the SQUASH
    #: normalisation measures agreement *above* this baseline, otherwise
    #: every map scores ≈0.6 and agreement drowns the other criteria.
    #: 1 / (1 + σ_uniform) with σ_uniform = sqrt((m²−1)/12) ≈ 1.414 for m=5.
    agreement_floor: float = 0.414

    def __post_init__(self) -> None:
        if not self.criteria:
            raise ValueError("at least one utility criterion is required")


class SeenMaps:
    """The set RM of rating maps the user has seen so far (paper notation).

    Tracks per-dimension display counts (Algorithm 2's input) and the pooled
    distribution of each seen map (global peculiarity's references).
    """

    def __init__(
        self, dimensions: Sequence[str], n_attributes: int | None = None
    ) -> None:
        self._dimensions = tuple(dimensions)
        self._counts: dict[str, int] = {d: 0 for d in self._dimensions}
        self._pooled: list[RatingDistribution] = []
        self._pooled_dims: list[str] = []
        self._attribute_counts: dict[Hashable, int] = {}
        self._n_attributes = n_attributes

    @property
    def dimensions(self) -> tuple[str, ...]:
        return self._dimensions

    @property
    def total(self) -> int:
        """m = |RM|."""
        return sum(self._counts.values())

    def count_for(self, dimension: str) -> int:
        """m_{r_i} — maps seen for ``dimension``."""
        return self._counts[dimension]

    def pooled_distributions(self) -> tuple[RatingDistribution, ...]:
        return tuple(self._pooled)

    def dimension_history(self) -> tuple[str, ...]:
        """Dimensions of seen maps, in display order."""
        return tuple(self._pooled_dims)

    def add(self, rating_map: "RatingMap") -> None:
        """Record that the user was shown ``rating_map``."""
        dimension = rating_map.dimension
        if dimension not in self._counts:
            raise KeyError(f"unknown rating dimension {dimension!r}")
        self._counts[dimension] += 1
        self._pooled.append(rating_map.pooled())
        self._pooled_dims.append(dimension)
        key = (rating_map.spec.side, rating_map.spec.attribute)
        self._attribute_counts[key] = self._attribute_counts.get(key, 0) + 1

    def attribute_weight(self, key: Hashable) -> float:
        """Smoothed Eq.-(1)-style weight for the grouping attribute:
        ``1 − count / (m + A)`` with A the attribute-domain size.

        The additive smoothing keeps the rotation *soft*, especially in
        early steps: after one step (m = 3) an un-smoothed weight would
        already demote a twice-shown attribute by 2/3, scrambling the
        ranking before any real repetition has occurred.  With smoothing,
        demotion accrues gradually over a session; an attribute with a
        genuinely strong signal can still be re-shown under a new
        selection.
        """
        m = self.total
        if m == 0:
            return 1.0
        base = (
            self._n_attributes
            if self._n_attributes is not None
            else max(8, len(self._attribute_counts))
        )
        smoothing = max(2, base // 2)
        return 1.0 - self._attribute_counts.get(key, 0) / (m + smoothing)

    def frequencies(self) -> dict[str, float]:
        """Algorithm 2: per-dimension frequencies ``m_{r_i} / m``."""
        return get_weights(self._pooled_dims, self._dimensions)

    def weight(self, dimension: str) -> float:
        """The multiplicative DW weight ``1 − m_{r_i}/m`` of Eq. (1)."""
        return dimension_weights(self._pooled_dims, self._dimensions)[dimension]


def get_weights(
    seen_dimensions: Sequence[str], all_dimensions: Sequence[str]
) -> dict[str, float]:
    """Algorithm 2 (getWeights): frequency of each dimension among seen maps.

    With no maps seen yet every frequency is 0.
    """
    counts = {d: 0 for d in all_dimensions}
    for dimension in seen_dimensions:
        if dimension not in counts:
            raise KeyError(f"unknown rating dimension {dimension!r}")
        counts[dimension] += 1
    m = len(seen_dimensions)
    if m == 0:
        return {d: 0.0 for d in all_dimensions}
    return {d: counts[d] / m for d in all_dimensions}


def dimension_weights(
    seen_dimensions: Sequence[str], all_dimensions: Sequence[str]
) -> dict[str, float]:
    """Eq. (1) weights ``1 − m_{r_i}/m`` (all 1.0 before anything is seen).

    A single-dimension database (e.g. MovieLens) would degenerate to
    weight 0 for every map after the first step — there is nothing to
    balance, so the weight stays 1.
    """
    if len(all_dimensions) <= 1:
        return {d: 1.0 for d in all_dimensions}
    return {
        d: 1.0 - f for d, f in get_weights(seen_dimensions, all_dimensions).items()
    }


def normalize_criteria(
    raw: Mapping[K, CriterionScores], config: UtilityConfig
) -> dict[K, dict[Criterion, float]]:
    """Normalise raw criterion scores across a candidate set.

    MINMAX normalises each criterion over the candidates (the rule of [51]
    — strongest within-step contrast, but scores are only comparable inside
    one candidate set).  SQUASH (default) maps each candidate independently
    onto an absolute [0, 1] scale — conciseness via the scale-free
    :func:`~repro.core.normalization.conciseness_01`, the inherently
    bounded criteria clipped — so that Eq. (2) can compare operation
    utilities across different rating groups.
    """
    keys = list(raw)
    out: dict[K, dict[Criterion, float]] = {k: {} for k in keys}
    for criterion in config.criteria:
        values = {k: raw[k].get(criterion) for k in keys}
        if config.normalization is NormalizationStrategy.MINMAX:
            normalized = minmax_normalize(values)
        else:
            normalized = {}
            for k, value in values.items():
                if criterion is Criterion.CONCISENESS:
                    normalized[k] = conciseness_01(raw[k].n_subgroups)
                elif criterion is Criterion.AGREEMENT:
                    floor = config.agreement_floor
                    rescaled = (value - floor) / (1.0 - floor)
                    normalized[k] = min(max(rescaled, 0.0), 1.0)
                else:
                    normalized[k] = min(max(value, 0.0), 1.0)
        for k in keys:
            out[k][criterion] = normalized[k]
    return out


def aggregate_utility(
    normalized: Mapping[Criterion, float], config: UtilityConfig
) -> float:
    """``u(rm, RM)``: max (default) or average of the normalised criteria."""
    values = [normalized[c] for c in config.criteria]
    if config.aggregation is UtilityAggregation.MAX:
        return max(values)
    return sum(values) / len(values)


@dataclass(frozen=True)
class ScoredCandidate:
    """Scores of one candidate map: raw, normalised, utility, DW utility."""

    raw: CriterionScores
    normalized: dict[Criterion, float] = field(compare=False)
    utility: float = 0.0
    weight: float = 1.0

    @property
    def dw_utility(self) -> float:
        """The dimension-weighted utility ``(1 − m_{r_i}/m) · u`` of Eq. (1)."""
        return self.weight * self.utility


def score_candidate_set(
    raw: Mapping[K, CriterionScores],
    dimension_of: Mapping[K, str],
    seen: SeenMaps,
    config: UtilityConfig,
    attribute_of: Mapping[K, Hashable] | None = None,
) -> dict[K, ScoredCandidate]:
    """Full scoring pipeline for a candidate set.

    raw scores → normalisation across candidates → utility aggregation →
    DW weighting by the candidate's rating dimension (Eq. 1) and, when
    enabled, by its grouping attribute (the attribute-axis analogue).
    """
    normalized = normalize_criteria(raw, config)
    weights = dimension_weights(seen.dimension_history(), seen.dimensions)
    out: dict[K, ScoredCandidate] = {}
    for key, criteria in normalized.items():
        utility = aggregate_utility(criteria, config)
        weight = (
            weights[dimension_of[key]] if config.use_dimension_weights else 1.0
        )
        if config.use_attribute_weights and attribute_of is not None:
            weight *= seen.attribute_weight(attribute_of[key])
        out[key] = ScoredCandidate(raw[key], criteria, utility, weight)
    return out
