"""The three exploration modes (paper §3.3).

* **User-Driven** — the system only shows rating maps; the user supplies the
  next operation (here: a chooser callback over the enumerated operation
  neighbourhood, with *no* utility information — exactly the information
  asymmetry the paper's user study measures).
* **Recommendation-Powered** — the system additionally shows the top-o
  scored recommendations; the chooser sees them and may pick one or act on
  its own.
* **Fully-Automated** — the system applies the top-1 recommendation for a
  fixed number of steps, no user input.

All modes return an :class:`ExplorationPath` (the per-step records), which
the user study and the benches consume.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Sequence

from ..exceptions import OperationError
from ..model.operations import Operation
from .recommend import ScoredOperation
from .session import ExplorationSession, StepRecord

__all__ = [
    "ExplorationMode",
    "ExplorationPath",
    "UserDrivenChooser",
    "RecommendationChooser",
    "run_user_driven",
    "run_recommendation_powered",
    "run_fully_automated",
]


class ExplorationMode(str, enum.Enum):
    """The paper's three modes."""

    USER_DRIVEN = "user-driven"
    RECOMMENDATION_POWERED = "recommendation-powered"
    FULLY_AUTOMATED = "fully-automated"

    @property
    def short(self) -> str:
        return {
            ExplorationMode.USER_DRIVEN: "UD",
            ExplorationMode.RECOMMENDATION_POWERED: "RP",
            ExplorationMode.FULLY_AUTOMATED: "FA",
        }[self]


@dataclass(frozen=True)
class ExplorationPath:
    """A completed exploration: mode + ordered step records."""

    mode: ExplorationMode
    steps: tuple[StepRecord, ...]

    def __len__(self) -> int:
        return len(self.steps)

    def all_maps(self):
        """Every rating map shown along the path, in display order."""
        return [rm for step in self.steps for rm in step.result.selected]

    def describe(self) -> str:
        header = f"=== {self.mode.value} exploration, {len(self.steps)} steps ==="
        return "\n".join([header] + [step.describe() for step in self.steps])


#: UD chooser: (session, candidate operations) → operation or None to stop.
UserDrivenChooser = Callable[
    [ExplorationSession, Sequence[Operation]], Operation | None
]
#: RP chooser: (session, scored recommendations) → operation or None to stop.
RecommendationChooser = Callable[
    [ExplorationSession, Sequence[ScoredOperation]], Operation | None
]


def run_user_driven(
    session: ExplorationSession,
    chooser: UserDrivenChooser,
    n_steps: int,
) -> ExplorationPath:
    """User-Driven mode: maps shown, next operation chosen blind.

    An operation that turns out empty is simply rejected by the UI (as in
    the real system), so the chooser is asked again with that candidate
    removed — up to a handful of retries per step.
    """
    records = [session.step()]
    for __ in range(n_steps - 1):
        candidates = session.recommender.candidate_operations(session.criteria)
        record = None
        for __retry in range(10):
            operation = chooser(session, candidates)
            if operation is None:
                break
            try:
                record = session.step(operation)
                break
            except OperationError:
                candidates = [c for c in candidates if c.target != operation.target]
        if record is None:
            break
        records.append(record)
    return ExplorationPath(ExplorationMode.USER_DRIVEN, tuple(records))


def run_recommendation_powered(
    session: ExplorationSession,
    chooser: RecommendationChooser,
    n_steps: int,
) -> ExplorationPath:
    """Recommendation-Powered mode: maps + top-o recommendations shown.

    Recommended operations are never empty (the builder filters them), but
    a chooser acting on its own may still produce one — such steps are
    rejected and the chooser falls back to the top recommendation.
    """
    records = [session.step(with_recommendations=True)]
    for __ in range(n_steps - 1):
        recommendations = records[-1].recommendations
        operation = chooser(session, recommendations)
        if operation is None:
            break
        try:
            record = session.step(operation, with_recommendations=True)
        except OperationError:
            if not recommendations:
                break
            record = session.step(
                recommendations[0].operation, with_recommendations=True
            )
        records.append(record)
    return ExplorationPath(
        ExplorationMode.RECOMMENDATION_POWERED, tuple(records)
    )


def run_fully_automated(
    session: ExplorationSession,
    n_steps: int,
) -> ExplorationPath:
    """Fully-Automated mode: apply the top-1 recommendation every step.

    Exactly top-1, no user judgment: the mode cannot skip a recommendation
    that returns to an already-visited selection — precisely the
    inflexibility the paper's study attributes FA's cap to.  (The engine
    itself never recommends an operation whose rating group is *identical*
    to the current one, so degenerate same-group oscillation cannot occur.)
    """
    records = [session.step(with_recommendations=True)]
    for __ in range(n_steps - 1):
        recommendations = records[-1].recommendations
        if not recommendations:
            break
        records.append(
            session.step(
                recommendations[0].operation, with_recommendations=True
            )
        )
    return ExplorationPath(ExplorationMode.FULLY_AUTOMATED, tuple(records))
