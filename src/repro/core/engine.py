"""The SubDEx engine facade (paper Figure 4).

:class:`SubDEx` wires the SDE engine together: RM-Set Generator,
Recommendation Builder and exploration sessions, all under one
:class:`SubDExConfig`.  This is the library's main entry point:

.. code-block:: python

    from repro import SubDEx, SelectionCriteria
    from repro.datasets import movielens

    engine = SubDEx(movielens(seed=7))
    path = engine.explore_automated(n_steps=7)
    for step in path.steps:
        print(step.describe())
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..model.database import SubjectiveDatabase
from ..model.groups import RatingGroup, SelectionCriteria
from .generator import GeneratorConfig, RMSetGenerator, RMSetResult
from .modes import (
    ExplorationPath,
    RecommendationChooser,
    UserDrivenChooser,
    run_fully_automated,
    run_recommendation_powered,
    run_user_driven,
)
from .recommend import RecommendationBuilder, RecommenderConfig, ScoredOperation
from .session import ExplorationSession
from .utility import SeenMaps

__all__ = ["SubDExConfig", "SubDEx"]


@dataclass(frozen=True)
class SubDExConfig:
    """Complete engine configuration (defaults = paper Table 3).

    ``use_index`` attaches the sufficient-statistic index layer
    (:mod:`repro.index`): posting lists, fused candidate cubes and
    delta-maintained histograms under the hot paths.  Disabling it gives
    the naive scan-everything engine — the correctness oracle the indexed
    path is tested against (see ``docs/PERFORMANCE.md``).

    ``batch_scoring`` additionally scores whole FILTER families of the
    recommendation neighbourhood from stacked cube tensors with
    upper-bound pruning (:mod:`repro.batch`).  It needs the index and a
    kernel-covered utility configuration; otherwise (and when disabled)
    requests take the per-candidate path, which stays byte-identical to
    the pre-batching engine.
    """

    generator: GeneratorConfig = field(default_factory=GeneratorConfig)
    recommender: RecommenderConfig = field(default_factory=RecommenderConfig)
    use_index: bool = True
    batch_scoring: bool = True
    index_memory_budget_bytes: int = 64 * 1024 * 1024

    # -- fluent tweaks used by the benches -------------------------------
    def with_k(self, k: int) -> "SubDExConfig":
        return replace(self, generator=replace(self.generator, k=k))

    def with_l(self, l_factor: int) -> "SubDExConfig":
        return replace(
            self,
            generator=replace(
                self.generator, pruning_diversity_factor=l_factor
            ),
        )

    def with_o(self, o: int) -> "SubDExConfig":
        return replace(self, recommender=replace(self.recommender, o=o))


class SubDEx:
    """A configured SDE engine over one subjective database."""

    def __init__(
        self,
        database: SubjectiveDatabase,
        config: SubDExConfig | None = None,
    ) -> None:
        self._database = database
        self._config = config or SubDExConfig()
        self._generator = RMSetGenerator(self._config.generator)
        if self._config.use_index:
            from ..index.facade import IndexedDatabase

            self._index: "IndexedDatabase | None" = IndexedDatabase(
                database,
                memory_budget_bytes=self._config.index_memory_budget_bytes,
            )
        else:
            self._index = None
        self._recommender = RecommendationBuilder(
            database,
            self._generator,
            self._config.recommender,
            index=self._index,
            batch_scoring=self._config.batch_scoring,
        )

    # -- accessors --------------------------------------------------------
    @property
    def database(self) -> SubjectiveDatabase:
        return self._database

    @property
    def config(self) -> SubDExConfig:
        return self._config

    @property
    def generator(self) -> RMSetGenerator:
        return self._generator

    @property
    def recommender(self) -> RecommendationBuilder:
        return self._recommender

    @property
    def index(self):
        """The attached :class:`~repro.index.IndexedDatabase` (or ``None``)."""
        return self._index

    # -- one-shot operations ------------------------------------------------
    def rating_maps(
        self,
        criteria: SelectionCriteria | None = None,
        seen: SeenMaps | None = None,
    ) -> RMSetResult:
        """The diverse k-set of rating maps for a selection (Problem 1)."""
        criteria = criteria or SelectionCriteria.root()
        if self._index is not None:
            group = self._index.group(criteria)
        else:
            group = RatingGroup(self._database, criteria)
        seen = seen or SeenMaps(
            self._database.dimensions,
            n_attributes=len(self._database.grouping_attributes()),
        )
        return self._generator.generate(group, seen)

    def recommend(
        self,
        criteria: SelectionCriteria | None = None,
        seen: SeenMaps | None = None,
        o: int | None = None,
    ) -> list[ScoredOperation]:
        """Top-o next-step operations for a selection (Problem 2)."""
        criteria = criteria or SelectionCriteria.root()
        seen = seen or SeenMaps(
            self._database.dimensions,
            n_attributes=len(self._database.grouping_attributes()),
        )
        return self._recommender.recommend(criteria, seen, o=o)

    # -- sessions / modes -----------------------------------------------------
    def session(
        self, start: SelectionCriteria | None = None
    ) -> ExplorationSession:
        """A fresh exploration session starting at ``start`` (default: root)."""
        return ExplorationSession(
            self._database,
            self._generator,
            self._recommender,
            start,
            index=self._index,
        )

    def explore_user_driven(
        self,
        chooser: UserDrivenChooser,
        n_steps: int,
        start: SelectionCriteria | None = None,
    ) -> ExplorationPath:
        return run_user_driven(self.session(start), chooser, n_steps)

    def explore_recommendation_powered(
        self,
        chooser: RecommendationChooser,
        n_steps: int,
        start: SelectionCriteria | None = None,
    ) -> ExplorationPath:
        return run_recommendation_powered(self.session(start), chooser, n_steps)

    def explore_automated(
        self,
        n_steps: int,
        start: SelectionCriteria | None = None,
    ) -> ExplorationPath:
        """Fully-Automated mode: a fixed-length top-1-recommendation path."""
        return run_fully_automated(self.session(start), n_steps)
