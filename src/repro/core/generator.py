"""RM-Set Generator (paper §4.2): RM-Generator + RM-Selector.

``RMSetGenerator.generate`` answers Problem 1 for one rating group: run the
phased framework (Algorithm 1) with the configured pruner to obtain, w.h.p.,
the top k × l rating maps by DW utility, then select the k most diverse
with GMM.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..model.groups import RatingGroup, SelectionCriteria
from ..obs import span as obs_span
from ..resilience.gate import under_pressure
from .distance import MapDistanceMethod, min_pairwise_distance
from .interestingness import CriterionScores, InterestingnessScorer
from .phases import PhasedExecution, PhasedExecutionResult, finalize_from_counts
from .pruning import PruningStrategy, make_pruner
from .rating_maps import RatingMap, RatingMapSpec, enumerate_map_specs
from .selection import select_diverse_maps
from .utility import ScoredCandidate, SeenMaps, UtilityConfig

__all__ = ["GeneratorConfig", "RMSetResult", "RMSetGenerator"]


@dataclass(frozen=True)
class GeneratorConfig:
    """Parameters of the RM-Set Generator.

    Defaults follow the paper's Table 3 (k = 3, l = 3) and §4.2.1 (n = 10
    phases); the full SubDEx configuration combines both pruning schemes.
    """

    k: int = 3
    pruning_diversity_factor: int = 3  # l
    n_phases: int = 10
    pruning: PruningStrategy = PruningStrategy.COMBINED
    delta: float = 0.05
    distance_method: MapDistanceMethod = MapDistanceMethod.PROFILE
    utility: UtilityConfig = field(default_factory=UtilityConfig)
    shuffle_seed: int | None = 0
    #: Table 5/6's "Diversity-Only" arm: ignore utility entirely — the pool
    #: is every informative candidate map in spec order and GMM alone picks
    #: the k to display.
    diversity_only: bool = False

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ConfigurationError(f"k must be positive, got {self.k}")
        if self.pruning_diversity_factor < 1:
            raise ConfigurationError(
                f"l must be >= 1, got {self.pruning_diversity_factor}"
            )
        if self.n_phases < 1:
            raise ConfigurationError(
                f"n_phases must be >= 1, got {self.n_phases}"
            )

    @property
    def k_prime(self) -> int:
        """k' = k × l, the size of the utility-ranked candidate pool."""
        return self.k * self.pruning_diversity_factor


@dataclass(frozen=True)
class RMSetResult:
    """One step's rating maps: the k selected and the k × l pool behind them."""

    selected: tuple[RatingMap, ...]
    pool: tuple[RatingMap, ...]
    scores: Mapping[RatingMapSpec, ScoredCandidate]
    diversity: float
    pruned: tuple[RatingMapSpec, ...]
    #: True when the result came from a degraded path (load shedding: the
    #: diversity GMM pass was skipped, or a stale cached result was reused).
    degraded: bool = False

    def dw_utility(self, rating_map: RatingMap) -> float:
        """DW utility of one of this step's maps."""
        return self.scores[rating_map.spec].dw_utility

    def total_utility(self) -> float:
        """Σ DW utilities of the selected maps — u(q, RM) of Eq. (2)."""
        return sum(self.dw_utility(rm) for rm in self.selected)

    def selected_attributes(self) -> tuple[str, ...]:
        return tuple(rm.spec.attribute for rm in self.selected)

    def selected_dimensions(self) -> tuple[str, ...]:
        return tuple(rm.dimension for rm in self.selected)


class RMSetGenerator:
    """Generates the diverse k-set of high-utility rating maps per step."""

    def __init__(self, config: GeneratorConfig | None = None) -> None:
        self._config = config or GeneratorConfig()
        self._scorer = InterestingnessScorer(
            dispersion=self._config.utility.dispersion,
            peculiarity=self._config.utility.peculiarity,
            global_use_min=self._config.utility.global_use_min,
            min_support=self._config.utility.min_support,
        )

    @property
    def config(self) -> GeneratorConfig:
        return self._config

    def generate(
        self,
        group: RatingGroup,
        seen: SeenMaps,
        dimensions: Sequence[str] | None = None,
        k: int | None = None,
    ) -> RMSetResult:
        """Solve Problem 1 for ``group`` given the cross-step state ``seen``."""
        config = self._config
        k = config.k if k is None else k
        specs = tuple(
            enumerate_map_specs(group.database, group.criteria, dimensions)
        )
        if group.is_empty or not specs:
            return RMSetResult((), (), {}, 0.0, ())
        with obs_span(
            "engine.generate", group_size=len(group), n_specs=len(specs), k=k
        ):
            execution = PhasedExecution(
                group,
                specs,
                seen,
                config.utility,
                self._scorer,
                n_phases=config.n_phases,
                shuffle_seed=config.shuffle_seed,
            )
            if config.diversity_only:
                # keep every candidate: the selector alone decides
                pruner = make_pruner(PruningStrategy.NONE, config.delta)
                outcome = execution.run(pruner, len(specs))
                ranked = tuple(sorted(outcome.ranked, key=lambda rm: rm.spec))
                outcome = replace(outcome, ranked=ranked)
            else:
                pruner = make_pruner(config.pruning, config.delta)
                outcome = execution.run(pruner, k * config.pruning_diversity_factor)
            return self._finish(outcome, k)

    def generate_from_counts(
        self,
        criteria: SelectionCriteria,
        specs: Sequence[RatingMapSpec],
        counts_of: Callable[[RatingMapSpec], "np.ndarray"],
        labels_of: Callable[[RatingMapSpec], tuple[Any, ...]],
        group_size: int,
        seen: SeenMaps,
        k: int | None = None,
        raw_scores: "Mapping[RatingMapSpec, CriterionScores] | None" = None,
    ) -> RMSetResult:
        """Problem 1 from precomputed histograms (the index fast path).

        Produces exactly what :meth:`generate` produces for a group holding
        the same records when run with one phase and no pruning (the
        Recommendation Builder's preview configuration): the count matrices
        are sufficient statistics, and scoring/selection read nothing else
        from the group.  ``raw_scores`` optionally injects precomputed raw
        criterion scores (see :func:`~repro.core.phases.finalize_from_counts`);
        the batched family path uses this so previews score straight from
        the stacked kernel output.
        """
        config = self._config
        k = config.k if k is None else k
        specs = tuple(specs)
        if group_size == 0 or not specs:
            return RMSetResult((), (), {}, 0.0, ())
        k_prime = len(specs) if config.diversity_only else k * config.pruning_diversity_factor
        outcome = finalize_from_counts(
            specs,
            counts_of,
            labels_of,
            criteria,
            group_size,
            seen,
            config.utility,
            self._scorer,
            k_prime,
            raw_scores=raw_scores,
        )
        if config.diversity_only:
            ranked = tuple(sorted(outcome.ranked, key=lambda rm: rm.spec))
            outcome = replace(outcome, ranked=ranked)
        return self._finish(outcome, k)

    def _finish(self, outcome: PhasedExecutionResult, k: int) -> RMSetResult:
        """Shared RM-Selector tail: pressure degradation or diverse top-k."""
        config = self._config
        if not outcome.ranked:
            return RMSetResult((), (), outcome.scores, 0.0, outcome.pruned)
        if under_pressure() and not config.diversity_only:
            # graceful degradation: skip the GMM pass and show the plain
            # top-k by utility (the l = 1 degenerate selection), flagged so
            # the serving layer can tell the client the answer is degraded
            selected = outcome.ranked[:k]
            return RMSetResult(
                selected=selected,
                pool=outcome.ranked,
                scores=outcome.scores,
                diversity=min_pairwise_distance(
                    selected, config.distance_method
                ),
                pruned=outcome.pruned,
                degraded=True,
            )
        selection = select_diverse_maps(
            outcome.ranked, k, config.distance_method
        )
        return RMSetResult(
            selected=selection.selected,
            pool=outcome.ranked,
            scores=outcome.scores,
            diversity=selection.diversity,
            pruned=outcome.pruned,
        )
