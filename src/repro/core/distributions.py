"""Rating distributions (paper Definition 1).

A :class:`RatingDistribution` is the histogram of rating scores of a record
set on the integer scale ``{1, ..., m}`` — the sufficient statistic for all
interestingness and distance computations in SubDEx.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping

import numpy as np

from ..stats.dispersion import histogram_mean, histogram_std

__all__ = ["RatingDistribution"]


class RatingDistribution:
    """Immutable histogram of scores over the scale ``1..m``."""

    __slots__ = ("_counts",)

    def __init__(self, counts: Iterable[int] | np.ndarray) -> None:
        counts = np.asarray(list(counts) if not isinstance(counts, np.ndarray) else counts)
        if counts.ndim != 1 or counts.size < 2:
            raise ValueError("counts must be a 1-D array over a scale of >= 2")
        if (counts < 0).any():
            raise ValueError("counts must be non-negative")
        self._counts = counts.astype(np.int64)
        self._counts.setflags(write=False)

    @classmethod
    def from_mapping(cls, mapping: Mapping[int, int], scale: int) -> "RatingDistribution":
        """Build from ``{score: count}`` (Figure 3's ``{1:1, 2:2, ...}``)."""
        counts = np.zeros(scale, dtype=np.int64)
        for score, count in mapping.items():
            if not 1 <= int(score) <= scale:
                raise ValueError(f"score {score} outside scale 1..{scale}")
            counts[int(score) - 1] = int(count)
        return cls(counts)

    @classmethod
    def from_scores(cls, scores: np.ndarray, scale: int) -> "RatingDistribution":
        """Histogram of a raw score array (non-finite entries dropped)."""
        scores = np.asarray(scores, dtype=np.float64)
        with np.errstate(invalid="ignore"):
            valid = np.isfinite(scores) & (scores >= 1) & (scores <= scale)
        buckets = scores[valid].astype(np.int64) - 1
        return cls(np.bincount(buckets, minlength=scale))

    # -- accessors --------------------------------------------------------
    @property
    def counts(self) -> np.ndarray:
        return self._counts

    @property
    def scale(self) -> int:
        return int(self._counts.size)

    @property
    def total(self) -> int:
        """Number of records in the histogram."""
        return int(self._counts.sum())

    @property
    def is_empty(self) -> bool:
        return self.total == 0

    def probabilities(self) -> np.ndarray:
        """Normalised distribution (uniform if empty, so distances stay defined)."""
        total = self.total
        if total == 0:
            return np.full(self.scale, 1.0 / self.scale)
        return self._counts / total

    def mean(self) -> float:
        """Average score (the paper's per-subgroup aggregated score)."""
        return histogram_mean(self._counts)

    def std(self) -> float:
        return histogram_std(self._counts)

    def count_of(self, score: int) -> int:
        return int(self._counts[score - 1])

    def to_mapping(self) -> dict[int, int]:
        """Figure 3 style ``{score: count}`` including zero entries."""
        return {j + 1: int(c) for j, c in enumerate(self._counts)}

    # -- algebra ------------------------------------------------------------
    def merge(self, other: "RatingDistribution") -> "RatingDistribution":
        """Pointwise sum (pooling two disjoint record sets)."""
        if other.scale != self.scale:
            raise ValueError("cannot merge distributions with different scales")
        return RatingDistribution(self._counts + other.counts)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RatingDistribution)
            and self.scale == other.scale
            and bool((self._counts == other.counts).all())
        )

    def __hash__(self) -> int:
        return hash(self._counts.tobytes())

    def __repr__(self) -> str:
        body = ",".join(f"{j + 1}:{c}" for j, c in enumerate(self._counts))
        mean = self.mean()
        mean_str = "nan" if math.isnan(mean) else f"{mean:.2f}"
        return f"RatingDistribution({{{body}}}, mean={mean_str})"
