"""SubDEx core: the paper's primary contribution (S4–S11)."""

from .aggregation import (
    ScoreAggregation,
    aggregate_score,
    median_score,
    mode_score,
)
from .caching import CacheStats, CachingEngine, LRUCache
from .distance import (
    MapDistanceMethod,
    emd,
    kl_divergence,
    map_distance,
    min_pairwise_distance,
    total_variation,
)
from .distributions import RatingDistribution
from .engine import SubDEx, SubDExConfig
from .history import ExplorationLog, LoggedMap, LoggedStep
from .generator import GeneratorConfig, RMSetGenerator, RMSetResult
from .gmm import exact_max_min_subset, gmm_select, min_pairwise
from .interestingness import (
    Criterion,
    CriterionScores,
    DispersionMeasure,
    InterestingnessScorer,
    PeculiarityDistance,
)
from .modes import (
    ExplorationMode,
    ExplorationPath,
    run_fully_automated,
    run_recommendation_powered,
    run_user_driven,
)
from .normalization import NormalizationStrategy, minmax_normalize, squash_ratio
from .phases import PhasedExecution, PhasedExecutionResult, PhaseSnapshot
from .pruning import (
    CombinedPruner,
    ConfidenceIntervalPruner,
    MABPruner,
    NoPruning,
    PruningStrategy,
    make_pruner,
)
from .rating_maps import (
    RatingMap,
    RatingMapSpec,
    Subgroup,
    build_rating_map,
    enumerate_map_specs,
)
from .recommend import RecommendationBuilder, RecommenderConfig, ScoredOperation
from .sampling import ApproximateMap, approximate_rating_map, ordering_agreement
from .selection import SelectionResult, select_diverse_maps
from .session import ExplorationSession, StepRecord
from .utility import (
    ScoredCandidate,
    SeenMaps,
    UtilityAggregation,
    UtilityConfig,
    aggregate_utility,
    dimension_weights,
    get_weights,
    normalize_criteria,
    score_candidate_set,
)

__all__ = [
    "ApproximateMap",
    "CacheStats",
    "CachingEngine",
    "ExplorationLog",
    "LRUCache",
    "LoggedMap",
    "LoggedStep",
    "approximate_rating_map",
    "ordering_agreement",
    "CombinedPruner",
    "ConfidenceIntervalPruner",
    "Criterion",
    "CriterionScores",
    "DispersionMeasure",
    "ExplorationMode",
    "ExplorationPath",
    "ExplorationSession",
    "GeneratorConfig",
    "InterestingnessScorer",
    "MABPruner",
    "MapDistanceMethod",
    "NoPruning",
    "NormalizationStrategy",
    "PeculiarityDistance",
    "PhaseSnapshot",
    "PhasedExecution",
    "PhasedExecutionResult",
    "PruningStrategy",
    "RMSetGenerator",
    "RMSetResult",
    "RatingDistribution",
    "RatingMap",
    "RatingMapSpec",
    "RecommendationBuilder",
    "ScoreAggregation",
    "RecommenderConfig",
    "ScoredCandidate",
    "ScoredOperation",
    "SeenMaps",
    "SelectionResult",
    "StepRecord",
    "SubDEx",
    "SubDExConfig",
    "Subgroup",
    "UtilityAggregation",
    "UtilityConfig",
    "aggregate_score",
    "aggregate_utility",
    "build_rating_map",
    "dimension_weights",
    "emd",
    "enumerate_map_specs",
    "exact_max_min_subset",
    "get_weights",
    "gmm_select",
    "kl_divergence",
    "make_pruner",
    "map_distance",
    "median_score",
    "mode_score",
    "min_pairwise",
    "min_pairwise_distance",
    "minmax_normalize",
    "normalize_criteria",
    "run_fully_automated",
    "run_recommendation_powered",
    "run_user_driven",
    "score_candidate_set",
    "select_diverse_maps",
    "squash_ratio",
    "total_variation",
]
