"""Normalization of interestingness scores (paper §3.2.3, following [51]).

The four criteria live on different scales (conciseness is a ratio of
record counts; the others are already in [0, 1]), so before aggregation
every criterion is normalised across the candidate set of the current step.
Two strategies are provided:

* ``MINMAX`` (default, the choice of [51]) — per-criterion min–max over the
  candidate maps still under consideration;
* ``SQUASH`` — a fixed monotone squashing that needs no cross-candidate
  state, used when candidates must be scored independently.
"""

from __future__ import annotations

import enum
import math
from typing import Hashable, Mapping, TypeVar

__all__ = [
    "NormalizationStrategy",
    "conciseness_01",
    "minmax_normalize",
    "squash_ratio",
]

K = TypeVar("K", bound=Hashable)


class NormalizationStrategy(str, enum.Enum):
    """How raw criterion scores are mapped into [0, 1]."""

    MINMAX = "minmax"
    SQUASH = "squash"


def minmax_normalize(values: Mapping[K, float]) -> dict[K, float]:
    """Min–max normalise ``values`` into [0, 1].

    NaNs map to 0 (an undefined criterion never wins the max).  When all
    finite values coincide there is no contrast to exploit, so every key
    receives the neutral score 0.5.
    """
    finite = [v for v in values.values() if not math.isnan(v)]
    if not finite:
        return {k: 0.0 for k in values}
    lo, hi = min(finite), max(finite)
    if hi - lo < 1e-12:
        return {k: (0.0 if math.isnan(v) else 0.5) for k, v in values.items()}
    span = hi - lo
    return {
        k: (0.0 if math.isnan(v) else (v - lo) / span) for k, v in values.items()
    }


def conciseness_01(n_subgroups: int) -> float:
    """Scale-free conciseness in (0, ~0.16]: ``0.25 / log2(2 + n_subgroups)``.

    Depends only on the subgroup count, so it is comparable across rating
    groups of different sizes — which Problem 2 requires when summing map
    utilities across candidate operations.  The 0.25 factor keeps the score
    of even the tidiest (two-subgroup) map below a *meaningful* peculiarity
    or agreement signal: under max-aggregation, conciseness is a weak prior
    for readable maps, never a criterion that drowns real contrast — every
    binary attribute would otherwise tie at the top of the ranking and
    flood the candidate pool.  Maps with fewer than two subgroups are
    uninformative and score 0.
    """
    if n_subgroups < 2:
        return 0.0
    return 0.25 / math.log2(2.0 + n_subgroups)


def squash_ratio(value: float, midpoint: float) -> float:
    """Map an unbounded non-negative ratio into [0, 1).

    ``value / (value + midpoint)`` — 0.5 at the midpoint, monotone, and
    saturating.  NaN maps to 0.
    """
    if math.isnan(value):
        return 0.0
    if value < 0:
        raise ValueError(f"ratio must be non-negative, got {value}")
    if midpoint <= 0:
        raise ValueError(f"midpoint must be positive, got {midpoint}")
    return value / (value + midpoint)
