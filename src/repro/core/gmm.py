"""The GMM max–min dispersion algorithm (Gonzalez 1985; paper §4.2.2).

Given n candidates, a pairwise distance, and a target size k, GMM picks a
seed and then greedily adds, k−1 times, the candidate whose minimum distance
to the already-chosen set is maximal.  For diversity defined as the minimum
pairwise distance this is a polynomial-time 2-approximation; one selection
costs O(k · n) distance evaluations (the paper states O(k² · l) for its
n = k × l candidates).

A brute-force exact solver is included for the property tests that verify
the approximation bound.
"""

from __future__ import annotations

import itertools
from typing import Callable, Sequence, TypeVar

__all__ = ["gmm_select", "exact_max_min_subset", "min_pairwise"]

T = TypeVar("T")
Distance = Callable[[T, T], float]


def min_pairwise(items: Sequence[T], distance: Distance) -> float:
    """Minimum pairwise distance of ``items`` (inf for < 2 items)."""
    best = float("inf")
    for a, b in itertools.combinations(items, 2):
        d = distance(a, b)
        if d < best:
            best = d
    return best


def gmm_select(
    candidates: Sequence[T],
    k: int,
    distance: Distance,
    seed_index: int = 0,
) -> list[T]:
    """Select a k-subset of ``candidates`` with large minimum pairwise distance.

    Starts from ``candidates[seed_index]`` ("an arbitrary rating map") and
    iterates k−1 times, each time choosing the candidate maximising the
    minimum distance to the chosen set.  Ties break on candidate order so
    runs are deterministic.  Returns all candidates if k ≥ n.
    """
    if k <= 0:
        return []
    n = len(candidates)
    if k >= n:
        return list(candidates)
    if not 0 <= seed_index < n:
        raise IndexError(f"seed_index {seed_index} out of range for {n} candidates")

    chosen_idx = [seed_index]
    # min distance from each candidate to the chosen set, updated incrementally
    min_dist = [distance(c, candidates[seed_index]) for c in candidates]
    min_dist[seed_index] = float("-inf")
    for __ in range(k - 1):
        best = max(range(n), key=lambda i: min_dist[i])
        chosen_idx.append(best)
        best_item = candidates[best]
        min_dist[best] = float("-inf")
        for i in range(n):
            if min_dist[i] == float("-inf"):
                continue
            d = distance(candidates[i], best_item)
            if d < min_dist[i]:
                min_dist[i] = d
    return [candidates[i] for i in chosen_idx]


def exact_max_min_subset(
    candidates: Sequence[T], k: int, distance: Distance
) -> list[T]:
    """Exhaustive max–min k-subset (exponential; tests only)."""
    if k <= 0:
        return []
    if k >= len(candidates):
        return list(candidates)
    best_subset: tuple[T, ...] | None = None
    best_value = float("-inf")
    for subset in itertools.combinations(candidates, k):
        value = min_pairwise(subset, distance)
        if value > best_value:
            best_value = value
            best_subset = subset
    assert best_subset is not None
    return list(best_subset)
