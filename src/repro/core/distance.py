"""Distances between rating distributions and rating maps (paper §3.2.4, §4.1).

Distribution-level measures:

* :func:`emd` — Earth Mover's Distance.  On a 1-D integer scale it has the
  closed form ``Σ |CDF_p − CDF_q| / (m − 1)`` and lies in [0, 1].
* :func:`total_variation` — the peculiarity distance (paper §4.1), in [0, 1].
* :func:`kl_divergence` — smoothed Kullback–Leibler, the paper's stated
  alternative peculiarity measure.

Map-level distance ``d(rm, rm')`` (used by div(RM) and GMM).  The paper
specifies "EMD between rating distributions", but a rating map is a *set*
of subgroup distributions, so three concrete liftings are provided (see
DESIGN.md §2):

* ``POOLED`` — EMD between the maps' pooled distributions.  Cheap, but blind
  to the grouping attribute.
* ``PROFILE`` (default) — EMD between the count-weighted point sets of
  subgroup mean scores.  Sensitive to both the rating dimension and the
  grouping attribute, which is what drives the paper's observation that
  diversity surfaces more distinct attributes (Table 5).
* ``NESTED`` — exact EMD whose ground distance is itself the EMD between
  subgroup distributions (a small transportation LP).  The reference
  implementation used in tests and the distance ablation bench.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Sequence

import numpy as np
from scipy import optimize

from .distributions import RatingDistribution

if TYPE_CHECKING:  # pragma: no cover
    from .rating_maps import RatingMap

__all__ = [
    "MapDistanceMethod",
    "emd",
    "total_variation",
    "kl_divergence",
    "weighted_points_emd",
    "transportation_cost",
    "map_distance",
    "min_pairwise_distance",
]


class MapDistanceMethod(str, enum.Enum):
    """How to lift distribution EMD to whole rating maps."""

    POOLED = "pooled"
    PROFILE = "profile"
    NESTED = "nested"


def emd(p: RatingDistribution, q: RatingDistribution) -> float:
    """Normalised 1-D Earth Mover's Distance between two distributions."""
    if p.scale != q.scale:
        raise ValueError("distributions must share a scale")
    cdf_gap = np.cumsum(p.probabilities() - q.probabilities())
    return float(np.abs(cdf_gap[:-1]).sum() / (p.scale - 1))


def total_variation(p: RatingDistribution, q: RatingDistribution) -> float:
    """Total variation distance ``0.5 Σ |p_j − q_j|`` ∈ [0, 1]."""
    if p.scale != q.scale:
        raise ValueError("distributions must share a scale")
    return float(0.5 * np.abs(p.probabilities() - q.probabilities()).sum())


def kl_divergence(
    p: RatingDistribution, q: RatingDistribution, smoothing: float = 1e-3
) -> float:
    """Smoothed KL divergence ``D(p ‖ q)`` (non-symmetric, ≥ 0)."""
    if p.scale != q.scale:
        raise ValueError("distributions must share a scale")
    pp = p.probabilities() + smoothing
    qq = q.probabilities() + smoothing
    pp /= pp.sum()
    qq /= qq.sum()
    return float((pp * np.log(pp / qq)).sum())


def weighted_points_emd(
    xs: np.ndarray,
    wx: np.ndarray,
    ys: np.ndarray,
    wy: np.ndarray,
    span: float,
) -> float:
    """EMD between two weighted point sets on a line, normalised by ``span``.

    Weights are normalised to sum to 1 on each side; the EMD is then the
    integral of the absolute CDF difference, computed exactly on the merged
    breakpoint grid.
    """
    if len(xs) == 0 or len(ys) == 0:
        return 0.0 if len(xs) == len(ys) else 1.0
    wx = np.asarray(wx, dtype=np.float64)
    wy = np.asarray(wy, dtype=np.float64)
    px = wx / wx.sum()
    py = wy / wy.sum()
    grid = np.unique(np.concatenate([xs, ys]))
    cdf_x = np.array([px[xs <= g].sum() for g in grid])
    cdf_y = np.array([py[ys <= g].sum() for g in grid])
    gaps = np.diff(grid)
    area = float(np.abs(cdf_x[:-1] - cdf_y[:-1]).dot(gaps))
    return area / span if span > 0 else 0.0


def transportation_cost(
    supply: np.ndarray, demand: np.ndarray, cost: np.ndarray
) -> float:
    """Minimum-cost transportation between two unit mass vectors.

    Solves ``min Σ f_ij c_ij`` s.t. row sums = supply, column sums = demand,
    ``f ≥ 0`` with ``Σ supply = Σ demand = 1``, via linear programming.
    """
    supply = np.asarray(supply, dtype=np.float64)
    demand = np.asarray(demand, dtype=np.float64)
    n, m = len(supply), len(demand)
    if cost.shape != (n, m):
        raise ValueError("cost matrix shape mismatch")
    # equality constraints: n row-sum rows + m column-sum rows
    a_eq = np.zeros((n + m, n * m))
    for i in range(n):
        a_eq[i, i * m : (i + 1) * m] = 1.0
    for j in range(m):
        a_eq[n + j, j::m] = 1.0
    b_eq = np.concatenate([supply, demand])
    result = optimize.linprog(
        cost.ravel(), A_eq=a_eq, b_eq=b_eq, bounds=(0, None), method="highs"
    )
    if not result.success:  # pragma: no cover - LP on a feasible polytope
        raise RuntimeError(f"transportation LP failed: {result.message}")
    return float(result.fun)


def _profile(rating_map: "RatingMap") -> tuple[np.ndarray, np.ndarray]:
    cached = getattr(rating_map, "_profile_cache", None)
    if cached is not None:
        return cached
    means = np.array([sg.distribution.mean() for sg in rating_map.subgroups])
    weights = np.array(
        [sg.distribution.total for sg in rating_map.subgroups], dtype=np.float64
    )
    keep = np.isfinite(means) & (weights > 0)
    profile = (means[keep], weights[keep])
    rating_map._profile_cache = profile
    return profile


def map_distance(
    a: "RatingMap",
    b: "RatingMap",
    method: MapDistanceMethod = MapDistanceMethod.PROFILE,
) -> float:
    """Distance ``d(rm, rm')`` between two rating maps, in [0, 1]."""
    if method is MapDistanceMethod.POOLED:
        return emd(a.pooled(), b.pooled())
    if method is MapDistanceMethod.PROFILE:
        xs, wx = _profile(a)
        ys, wy = _profile(b)
        span = float(a.scale - 1)
        return weighted_points_emd(xs, wx, ys, wy, span)
    if method is MapDistanceMethod.NESTED:
        supply = np.array(
            [sg.distribution.total for sg in a.subgroups], dtype=np.float64
        )
        demand = np.array(
            [sg.distribution.total for sg in b.subgroups], dtype=np.float64
        )
        if supply.sum() == 0 or demand.sum() == 0:
            return 0.0
        supply /= supply.sum()
        demand /= demand.sum()
        cost = np.array(
            [
                [emd(sa.distribution, sb.distribution) for sb in b.subgroups]
                for sa in a.subgroups
            ]
        )
        return transportation_cost(supply, demand, cost)
    raise ValueError(f"unknown map distance method {method!r}")


def min_pairwise_distance(
    maps: Sequence["RatingMap"],
    method: MapDistanceMethod = MapDistanceMethod.PROFILE,
) -> float:
    """``div(RM) = min over pairs of d(rm, rm')`` (paper §3.2.4).

    Returns 0.0 for fewer than two maps (no diversity to speak of).
    """
    best = None
    for i in range(len(maps)):
        for j in range(i + 1, len(maps)):
            d = map_distance(maps[i], maps[j], method)
            if best is None or d < best:
                best = d
    return best if best is not None else 0.0
