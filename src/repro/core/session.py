"""Exploration sessions: the stateful multi-step SDE process (paper §3.3).

A :class:`ExplorationSession` tracks the current rating group, the set RM of
rating maps the user has seen (dimension weights + global-peculiarity
references), and the step history.  The three exploration modes
(:mod:`repro.core.modes`) are thin drivers over this class.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from ..exceptions import EmptyGroupError, OperationError
from ..obs import span as obs_span
from ..resilience.deadline import check_deadline
from ..resilience.gate import under_pressure
from ..model.database import SubjectiveDatabase
from ..model.groups import RatingGroup, SelectionCriteria
from ..model.operations import Operation, OperationKind
from .generator import RMSetGenerator, RMSetResult
from .recommend import RecommendationBuilder, ScoredOperation
from .utility import SeenMaps

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..anytime.ladder import RungPlan
    from ..anytime.partial import AnytimeRecommendation
    from ..index.facade import IndexedDatabase
    from ..resilience.deadline import Deadline
    from .caching import CachingEngine

__all__ = ["StepRecord", "ExplorationSession"]


@dataclass(frozen=True)
class StepRecord:
    """Everything one exploration step produced."""

    index: int
    criteria: SelectionCriteria
    group_size: int
    result: RMSetResult
    operation: Operation | None = None
    recommendations: tuple[ScoredOperation, ...] = ()
    elapsed_seconds: float = 0.0
    recommend_seconds: float = 0.0
    #: True when any stage answered from a degraded path (stale cached
    #: RM-Set, skipped diversity pass) under load pressure.
    degraded: bool = False

    @property
    def maps(self):
        return self.result.selected

    def describe(self) -> str:
        lines = [
            f"Step {self.index}: {self.criteria.describe()} "
            f"({self.group_size} records)"
        ]
        for rm in self.result.selected:
            lines.append(
                f"  · {rm.spec.describe()} "
                f"[û={self.result.dw_utility(rm):.3f}]"
            )
        for reco in self.recommendations:
            lines.append(f"  → {reco.describe()}")
        return "\n".join(lines)


@dataclass
class _SessionState:
    criteria: SelectionCriteria
    group: RatingGroup
    steps: list[StepRecord] = field(default_factory=list)


class ExplorationSession:
    """One user's multi-step exploration of a subjective database."""

    def __init__(
        self,
        database: SubjectiveDatabase,
        generator: RMSetGenerator,
        recommender: RecommendationBuilder,
        start: SelectionCriteria | None = None,
        cache: "CachingEngine | None" = None,
        index: "IndexedDatabase | None" = None,
    ) -> None:
        self._database = database
        self._generator = generator
        self._recommender = recommender
        self._cache = cache
        self._index = index
        self._seen = SeenMaps(
            database.dimensions,
            n_attributes=len(database.grouping_attributes()),
        )
        criteria = start if start is not None else SelectionCriteria.root()
        group = self._materialise(criteria)
        if group.is_empty:
            raise EmptyGroupError(
                f"starting criteria matches no records: {criteria.describe()}"
            )
        self._state = _SessionState(criteria, group)

    # -- accessors ----------------------------------------------------------
    @property
    def database(self) -> SubjectiveDatabase:
        return self._database

    @property
    def criteria(self) -> SelectionCriteria:
        return self._state.criteria

    @property
    def group(self) -> RatingGroup:
        return self._state.group

    @property
    def seen(self) -> SeenMaps:
        return self._seen

    @property
    def recommender(self) -> RecommendationBuilder:
        return self._recommender

    @property
    def steps(self) -> tuple[StepRecord, ...]:
        return tuple(self._state.steps)

    @property
    def n_steps(self) -> int:
        return len(self._state.steps)

    # -- computation backends ------------------------------------------------
    def _materialise(self, criteria: SelectionCriteria) -> RatingGroup:
        """Materialise a rating group, through the shared cache if any.

        When the session is created by :meth:`CachingEngine.session`, group
        row sets are shared with every other session on the same engine.
        """
        if self._cache is not None:
            return self._cache.group(criteria)
        if self._index is not None:
            return self._index.group(criteria)
        return RatingGroup(self._database, criteria)

    def _generate(self) -> RMSetResult:
        """Run the RM-Set Generator for the current state (cached if shared)."""
        if self._cache is not None:
            return self._cache.rating_maps(self._state.criteria, self._seen)
        return self._generator.generate(self._state.group, self._seen)

    # -- stepping -----------------------------------------------------------
    def step(
        self,
        operation: Operation | None = None,
        with_recommendations: bool = False,
    ) -> StepRecord:
        """Execute one exploration step.

        Without an ``operation`` the current rating group is (re)examined —
        this is the session's opening step.  With one, the session moves to
        the operation's target criteria first.  The step runs the RM-Set
        Generator, updates the seen-maps state, and optionally attaches the
        top-o next-step recommendations.
        """
        check_deadline()
        with obs_span(
            "session.step",
            step=len(self._state.steps) + 1,
            operation=operation.describe() if operation is not None else None,
        ) as sp:
            if operation is not None:
                group = self._materialise(operation.target)
                if group.is_empty:
                    raise OperationError(
                        f"operation yields an empty group: {operation.describe()}"
                    )
                self._state.criteria = operation.target
                self._state.group = group

            started = time.perf_counter()
            result = self._generate()
            for rating_map in result.selected:
                self._seen.add(rating_map)
            generate_elapsed = time.perf_counter() - started

            recommendations: tuple[ScoredOperation, ...] = ()
            recommend_elapsed = 0.0
            if with_recommendations:
                reco_started = time.perf_counter()
                visited = {s.criteria for s in self._state.steps}
                visited.add(self._state.criteria)
                recommendations = tuple(
                    self._recommender.recommend(
                        self._state.criteria,
                        self._seen,
                        exclude_targets=visited,
                        current_group=self._state.group,
                    )
                )
                recommend_elapsed = time.perf_counter() - reco_started
            sp.set(
                group_size=len(self._state.group),
                maps=len(result.selected),
                recommendations=len(recommendations),
            )

        record = StepRecord(
            index=len(self._state.steps) + 1,
            criteria=self._state.criteria,
            group_size=len(self._state.group),
            result=result,
            operation=operation,
            recommendations=recommendations,
            elapsed_seconds=generate_elapsed + recommend_elapsed,
            recommend_seconds=recommend_elapsed,
            degraded=result.degraded or (with_recommendations and under_pressure()),
        )
        self._state.steps.append(record)
        return record

    def stamp_step_timing(
        self,
        index: int,
        elapsed_seconds: float,
        recommend_seconds: float = 0.0,
    ) -> None:
        """Overwrite one step's recorded timings (1-based ``index``).

        Checkpoint restore replays a session's decisions, which reproduces
        the step *results* exactly but not the original wall-clock timings;
        stamping them back keeps history exports identical across restarts.
        """
        position = index - 1
        if not 0 <= position < len(self._state.steps):
            raise OperationError(
                f"no step {index} to stamp (session has "
                f"{len(self._state.steps)} steps)"
            )
        self._state.steps[position] = replace(
            self._state.steps[position],
            elapsed_seconds=elapsed_seconds,
            recommend_seconds=recommend_seconds,
        )

    def recommendations(self, o: int | None = None) -> list[ScoredOperation]:
        """Top-o next-step recommendations for the current state."""
        return self._recommender.recommend(
            self._state.criteria,
            self._seen,
            o=o,
            current_group=self._state.group,
        )

    def recommendations_anytime(
        self,
        budget: "Deadline | None" = None,
        o: int | None = None,
        plan: "RungPlan | None" = None,
        force_cut_after: int | None = None,
    ) -> "AnytimeRecommendation":
        """Budget-bounded recommendations for the current state.

        Uses the same visited-criteria exclusions as
        :meth:`step` ``(with_recommendations=True)``, so an unbudgeted
        full-rung recompute reproduces the step's stored recommendations
        exactly — which is what refinement jobs rely on.
        """
        visited = {s.criteria for s in self._state.steps}
        visited.add(self._state.criteria)
        return self._recommender.recommend_anytime(
            self._state.criteria,
            self._seen,
            budget=budget,
            o=o,
            plan=plan,
            exclude_targets=visited,
            current_group=self._state.group,
            force_cut_after=force_cut_after,
        )

    def apply_criteria(
        self, criteria: SelectionCriteria, with_recommendations: bool = False
    ) -> StepRecord:
        """User-driven step: jump straight to ``criteria``.

        The edit is wrapped in a synthetic operation so history stays
        uniform.
        """
        added = tuple(criteria.pairs - self._state.criteria.pairs)
        removed = tuple(self._state.criteria.pairs - criteria.pairs)
        operation = Operation(
            criteria, OperationKind.COMPOUND, added=added, removed=removed
        )
        return self.step(operation, with_recommendations=with_recommendations)
