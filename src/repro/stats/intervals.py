"""Confidence-interval value objects and the interval-combination rule.

Algorithm 3 of the paper manipulates one interval per utility criterion and
combines them into a single interval per rating map:

* intervals lying entirely below another interval are discarded (their
  criterion cannot be the max);
* the combined upper bound is the max upper bound of the survivors, the
  combined lower bound the min lower bound of the survivors;
* the result is scaled by the rating-dimension weight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["ConfidenceInterval", "combine_max_intervals"]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A closed interval ``[lo, hi]`` with a point estimate ``mean``."""

    mean: float
    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.hi < self.lo:
            raise ValueError(f"empty interval: lo={self.lo} > hi={self.hi}")

    @classmethod
    def around(cls, mean: float, epsilon: float, clamp: bool = True) -> "ConfidenceInterval":
        """Symmetric interval ``mean ± epsilon``, clamped to [0, 1] by default."""
        lo, hi = mean - epsilon, mean + epsilon
        if clamp:
            lo, hi = max(0.0, lo), min(1.0, hi)
            mean = min(max(mean, 0.0), 1.0)
        return cls(mean, lo, hi)

    @classmethod
    def exact(cls, value: float) -> "ConfidenceInterval":
        return cls(value, value, value)

    @property
    def width(self) -> float:
        return self.hi - self.lo

    def entirely_below(self, other: "ConfidenceInterval") -> bool:
        """True if every value of self is below every value of ``other``."""
        return self.hi < other.lo

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    def scaled(self, factor: float) -> "ConfidenceInterval":
        """Interval scaled by a non-negative factor (dimension weight)."""
        if factor < 0:
            raise ValueError(f"scale factor must be >= 0, got {factor}")
        return ConfidenceInterval(self.mean * factor, self.lo * factor, self.hi * factor)

    def __repr__(self) -> str:
        return f"CI({self.mean:.4f} ∈ [{self.lo:.4f}, {self.hi:.4f}])"


def combine_max_intervals(
    intervals: Sequence[ConfidenceInterval] | Iterable[ConfidenceInterval],
) -> ConfidenceInterval:
    """Interval of ``max(X_1, ..., X_n)`` given an interval per criterion.

    Implements the dominated-interval elimination of Algorithm 3 (lines
    2–9): criteria whose interval lies entirely below another criterion's
    interval cannot realise the max and are dropped; the remaining intervals
    bound the max by ``[max lo, max hi]``.

    Note the lower bound is the *max* of surviving lower bounds (the true
    maximum is at least each criterion's lower bound); this is the sound
    reading of the pseudo-code's interval update.
    """
    survivors = list(intervals)
    if not survivors:
        raise ValueError("need at least one interval")
    best_hi = max(ci.hi for ci in survivors)
    kept = [
        ci
        for ci in survivors
        if not any(ci is not other and ci.entirely_below(other) for other in survivors)
    ]
    lo = max(ci.lo for ci in kept)
    mean = max(ci.mean for ci in kept)
    return ConfidenceInterval(min(mean, best_hi), min(lo, best_hi), best_hi)
