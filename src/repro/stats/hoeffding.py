"""Hoeffding–Serfling confidence bounds for sampling without replacement.

The phased execution framework scans a rating group fraction by fraction —
i.e. it samples *without replacement* from a finite population of N records.
Serfling (1974) tightens Hoeffding's inequality for this setting; SubDEx
(following SeeDB [54]) uses the resulting worst-case confidence interval to
bound the utility of a rating map from partial data.

For values in ``[0, 1]``, after observing ``l`` of ``N`` records, with
probability at least ``1 - delta`` the running mean is within
:func:`serfling_epsilon` of the population mean simultaneously for all ``l``.
"""

from __future__ import annotations

import math

__all__ = ["serfling_epsilon", "hoeffding_epsilon"]


def serfling_epsilon(n_seen: int, n_total: int, delta: float = 0.05) -> float:
    """Half-width of the Hoeffding–Serfling confidence interval.

    Parameters
    ----------
    n_seen:
        Number of records observed so far (``l`` ≥ 1).
    n_total:
        Population size ``N`` ≥ ``n_seen``.
    delta:
        Failure probability across *all* phases (anytime bound).

    Returns
    -------
    ``epsilon`` such that ``|mean_l - mean_N| <= epsilon`` w.p. ≥ 1 - delta.
    Returns 0.0 once the whole population has been seen.

    Notes
    -----
    Uses the anytime form from SeeDB [54]:

    .. math::
        \\epsilon = \\sqrt{\\frac{(1 - \\frac{l-1}{N})
                     (2 \\log\\log l + \\log(\\pi^2 / 3\\delta))}{2 l}}

    ``log log l`` is clamped at 0 for ``l < 3`` where it is undefined or
    negative.
    """
    if n_seen <= 0:
        return 1.0
    if n_total <= 0 or n_seen >= n_total:
        return 0.0
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    shrink = 1.0 - (n_seen - 1) / n_total
    loglog = math.log(math.log(n_seen)) if n_seen >= 3 else 0.0
    numerator = shrink * (2.0 * max(loglog, 0.0) + math.log(math.pi**2 / (3.0 * delta)))
    return math.sqrt(numerator / (2.0 * n_seen))


def hoeffding_epsilon(n_seen: int, delta: float = 0.05) -> float:
    """Classic Hoeffding half-width (with replacement), for comparison.

    ``epsilon = sqrt(log(2 / delta) / (2 l))`` for values in [0, 1].
    """
    if n_seen <= 0:
        return 1.0
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    return math.sqrt(math.log(2.0 / delta) / (2.0 * n_seen))
