"""Statistics substrate (S14): bounds, intervals, bandits, dispersion, ANOVA."""

from .anova import AnovaResult, one_way_anova
from .bandits import SuccessiveAcceptsRejects
from .dispersion import (
    histogram_mean,
    histogram_std,
    histogram_variance,
    macarthur_index,
    schutz_coefficient,
    shannon_entropy,
    simpson_index,
)
from .hoeffding import hoeffding_epsilon, serfling_epsilon
from .intervals import ConfidenceInterval, combine_max_intervals

__all__ = [
    "AnovaResult",
    "ConfidenceInterval",
    "SuccessiveAcceptsRejects",
    "combine_max_intervals",
    "histogram_mean",
    "histogram_std",
    "histogram_variance",
    "hoeffding_epsilon",
    "macarthur_index",
    "one_way_anova",
    "schutz_coefficient",
    "serfling_epsilon",
    "shannon_entropy",
    "simpson_index",
]
