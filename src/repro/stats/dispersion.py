"""Dispersion measures over rating histograms.

The agreement score (paper §4.1) is ``1 / (1 + σ̃)`` where σ̃ is the average
subgroup standard deviation; the paper notes any dispersion measure from the
interestingness literature (e.g. Schutz, MacArthur — Hilderman & Hamilton)
can be substituted.  All measures here operate on integer-scale histograms
``counts[j] = #records with score j+1`` so they compose with the phased
accumulators without touching raw records.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "histogram_mean",
    "histogram_std",
    "histogram_variance",
    "schutz_coefficient",
    "macarthur_index",
    "simpson_index",
    "shannon_entropy",
]


def _values(scale: int) -> np.ndarray:
    return np.arange(1, scale + 1, dtype=np.float64)


def histogram_mean(counts: np.ndarray) -> float:
    """Mean score of a histogram (NaN for an empty histogram)."""
    counts = np.asarray(counts, dtype=np.float64)
    total = counts.sum()
    if total == 0:
        return math.nan
    return float((_values(counts.size) * counts).sum() / total)


def histogram_variance(counts: np.ndarray) -> float:
    """Population variance of the scores in a histogram."""
    counts = np.asarray(counts, dtype=np.float64)
    total = counts.sum()
    if total == 0:
        return math.nan
    values = _values(counts.size)
    mean = (values * counts).sum() / total
    return float(((values - mean) ** 2 * counts).sum() / total)


def histogram_std(counts: np.ndarray) -> float:
    """Population standard deviation of the scores in a histogram."""
    variance = histogram_variance(counts)
    return math.nan if math.isnan(variance) else math.sqrt(variance)


def schutz_coefficient(counts: np.ndarray) -> float:
    """Schutz coefficient of inequality (relative mean deviation).

    ``Σ n_j |v_j − mean| / (2 · N · mean)`` — 0 for perfect agreement,
    approaching 1 for maximal inequality.  NaN for empty histograms.
    """
    counts = np.asarray(counts, dtype=np.float64)
    total = counts.sum()
    if total == 0:
        return math.nan
    values = _values(counts.size)
    mean = (values * counts).sum() / total
    if mean == 0:
        return 0.0
    return float(np.abs(values - mean).dot(counts) / (2.0 * total * mean))


def shannon_entropy(counts: np.ndarray) -> float:
    """Shannon entropy (nats) of the normalised histogram."""
    counts = np.asarray(counts, dtype=np.float64)
    total = counts.sum()
    if total == 0:
        return math.nan
    p = counts[counts > 0] / total
    return float(-(p * np.log(p)).sum())


def macarthur_index(counts: np.ndarray) -> float:
    """MacArthur evenness: ``H / H_max`` ∈ [0, 1].

    1 when scores spread uniformly over the scale (maximal disagreement),
    0 when all records share one score (perfect agreement).
    """
    entropy = shannon_entropy(counts)
    if math.isnan(entropy):
        return math.nan
    h_max = math.log(len(np.asarray(counts)))
    if h_max == 0:
        return 0.0
    return entropy / h_max


def simpson_index(counts: np.ndarray) -> float:
    """Simpson diversity ``1 − Σ p_j²`` ∈ [0, 1 − 1/m]."""
    counts = np.asarray(counts, dtype=np.float64)
    total = counts.sum()
    if total == 0:
        return math.nan
    p = counts / total
    return float(1.0 - (p**2).sum())
