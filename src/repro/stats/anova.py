"""One-way ANOVA reporting for the user-study analyses (paper §5.2.1).

The paper checks, at p < .05, that (a) mode order within a treatment group,
(b) dataset, and (c) domain knowledge do not significantly change outcomes.
This thin wrapper around :func:`scipy.stats.f_oneway` returns a structured
result the study reporter can render.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats

__all__ = ["AnovaResult", "one_way_anova"]


@dataclass(frozen=True)
class AnovaResult:
    """Outcome of a one-way ANOVA."""

    f_statistic: float
    p_value: float
    group_sizes: tuple[int, ...]
    alpha: float = 0.05

    @property
    def significant(self) -> bool:
        """True if the group means differ significantly at ``alpha``."""
        return (not math.isnan(self.p_value)) and self.p_value < self.alpha

    def describe(self) -> str:
        verdict = "significant" if self.significant else "not significant"
        return (
            f"F={self.f_statistic:.3f}, p={self.p_value:.4f} "
            f"({verdict} at α={self.alpha})"
        )


def one_way_anova(
    groups: Sequence[Sequence[float]], alpha: float = 0.05
) -> AnovaResult:
    """One-way ANOVA across ``groups`` of observations.

    Degenerate inputs (fewer than two groups with ≥ 2 observations, or zero
    within-group variance everywhere) yield ``p = NaN`` and count as not
    significant — matching how the paper treats uninformative cells.
    """
    arrays = [np.asarray(g, dtype=np.float64) for g in groups]
    sizes = tuple(len(a) for a in arrays)
    usable = [a for a in arrays if len(a) >= 2]
    if len(usable) < 2 or all(np.allclose(a, a[0]) for a in usable):
        return AnovaResult(math.nan, math.nan, sizes, alpha)
    f_stat, p_value = stats.f_oneway(*usable)
    return AnovaResult(float(f_stat), float(p_value), sizes, alpha)
