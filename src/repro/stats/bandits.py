"""Multi-armed-bandit top-k identification (Successive Accepts and Rejects).

SubDEx's MAB pruning (paper §4.2.1) treats each candidate rating map as an
arm whose reward is its DW utility estimated from one phase's worth of data.
At the end of each phase the Successive Accepts and Rejects strategy of
Bubeck, Wang & Viswanathan (2013) either *accepts* the best-looking arm into
the top-k' or *rejects* the worst-looking arm, using the gap test described
in the paper:

* Δ1 = (highest active mean) − ((k'+1)-th overall mean)
* Δ2 = (k'-th overall mean) − (lowest active mean)
* if Δ1 > Δ2 accept the highest arm, else reject the lowest.

The class below is generic over hashable arm identifiers so both the pruner
and the tests can drive it directly.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

__all__ = ["SuccessiveAcceptsRejects"]

Arm = Hashable


class SuccessiveAcceptsRejects:
    """Stateful accept/reject top-k identification.

    Parameters
    ----------
    arms:
        All arm identifiers.
    k:
        Target number of accepted arms (``k' = k × l`` in the paper).
    """

    def __init__(self, arms: Sequence[Arm], k: int) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self._active: list[Arm] = list(dict.fromkeys(arms))
        if len(self._active) != len(list(arms)):
            raise ValueError("duplicate arm identifiers")
        self._k = min(k, len(self._active))
        self._accepted: list[Arm] = []
        self._rejected: list[Arm] = []

    # -- state ----------------------------------------------------------------
    @property
    def active(self) -> tuple[Arm, ...]:
        """Arms still being sampled."""
        return tuple(self._active)

    @property
    def accepted(self) -> tuple[Arm, ...]:
        """Arms already committed to the top-k."""
        return tuple(self._accepted)

    @property
    def rejected(self) -> tuple[Arm, ...]:
        return tuple(self._rejected)

    @property
    def remaining_slots(self) -> int:
        """How many top-k slots are still open."""
        return self._k - len(self._accepted)

    @property
    def finished(self) -> bool:
        """True when the top-k is fully determined."""
        return self.remaining_slots == 0 or len(self._active) <= self.remaining_slots

    def surviving(self) -> tuple[Arm, ...]:
        """Accepted arms plus still-active arms (the non-pruned set)."""
        return tuple(self._accepted) + tuple(self._active)

    def topk(self, means: Mapping[Arm, float]) -> tuple[Arm, ...]:
        """The final top-k: accepted arms padded with the best active ones."""
        order = sorted(self._active, key=lambda a: means.get(a, 0.0), reverse=True)
        return tuple(self._accepted) + tuple(order[: self.remaining_slots])

    def force_reject(self, arm: Arm) -> None:
        """Remove an active arm unconditionally (pruned by another scheme)."""
        if arm in self._active:
            self._active.remove(arm)
            self._rejected.append(arm)

    # -- the phase-end decision -------------------------------------------
    def step(self, means: Mapping[Arm, float]) -> tuple[str, Arm] | None:
        """Perform one accept-or-reject decision given current arm means.

        Returns ``("accept", arm)`` or ``("reject", arm)``, or ``None`` when
        the process is already finished.  Arms missing from ``means``
        default to 0.
        """
        if self.finished:
            return None
        ranked = sorted(
            self._active, key=lambda a: (means.get(a, 0.0), str(a)), reverse=True
        )
        slots = self.remaining_slots
        highest = means.get(ranked[0], 0.0)
        lowest = means.get(ranked[-1], 0.0)
        # boundary means among the *active* ranking relative to open slots
        kth = means.get(ranked[slots - 1], 0.0)
        kplus1 = means.get(ranked[slots], 0.0) if slots < len(ranked) else lowest
        delta1 = highest - kplus1
        delta2 = kth - lowest
        if delta1 > delta2:
            arm = ranked[0]
            self._active.remove(arm)
            self._accepted.append(arm)
            return ("accept", arm)
        arm = ranked[-1]
        self._active.remove(arm)
        self._rejected.append(arm)
        return ("reject", arm)

    def run_to_completion(self, means: Mapping[Arm, float]) -> tuple[Arm, ...]:
        """Apply :meth:`step` until finished with fixed means; return top-k.

        Useful for the final phase, where means are exact and every pending
        decision can be resolved at once.
        """
        while self.step(means) is not None:
            pass
        return self.topk(means)
