"""A circuit breaker for expensive, retry-hostile operations.

The canonical client is per-dataset engine construction: loading a corrupt
dataset is slow *and* doomed, and without a breaker every request against
that dataset re-runs the failing load, burning a worker thread each time.
The breaker turns that into one failed load per cooldown window — everyone
else gets an immediate :class:`BreakerOpenError` (HTTP 503 with a truthful
``Retry-After``).

States follow the classic pattern:

* **closed** — operations run; consecutive failures are counted;
* **open** — after ``failure_threshold`` consecutive failures, calls fail
  fast for ``reset_seconds``;
* **half-open** — after the cooldown, exactly one probe call is admitted;
  success closes the breaker, failure re-opens it for another window.

The clock is injectable so state transitions are deterministic in tests.
"""

from __future__ import annotations

import logging
import threading
import time
from typing import Callable

from ..exceptions import ReproError

__all__ = ["BreakerOpenError", "CircuitBreaker"]

_log = logging.getLogger("repro.resilience.breaker")


class BreakerOpenError(ReproError):
    """The breaker is open: fail fast instead of retrying a doomed call."""

    def __init__(self, name: str, retry_after: float, last_error: str) -> None:
        super().__init__(
            f"{name} is unavailable (circuit open, retry in "
            f"{max(0.0, retry_after):.1f}s; last error: {last_error})"
        )
        self.name = name
        self.retry_after = max(0.0, retry_after)
        self.last_error = last_error


class CircuitBreaker:
    """Thread-safe consecutive-failure circuit breaker."""

    def __init__(
        self,
        name: str,
        failure_threshold: int = 3,
        reset_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_seconds <= 0:
            raise ValueError(f"reset_seconds must be > 0, got {reset_seconds}")
        self.name = name
        self._threshold = failure_threshold
        self._reset_seconds = reset_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: float | None = None
        self._probing = False
        self._last_error = "never failed"

    # -- state ---------------------------------------------------------------
    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half_open"`` (for /metrics)."""
        with self._lock:
            if self._opened_at is None:
                return "closed"
            if (
                self._clock() - self._opened_at >= self._reset_seconds
                or self._probing
            ):
                return "half_open"
            return "open"

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._failures

    # -- protocol ------------------------------------------------------------
    def before_call(self) -> None:
        """Gate one call; raises :class:`BreakerOpenError` while open.

        In the half-open state only a single probe is admitted at a time —
        a thundering herd against a just-cooled-down dataset would defeat
        the point of the breaker.
        """
        with self._lock:
            if self._opened_at is None:
                return
            elapsed = self._clock() - self._opened_at
            if elapsed < self._reset_seconds or self._probing:
                retry_after = self._reset_seconds - elapsed
                if self._probing:
                    retry_after = max(retry_after, 0.1)
                raise BreakerOpenError(self.name, retry_after, self._last_error)
            self._probing = True  # this caller is the half-open probe

    def record_success(self) -> None:
        with self._lock:
            was_open = self._opened_at is not None
            self._failures = 0
            self._opened_at = None
            self._probing = False
        if was_open:
            _log.info("%s: circuit closed (probe succeeded)", self.name)

    def record_failure(self, error: BaseException | str) -> None:
        with self._lock:
            was_open = self._opened_at is not None
            self._failures += 1
            self._last_error = (
                str(error) if isinstance(error, str) else f"{type(error).__name__}: {error}"
            )
            if self._probing or self._failures >= self._threshold:
                self._opened_at = self._clock()
            opened = self._opened_at is not None and not was_open
            failures = self._failures
            last_error = self._last_error
            self._probing = False
        if opened:
            _log.warning(
                "%s: circuit opened after %d consecutive failure(s); "
                "cooling down %.1fs (last error: %s)",
                self.name,
                failures,
                self._reset_seconds,
                last_error,
            )

    def snapshot(self) -> dict[str, object]:
        with self._lock:
            if self._opened_at is None:
                state = "closed"
            elif (
                self._clock() - self._opened_at >= self._reset_seconds
                or self._probing
            ):
                state = "half_open"
            else:
                state = "open"
            return {
                "state": state,
                "consecutive_failures": self._failures,
                "last_error": self._last_error,
            }
