"""Resilience substrate for the SubDEx exploration service.

The serving layer (:mod:`repro.server`) is judged on bounded response time
and availability under load; this package provides the mechanisms that keep
it both when individual requests, datasets, or the whole process misbehave:

* :mod:`repro.resilience.deadline` — per-request deadlines with cooperative
  cancellation, propagated from the ``X-Deadline-Ms`` header down into the
  phased GroupBy scans (Algorithm 1) via ``deadline.check()`` calls;
* :mod:`repro.resilience.gate` — the worker-budget admission gate: sheds
  the lowest-priority work first (503 + ``Retry-After``) and signals
  *pressure* so heavy stages degrade (stale RM-Sets, no GMM pass) instead
  of failing;
* :mod:`repro.resilience.breaker` — a circuit breaker around per-dataset
  engine construction, so a corrupt dataset answers fast 503s instead of
  re-running the expensive (failing) load on every request;
* :mod:`repro.resilience.checkpoint` — crash-safe session persistence:
  atomic JSONL checkpoints per session and deterministic replay-based
  restore, so a restarted server keeps every user's exploration history;
* :mod:`repro.resilience.faults` — deterministic fault injection
  (:class:`FaultPlan`): seeded latency/exception/partial-write faults
  installable into the engine pool, the registry and the checkpoint store,
  driving the chaos suite (``tests/resilience/``) and
  ``benchmarks/bench_resilience.py``.

Everything here is clock-injectable and seeded: no test or benchmark in
this package depends on wall-clock randomness.
"""

from .breaker import BreakerOpenError, CircuitBreaker
from .checkpoint import (
    CheckpointStore,
    SessionCheckpoint,
    SessionCheckpointer,
    restore_session,
)
from .deadline import (
    Deadline,
    DeadlineExceeded,
    check_deadline,
    current_deadline,
    deadline_scope,
)
from .faults import FaultPlan, InjectedFault, PartialWrite
from .gate import AdmissionGate, OverloadedError, Priority, pressure_scope, under_pressure

__all__ = [
    "AdmissionGate",
    "BreakerOpenError",
    "CheckpointStore",
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceeded",
    "FaultPlan",
    "InjectedFault",
    "OverloadedError",
    "PartialWrite",
    "Priority",
    "SessionCheckpoint",
    "SessionCheckpointer",
    "check_deadline",
    "current_deadline",
    "deadline_scope",
    "pressure_scope",
    "restore_session",
    "under_pressure",
]
