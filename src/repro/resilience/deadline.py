"""Per-request deadlines with cooperative cancellation.

A :class:`Deadline` is an absolute point on a monotonic clock.  The serving
layer creates one per request (from the ``X-Deadline-Ms`` header or the
server default) and installs it in a :mod:`contextvars` context variable;
long-running stages deep in the engine — the phased GroupBy scans of
Algorithm 1, the recommendation candidate loop — call :func:`check_deadline`
between units of work and abort with :class:`DeadlineExceeded` the moment
the budget is spent.

Cancellation is *cooperative*: nothing is killed, the computation unwinds
through an ordinary exception, so locks release and caches stay consistent.
The handler maps :class:`DeadlineExceeded` to a structured
``DEADLINE_EXCEEDED`` response (HTTP 504) instead of hogging the worker
thread until the client has long given up.

The clock is injectable so expiry is deterministic in tests.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Iterator

from ..exceptions import ReproError

__all__ = [
    "Deadline",
    "DeadlineExceeded",
    "check_deadline",
    "current_deadline",
    "deadline_scope",
]


class DeadlineExceeded(ReproError):
    """The request's time budget ran out mid-computation (HTTP 504)."""

    def __init__(self, budget_seconds: float, overrun_seconds: float) -> None:
        super().__init__(
            f"deadline of {budget_seconds * 1000.0:.0f}ms exceeded "
            f"(overran by {max(0.0, overrun_seconds) * 1000.0:.0f}ms)"
        )
        self.budget_seconds = budget_seconds
        self.overrun_seconds = overrun_seconds


class Deadline:
    """An absolute time budget on a monotonic clock.

    ``check()`` is designed to be called from hot loops: one clock read and
    one comparison on the happy path.
    """

    __slots__ = ("_budget", "_clock", "_expires_at")

    def __init__(
        self,
        seconds: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if seconds <= 0:
            raise ValueError(f"deadline must be positive, got {seconds}")
        self._budget = float(seconds)
        self._clock = clock
        self._expires_at = clock() + float(seconds)

    @property
    def budget_seconds(self) -> float:
        return self._budget

    @property
    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self._expires_at - self._clock()

    @property
    def expired(self) -> bool:
        return self.remaining <= 0.0

    def check(self) -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        overrun = -self.remaining
        if overrun >= 0.0:
            raise DeadlineExceeded(self._budget, overrun)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Deadline(remaining={self.remaining:.3f}s of {self._budget:.3f}s)"


#: The ambient per-request deadline.  Each server worker thread installs its
#: request's deadline here; library code far from the wire reads it through
#: :func:`check_deadline` without any parameter threading.
_CURRENT: ContextVar[Deadline | None] = ContextVar("subdex_deadline", default=None)


def current_deadline() -> Deadline | None:
    """The deadline governing the current context, if any."""
    return _CURRENT.get()


def check_deadline() -> None:
    """Cooperative cancellation point: no-op unless a deadline is set."""
    deadline = _CURRENT.get()
    if deadline is not None:
        deadline.check()


@contextmanager
def deadline_scope(deadline: Deadline | None) -> Iterator[Deadline | None]:
    """Install ``deadline`` as the ambient deadline for the ``with`` body."""
    token = _CURRENT.set(deadline)
    try:
        yield deadline
    finally:
        _CURRENT.reset(token)
