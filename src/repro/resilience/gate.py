"""Worker-budget admission gate: load shedding and graceful degradation.

The server has a bounded worker budget; when concurrent requests approach
it, the cheapest way to stay available is to do *less work per request*
before doing *no work at all*:

* past the **soft limit**, the gate signals *pressure*: heavy stages
  consulted through :func:`under_pressure` degrade — recommendation
  generation falls back to a cached/stale RM-Set, the diversity GMM pass is
  skipped — and responses carry ``degraded: true``;
* past the **hard limit**, the lowest-priority work is shed outright with
  :class:`OverloadedError` (HTTP 503 + ``Retry-After``).  Cheap
  introspection (:attr:`Priority.CRITICAL` — health, metrics, close) is
  never shed: an operator must always be able to see a struggling server.

The gate also doubles as the in-flight tracker that graceful shutdown
drains against.
"""

from __future__ import annotations

import enum
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

from ..exceptions import ReproError

__all__ = [
    "AdmissionGate",
    "OverloadedError",
    "Priority",
    "pressure_scope",
    "under_pressure",
]


class Priority(enum.IntEnum):
    """How sheddable a request is (higher value = shed first)."""

    CRITICAL = 0  # health, metrics, session close — never shed
    NORMAL = 1  # reads of existing state: maps, history, summaries
    HEAVY = 2  # RM-Set generation / recommendation scoring: create, apply


class OverloadedError(ReproError):
    """The worker budget is exhausted; the request was shed (HTTP 503)."""

    def __init__(self, inflight: int, limit: int, retry_after: float) -> None:
        super().__init__(
            f"server overloaded ({inflight} requests in flight, "
            f"hard limit {limit}); retry after {retry_after:.0f}s"
        )
        self.inflight = inflight
        self.limit = limit
        self.retry_after = retry_after


#: Ambient pressure flag, set by the gate for admitted-but-degraded
#: requests.  Heavy stages (generator, caching engine) read it through
#: :func:`under_pressure` without parameter threading.
_PRESSURE: ContextVar[bool] = ContextVar("subdex_pressure", default=False)


def under_pressure() -> bool:
    """Whether the current context should prefer cheap, degraded answers."""
    return _PRESSURE.get()


@contextmanager
def pressure_scope(active: bool = True) -> Iterator[None]:
    """Mark the ``with`` body as running under load pressure."""
    token = _PRESSURE.set(active)
    try:
        yield
    finally:
        _PRESSURE.reset(token)


class AdmissionGate:
    """Bounded concurrent-request budget with priority shedding."""

    def __init__(
        self,
        hard_limit: int = 32,
        soft_limit: int | None = None,
        retry_after_seconds: float = 1.0,
    ) -> None:
        if hard_limit < 1:
            raise ValueError(f"hard_limit must be >= 1, got {hard_limit}")
        if soft_limit is None:
            soft_limit = max(1, (hard_limit * 3) // 4)
        if not 1 <= soft_limit <= hard_limit:
            raise ValueError(
                f"soft_limit must be in [1, hard_limit], got {soft_limit}"
            )
        self._hard_limit = hard_limit
        self._soft_limit = soft_limit
        self._retry_after = retry_after_seconds
        self._lock = threading.Lock()
        self._drained = threading.Condition(self._lock)
        self._inflight = 0
        self.shed = 0
        self.degraded = 0
        self.degraded_overflow = 0

    @property
    def hard_limit(self) -> int:
        return self._hard_limit

    @property
    def soft_limit(self) -> int:
        return self._soft_limit

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    @contextmanager
    def admit(
        self, priority: Priority = Priority.NORMAL, degradable: bool = False
    ) -> Iterator[bool]:
        """Admit one request for the ``with`` body; yields ``degraded``.

        Sheddable work (priority above :attr:`Priority.CRITICAL`) past the
        hard limit raises :class:`OverloadedError`; admitted work past the
        soft limit runs inside a :func:`pressure_scope` and yields ``True``
        so the handler can flag the response.

        ``degradable`` marks work with a cheap fallback (anytime
        recommendations can answer from the quality ladder's cached rung
        at near-zero cost): instead of being shed past the hard limit it
        is admitted *over* the limit with ``degraded=True``, and the
        handler is expected to spend almost nothing.
        """
        with self._lock:
            overflow = False
            if (
                self._inflight >= self._hard_limit
                and priority > Priority.CRITICAL
            ):
                if not degradable:
                    self.shed += 1
                    raise OverloadedError(
                        self._inflight, self._hard_limit, self._retry_after
                    )
                overflow = True
                self.degraded_overflow += 1
            self._inflight += 1
            degraded = overflow or (
                self._inflight > self._soft_limit
                and (priority >= Priority.HEAVY or degradable)
            )
            if degraded:
                self.degraded += 1
        try:
            if degraded:
                with pressure_scope():
                    yield True
            else:
                yield False
        finally:
            with self._lock:
                self._inflight -= 1
                if self._inflight == 0:
                    self._drained.notify_all()

    def drain(self, timeout_seconds: float) -> bool:
        """Block until no request is in flight; ``True`` if fully drained."""
        give_up = time.monotonic() + timeout_seconds
        with self._lock:
            while self._inflight > 0:
                remaining = give_up - time.monotonic()
                if remaining <= 0:
                    return False
                self._drained.wait(remaining)
            return True

    def counters(self) -> dict[str, int]:
        with self._lock:
            return {
                "inflight": self._inflight,
                "soft_limit": self._soft_limit,
                "hard_limit": self._hard_limit,
                "shed": self.shed,
                "degraded": self.degraded,
                "degraded_overflow": self.degraded_overflow,
            }
