"""Deterministic fault injection: the chaos side of the resilience layer.

A :class:`FaultPlan` decides, per *site* (a short string naming an
injection point, e.g. ``"pool.build"`` or ``"checkpoint.write"``), whether
a given call should fail, stall, or half-complete.  Decisions come from one
seeded :class:`random.Random` — **no wall clock, no global randomness** —
so a chaos run replays identically under the same seed, and the chaos
suite can assert exact behaviour.

Installable injection points (each component accepts ``fault_plan=``):

* the engine pool (:class:`repro.server.app.EnginePool`): sites
  ``"pool.build"`` (engine construction — exercises the circuit breaker)
  and ``"pool.get"`` (per-request latency);
* the session registry (:class:`repro.server.registry.SessionRegistry`):
  site ``"registry.acquire"`` (slow lock handoff);
* the checkpoint store (:class:`repro.resilience.checkpoint.CheckpointStore`):
  sites ``"checkpoint.write"`` (write error) and
  ``"checkpoint.partial_write"`` (truncated temp file, simulating a crash
  mid-write — the atomic rename must protect the previous checkpoint);
* the request handler (:class:`repro.server.app.SubDExServer` with a plan):
  site ``"handler"`` (a raised :class:`InjectedFault` that must still
  produce a well-formed JSON 500);
* the anytime recommendation loop (site ``"anytime.recommend"``):
  :meth:`FaultPlan.budget_cut` forces the budget to "expire" after a
  fixed number of snapshot chunks, so partial-result paths are exercised
  deterministically instead of racing a real clock.

Latency injection calls an injectable ``sleep`` so unit tests can count
stalls without waiting for them; the chaos benchmark uses real (small)
sleeps.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Mapping

from ..exceptions import ReproError

__all__ = ["FaultPlan", "InjectedFault", "PartialWrite"]


class InjectedFault(ReproError):
    """An exception thrown on purpose by a :class:`FaultPlan`."""

    def __init__(self, site: str) -> None:
        super().__init__(f"injected fault at {site!r}")
        self.site = site


class PartialWrite(ReproError):
    """A write was deliberately truncated mid-way (simulated crash)."""

    def __init__(self, site: str, written: int, total: int) -> None:
        super().__init__(
            f"injected partial write at {site!r}: {written}/{total} bytes"
        )
        self.site = site
        self.written = written
        self.total = total


class FaultPlan:
    """Seeded, thread-safe fault decisions for named injection sites.

    ``error_rates`` / ``latency_rates`` / ``partial_write_rates`` map a
    site name to a probability in [0, 1]; unlisted sites never fault.
    ``latency_seconds`` is how long an injected stall sleeps.
    """

    def __init__(
        self,
        seed: int = 0,
        error_rates: Mapping[str, float] | None = None,
        latency_rates: Mapping[str, float] | None = None,
        partial_write_rates: Mapping[str, float] | None = None,
        latency_seconds: float = 0.05,
        sleep: Callable[[float], None] = time.sleep,
        budget_cut_phases: Mapping[str, int] | None = None,
    ) -> None:
        for site, phases in (budget_cut_phases or {}).items():
            if phases < 0:
                raise ValueError(
                    f"budget_cut_phases for {site!r} must be >= 0, got {phases}"
                )
        for rates in (error_rates, latency_rates, partial_write_rates):
            for site, rate in (rates or {}).items():
                if not 0.0 <= rate <= 1.0:
                    raise ValueError(
                        f"fault rate for {site!r} must be in [0, 1], got {rate}"
                    )
        self._error_rates = dict(error_rates or {})
        self._latency_rates = dict(latency_rates or {})
        self._partial_write_rates = dict(partial_write_rates or {})
        self._latency_seconds = latency_seconds
        self._sleep = sleep
        self._budget_cut_phases = dict(budget_cut_phases or {})
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        #: site → {"errors": n, "stalls": n, "partial_writes": n}
        self.injected: dict[str, dict[str, int]] = {}

    # -- bookkeeping ---------------------------------------------------------
    def _count(self, site: str, kind: str) -> None:
        # caller holds self._lock
        per_site = self.injected.setdefault(
            site, {"errors": 0, "stalls": 0, "partial_writes": 0, "budget_cuts": 0}
        )
        per_site[kind] += 1

    def counters(self) -> dict[str, dict[str, int]]:
        with self._lock:
            return {site: dict(kinds) for site, kinds in self.injected.items()}

    # -- decisions -----------------------------------------------------------
    def check(self, site: str) -> None:
        """One injection point: maybe stall, then maybe raise.

        The stall happens *before* the error decision so a site can both
        slow down and fail in one chaos run (rates are independent).
        """
        with self._lock:
            stall = self._rng.random() < self._latency_rates.get(site, 0.0)
            fail = self._rng.random() < self._error_rates.get(site, 0.0)
            if stall:
                self._count(site, "stalls")
            if fail:
                self._count(site, "errors")
        if stall:
            self._sleep(self._latency_seconds)
        if fail:
            raise InjectedFault(site)

    def budget_cut(self, site: str) -> int | None:
        """Deterministic budget expiry: force the cut after *n* chunks.

        Returns the configured snapshot count for ``site`` (``None`` when
        the site has no forced cut).  The anytime loop treats the value
        exactly like a spent budget — it cuts at that phase boundary and
        returns a partial result — so chaos tests can pin the cut at
        phase *k* with no real clock involved.
        """
        phases = self._budget_cut_phases.get(site)
        if phases is None:
            return None
        with self._lock:
            self._count(site, "budget_cuts")
        return phases

    def truncate(self, site: str, data: bytes) -> bytes | None:
        """Partial-write decision: the prefix to write instead, or ``None``.

        Returning half the payload simulates a crash mid-``write()``; the
        store must write the prefix, then raise :class:`PartialWrite` *after*
        the bytes hit the file, so the corruption is really on disk.
        """
        with self._lock:
            if self._rng.random() >= self._partial_write_rates.get(site, 0.0):
                return None
            self._count(site, "partial_writes")
        return data[: max(1, len(data) // 2)]
