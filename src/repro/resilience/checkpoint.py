"""Crash-safe session checkpoints: JSONL files + deterministic replay.

A server restart must not cost users their exploration history.  Each live
session is periodically (and on every mutation) captured as a
:class:`SessionCheckpoint` — the session's *decisions*, not its bulky
results: the start criteria and, per step, the applied operation, whether
recommendations were requested, and the recorded timings.  Because the
engine is fully seeded (record permutation, GMM seed, pruning), replaying
those decisions against the same dataset reproduces the identical step
records; the original timings are stamped back on so even the exported
:class:`~repro.core.history.ExplorationLog` is byte-identical.

Durability protocol (one ``<session_id>.jsonl`` file per session):

* writes go to a ``.tmp`` sibling first, then ``os.replace`` — readers
  (and crashes) see either the previous checkpoint or the new one, never a
  half-written file;
* loading tolerates torn files anyway (a truncated trailing line is
  dropped, an unreadable file is skipped and counted) because fault
  injection — and real disks — can violate the happy path.

:class:`SessionCheckpointer` owns the background flush thread and the
save/failure accounting; the serving layer calls :meth:`~SessionCheckpointer.save`
on mutation and :meth:`~SessionCheckpointer.flush` on graceful shutdown.
"""

from __future__ import annotations

import json
import logging
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterable

from ..exceptions import ReproError
from ..model.database import Side
from ..model.groups import AVPair, SelectionCriteria
from ..model.operations import Operation, OperationKind
from .faults import FaultPlan, PartialWrite

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.session import ExplorationSession

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointError",
    "CheckpointStore",
    "SessionCheckpoint",
    "SessionCheckpointer",
    "CheckpointStep",
    "restore_session",
]

CHECKPOINT_SCHEMA_VERSION = 1

_log = logging.getLogger("repro.resilience.checkpoint")


class CheckpointError(ReproError):
    """A checkpoint could not be written or parsed."""


# -- faithful JSON value round-trip ------------------------------------------
#
# The wire protocol flattens frozenset values to display strings; replay
# needs the real value back, so checkpoint encoding is tagged instead.

def _encode_value(value: Any) -> Any:
    if isinstance(value, (frozenset, set)):
        return {"__set__": sorted(str(v) for v in value)}
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict) and set(value) == {"__set__"}:
        return frozenset(value["__set__"])
    return value


def _encode_pairs(pairs: Iterable[AVPair]) -> list[list[Any]]:
    return [
        [p.side.value, p.attribute, _encode_value(p.value)]
        for p in sorted(pairs)
    ]


def _decode_pairs(payload: Any) -> tuple[AVPair, ...]:
    return tuple(
        AVPair(Side(side), attribute, _decode_value(value))
        for side, attribute, value in payload
    )


def _encode_criteria(criteria: SelectionCriteria) -> list[list[Any]]:
    return _encode_pairs(criteria.pairs)


def _decode_criteria(payload: Any) -> SelectionCriteria:
    return SelectionCriteria(_decode_pairs(payload))


# -- the checkpoint shape -----------------------------------------------------

@dataclass(frozen=True)
class CheckpointStep:
    """One replayable step: the decision plus its recorded timings."""

    index: int
    operation: Operation | None
    with_recommendations: bool
    elapsed_seconds: float
    recommend_seconds: float

    def to_line(self) -> dict[str, Any]:
        operation = None
        if self.operation is not None:
            operation = {
                "kind": self.operation.kind.value,
                "target": _encode_criteria(self.operation.target),
                "added": _encode_pairs(self.operation.added),
                "removed": _encode_pairs(self.operation.removed),
            }
        return {
            "record": "step",
            "index": self.index,
            "operation": operation,
            "with_recommendations": self.with_recommendations,
            "elapsed_seconds": self.elapsed_seconds,
            "recommend_seconds": self.recommend_seconds,
        }

    @classmethod
    def from_line(cls, line: dict[str, Any]) -> "CheckpointStep":
        operation = None
        if line.get("operation") is not None:
            raw = line["operation"]
            operation = Operation(
                target=_decode_criteria(raw["target"]),
                kind=OperationKind(raw["kind"]),
                added=_decode_pairs(raw.get("added", [])),
                removed=_decode_pairs(raw.get("removed", [])),
            )
        return cls(
            index=int(line["index"]),
            operation=operation,
            with_recommendations=bool(line["with_recommendations"]),
            elapsed_seconds=float(line["elapsed_seconds"]),
            recommend_seconds=float(line["recommend_seconds"]),
        )


@dataclass(frozen=True)
class SessionCheckpoint:
    """Everything needed to resurrect one session on the same dataset."""

    session_id: str
    dataset: str
    created_wall: float
    start: SelectionCriteria
    steps: tuple[CheckpointStep, ...] = ()
    schema_version: int = CHECKPOINT_SCHEMA_VERSION

    @classmethod
    def capture(
        cls,
        session_id: str,
        dataset: str,
        created_wall: float,
        session: "ExplorationSession",
    ) -> "SessionCheckpoint":
        """Snapshot a live session (caller must hold its session lock)."""
        records = session.steps
        start = records[0].criteria if records else session.criteria
        steps = tuple(
            CheckpointStep(
                index=record.index,
                operation=record.operation,
                with_recommendations=bool(record.recommendations),
                elapsed_seconds=record.elapsed_seconds,
                recommend_seconds=record.recommend_seconds,
            )
            for record in records
        )
        return cls(
            session_id=session_id,
            dataset=dataset,
            created_wall=created_wall,
            start=start,
            steps=steps,
        )

    # -- (de)serialisation ----------------------------------------------------
    def to_jsonl(self) -> str:
        header = {
            "record": "header",
            "schema_version": self.schema_version,
            "session_id": self.session_id,
            "dataset": self.dataset,
            "created_wall": self.created_wall,
            "start": _encode_criteria(self.start),
        }
        lines = [json.dumps(header, sort_keys=True)]
        lines += [
            json.dumps(step.to_line(), sort_keys=True) for step in self.steps
        ]
        return "\n".join(lines) + "\n"

    @classmethod
    def from_jsonl(cls, text: str) -> "SessionCheckpoint":
        """Parse a checkpoint, dropping any torn trailing lines.

        A truncated final line (crash mid-append, injected partial write)
        loses at most the newest step — never the whole session.
        """
        raw_lines = [line for line in text.split("\n") if line.strip()]
        if not raw_lines:
            raise CheckpointError("empty checkpoint file")
        try:
            header = json.loads(raw_lines[0])
        except json.JSONDecodeError as error:
            raise CheckpointError(f"unreadable checkpoint header: {error}")
        if not isinstance(header, dict) or header.get("record") != "header":
            raise CheckpointError("first checkpoint line is not a header")
        steps: list[CheckpointStep] = []
        for raw in raw_lines[1:]:
            try:
                line = json.loads(raw)
                step = CheckpointStep.from_line(line)
            except (json.JSONDecodeError, KeyError, ValueError, TypeError):
                break  # torn tail: keep the consistent prefix
            steps.append(step)
        try:
            return cls(
                session_id=str(header["session_id"]),
                dataset=str(header["dataset"]),
                created_wall=float(header["created_wall"]),
                start=_decode_criteria(header["start"]),
                steps=tuple(steps),
                schema_version=int(
                    header.get("schema_version", CHECKPOINT_SCHEMA_VERSION)
                ),
            )
        except (KeyError, ValueError, TypeError) as error:
            raise CheckpointError(f"malformed checkpoint header: {error}")


def restore_session(engine: Any, checkpoint: SessionCheckpoint) -> "ExplorationSession":
    """Replay a checkpoint into a live session on ``engine``.

    ``engine`` is anything with a ``session(start)`` factory —
    :class:`~repro.core.engine.SubDEx` or the shared
    :class:`~repro.core.caching.CachingEngine`.  Replay is deterministic,
    so the rebuilt step records match the originals; the checkpointed
    timings are stamped back so history exports are identical too.
    """
    session = engine.session(checkpoint.start)
    for step in checkpoint.steps:
        session.step(
            step.operation, with_recommendations=step.with_recommendations
        )
        session.stamp_step_timing(
            step.index, step.elapsed_seconds, step.recommend_seconds
        )
    return session


# -- the store ----------------------------------------------------------------

class CheckpointStore:
    """One checkpoint file per session under ``directory``, written atomically."""

    def __init__(
        self,
        directory: str | Path,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._fault_plan = fault_plan
        self.skipped = 0  # unreadable files seen by the last load_all()

    @property
    def directory(self) -> Path:
        return self._directory

    def path_for(self, session_id: str) -> Path:
        return self._directory / f"{session_id}.jsonl"

    def save(self, checkpoint: SessionCheckpoint) -> Path:
        """Atomically persist one checkpoint (tmp file + ``os.replace``)."""
        if self._fault_plan is not None:
            self._fault_plan.check("checkpoint.write")
        final = self.path_for(checkpoint.session_id)
        tmp = final.with_suffix(".jsonl.tmp")
        data = checkpoint.to_jsonl().encode("utf-8")
        if self._fault_plan is not None:
            truncated = self._fault_plan.truncate(
                "checkpoint.partial_write", data
            )
            if truncated is not None:
                # the simulated crash: bytes hit the temp file, the rename
                # never happens — the previous checkpoint must survive
                tmp.write_bytes(truncated)
                raise PartialWrite(
                    "checkpoint.partial_write", len(truncated), len(data)
                )
        try:
            tmp.write_bytes(data)
            os.replace(tmp, final)
        except OSError as error:
            raise CheckpointError(
                f"cannot write checkpoint {final.name}: {error}"
            )
        return final

    def load(self, session_id: str) -> SessionCheckpoint:
        path = self.path_for(session_id)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as error:
            raise CheckpointError(
                f"cannot read checkpoint {path.name}: {error}"
            )
        return SessionCheckpoint.from_jsonl(text)

    def load_all(self) -> list[SessionCheckpoint]:
        """Every readable checkpoint, oldest first; corrupt files are
        skipped (and counted in :attr:`skipped`), not fatal."""
        checkpoints: list[SessionCheckpoint] = []
        self.skipped = 0
        for path in sorted(self._directory.glob("*.jsonl")):
            try:
                checkpoints.append(
                    SessionCheckpoint.from_jsonl(
                        path.read_text(encoding="utf-8")
                    )
                )
            except (CheckpointError, OSError):
                self.skipped += 1
        return checkpoints

    def delete(self, session_id: str) -> None:
        """Forget a closed session's checkpoint (missing is fine)."""
        try:
            self.path_for(session_id).unlink()
        except FileNotFoundError:
            pass
        except OSError as error:
            raise CheckpointError(
                f"cannot delete checkpoint for {session_id}: {error}"
            )


# -- the flusher --------------------------------------------------------------

class SessionCheckpointer:
    """On-mutation saves plus a periodic background flush.

    ``source`` yields a fresh :class:`SessionCheckpoint` per live session
    (the server supplies a registry walk that skips sessions whose lock is
    busy — a busy session just checkpointed on its own mutation).  Faults
    from the store are counted, never propagated: losing one checkpoint
    write must not fail a user request or kill the flush thread.
    """

    def __init__(
        self,
        store: CheckpointStore,
        source: Callable[[], Iterable[SessionCheckpoint]] | None = None,
        interval_seconds: float = 30.0,
    ) -> None:
        if interval_seconds <= 0:
            raise ValueError(
                f"interval_seconds must be > 0, got {interval_seconds}"
            )
        self._store = store
        self._source = source
        self._interval = interval_seconds
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        self.saves = 0
        self.failures = 0
        self.flushes = 0

    @property
    def store(self) -> CheckpointStore:
        return self._store

    # -- one-shot operations --------------------------------------------------
    def save(self, checkpoint: SessionCheckpoint) -> bool:
        """Persist one checkpoint; ``False`` (and a counter) on failure."""
        try:
            self._store.save(checkpoint)
        except ReproError:
            with self._lock:
                self.failures += 1
            _log.warning(
                "checkpoint save failed for session %s",
                checkpoint.session_id,
                exc_info=True,
            )
            return False
        with self._lock:
            self.saves += 1
        return True

    def forget(self, session_id: str) -> None:
        try:
            self._store.delete(session_id)
        except ReproError:
            with self._lock:
                self.failures += 1
            _log.warning(
                "checkpoint delete failed for session %s",
                session_id,
                exc_info=True,
            )

    def flush(self) -> int:
        """Checkpoint every session the source yields; returns saves."""
        if self._source is None:
            return 0
        saved = 0
        for checkpoint in self._source():
            if self.save(checkpoint):
                saved += 1
        with self._lock:
            self.flushes += 1
        return saved

    # -- the background thread ------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="subdex-checkpointer", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            self.flush()

    def counters(self) -> dict[str, int]:
        with self._lock:
            return {
                "saves": self.saves,
                "failures": self.failures,
                "flushes": self.flushes,
            }
