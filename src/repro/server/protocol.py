"""The JSON wire protocol of the SubDEx service.

One function per payload shape, so the handler, the client and the tests
agree on a single source of truth.  The protocol mirrors the paper's UI
actions: every response a client needs to render a step is derived from a
:class:`~repro.core.session.StepRecord` — the selected rating maps (with
full per-subgroup histograms, Figure 3's table) and the numbered top-o
recommendations the user can apply.

Selection edits accept the same three forms as the interactive CLI screen:
``add`` / ``drop`` one attribute-value pair, or replace one side's
predicate with a conjunction of equalities written in the SQL dialect
(the paper UI's "advanced screen").
"""

from __future__ import annotations

from typing import Any, Mapping

from ..core.recommend import ScoredOperation
from ..core.session import StepRecord
from ..db.predicates import And, Eq
from ..db.sql import parse_where
from ..exceptions import ReproError
from ..model.database import Side
from ..model.groups import AVPair, SelectionCriteria

__all__ = [
    "ProtocolError",
    "apply_edit",
    "criteria_from_json",
    "criteria_to_json",
    "error_payload",
    "rating_map_to_json",
    "recommendation_to_json",
    "step_to_json",
]


class ProtocolError(ReproError):
    """A request payload does not follow the wire protocol (HTTP 400).

    ``code`` is a stable machine-readable identifier carried in the error
    payload next to the human-readable message.
    """

    def __init__(self, message: str, code: str = "bad_request") -> None:
        super().__init__(message)
        self.code = code


def _plain(value: Any) -> Any:
    """Coerce a label/value to a JSON-representable scalar."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (frozenset, set)):
        return "|".join(sorted(str(v) for v in value))
    return str(value)


def error_payload(
    code: str,
    message: str,
    retryable: bool | None = None,
    retry_after: float | None = None,
) -> dict[str, Any]:
    """The uniform error body: ``{"error": {"code": ..., "message": ...}}``.

    ``retryable`` tells well-behaved clients whether repeating the same
    request can succeed (see the error-semantics table in ``docs/API.md``);
    ``retry_after`` mirrors the ``Retry-After`` header in seconds.
    """
    error: dict[str, Any] = {"code": code, "message": message}
    if retryable is not None:
        error["retryable"] = retryable
    if retry_after is not None:
        error["retry_after"] = retry_after
    return {"error": error}


# -- selection criteria ---------------------------------------------------------

def criteria_to_json(criteria: SelectionCriteria) -> dict[str, dict[str, Any]]:
    """``{"reviewer": {attr: value}, "item": {attr: value}}``."""
    return {
        Side.REVIEWER.value: {
            attr: _plain(value)
            for attr, value in criteria.side_pairs(Side.REVIEWER).items()
        },
        Side.ITEM.value: {
            attr: _plain(value)
            for attr, value in criteria.side_pairs(Side.ITEM).items()
        },
    }


def criteria_from_json(payload: Any) -> SelectionCriteria:
    """Parse the per-side dict shape back into a :class:`SelectionCriteria`."""
    if payload is None:
        return SelectionCriteria.root()
    if not isinstance(payload, Mapping):
        raise ProtocolError("criteria must be an object", "invalid_criteria")
    pairs: list[AVPair] = []
    for side_name, side_pairs in payload.items():
        try:
            side = Side(side_name)
        except ValueError:
            raise ProtocolError(
                f"unknown criteria side {side_name!r} "
                f"(expected 'reviewer' or 'item')",
                "invalid_criteria",
            ) from None
        if not isinstance(side_pairs, Mapping):
            raise ProtocolError(
                f"criteria[{side_name!r}] must be an object of "
                "attribute: value pairs",
                "invalid_criteria",
            )
        for attribute, value in side_pairs.items():
            pairs.append(AVPair(side, str(attribute), value))
    try:
        return SelectionCriteria(pairs)
    except ReproError as error:
        raise ProtocolError(str(error), "invalid_criteria") from error


# -- selection edits ------------------------------------------------------------

def _require_fields(body: Mapping[str, Any], spec: Mapping[str, str]) -> list[Any]:
    values = []
    for name, kind in spec.items():
        if name not in body:
            raise ProtocolError(f"missing field {name!r}", "invalid_edit")
        value = body[name]
        if kind == "str" and not isinstance(value, str):
            raise ProtocolError(f"field {name!r} must be a string", "invalid_edit")
        values.append(value)
    return values


def _side(name: Any) -> Side:
    try:
        return Side(name)
    except (ValueError, TypeError):
        raise ProtocolError(
            f"unknown side {name!r} (expected 'reviewer' or 'item')",
            "invalid_edit",
        ) from None


def apply_edit(current: SelectionCriteria, body: Mapping[str, Any]) -> SelectionCriteria:
    """Apply one selection edit from an ``/apply`` request body.

    Exactly one of ``add`` / ``drop`` / ``sql`` / ``criteria`` must be
    present (``recommendation`` is handled by the caller, which owns the
    numbered list the index refers to).
    """
    kinds = [k for k in ("add", "drop", "sql", "criteria") if k in body]
    if len(kinds) != 1:
        raise ProtocolError(
            "apply body must contain exactly one of "
            "'recommendation', 'add', 'drop', 'sql' or 'criteria'",
            "invalid_edit",
        )
    kind = kinds[0]
    payload = body[kind]
    if kind == "criteria":
        return criteria_from_json(payload)
    if not isinstance(payload, Mapping):
        raise ProtocolError(f"{kind!r} must be an object", "invalid_edit")

    if kind == "add":
        side_name, attribute = _require_fields(
            payload, {"side": "any", "attribute": "str"}
        )
        if "value" not in payload:
            raise ProtocolError("missing field 'value'", "invalid_edit")
        return current.with_pair(
            AVPair(_side(side_name), attribute, payload["value"])
        )

    if kind == "drop":
        side_name, attribute = _require_fields(
            payload, {"side": "any", "attribute": "str"}
        )
        side = _side(side_name)
        for pair in current:
            if pair.side is side and pair.attribute == attribute:
                return current.without_pair(pair)
        raise ProtocolError(
            f"{side.value}.{attribute} is not part of the current selection",
            "invalid_edit",
        )

    # kind == "sql": replace one side's pairs with a conjunction of
    # equalities, exactly like the CLI's advanced screen.
    side_name, where = _require_fields(payload, {"side": "any", "where": "str"})
    side = _side(side_name)
    try:
        predicate = parse_where(where)
    except ReproError as error:
        raise ProtocolError(str(error), "invalid_sql") from error
    pairs = [p for p in current if p.side is not side]
    leaves = predicate.operands if isinstance(predicate, And) else (predicate,)
    for leaf in leaves:
        if not isinstance(leaf, Eq):
            raise ProtocolError(
                "the sql edit accepts conjunctions of attribute = value only",
                "invalid_sql",
            )
        pairs.append(AVPair(side, leaf.attribute, leaf.value))
    try:
        return SelectionCriteria(pairs)
    except ReproError as error:
        raise ProtocolError(str(error), "invalid_sql") from error


# -- step payloads --------------------------------------------------------------

def rating_map_to_json(rating_map, dw_utility: float) -> dict[str, Any]:
    """One displayed rating map, histograms included (Figure 3's table)."""
    return {
        "side": rating_map.spec.side.value,
        "attribute": rating_map.spec.attribute,
        "dimension": rating_map.dimension,
        "description": rating_map.spec.describe(),
        "dw_utility": dw_utility,
        "n_subgroups": rating_map.n_subgroups,
        "covered": rating_map.covered,
        "group_size": rating_map.group_size,
        "scale": rating_map.scale,
        "subgroups": [
            {
                "label": _plain(sg.label),
                "size": sg.size,
                "average_score": sg.average_score,
                "counts": [int(c) for c in sg.distribution.counts],
            }
            for sg in rating_map.sorted_by_score()
        ],
    }


def recommendation_to_json(number: int, scored: ScoredOperation) -> dict[str, Any]:
    """One numbered recommendation; ``number`` is what ``/apply`` refers to."""
    operation = scored.operation
    return {
        "number": number,
        "kind": operation.kind.value,
        "description": scored.describe(),
        "utility": scored.utility,
        "target": criteria_to_json(operation.target),
    }


def step_to_json(record: StepRecord) -> dict[str, Any]:
    """Everything a client needs to render one exploration step."""
    return {
        "index": record.index,
        "criteria": criteria_to_json(record.criteria),
        "criteria_description": record.criteria.describe(),
        "group_size": record.group_size,
        "degraded": record.degraded,
        "operation": (
            record.operation.describe() if record.operation is not None else None
        ),
        "elapsed_seconds": record.elapsed_seconds,
        "maps": [
            rating_map_to_json(rm, record.result.dw_utility(rm))
            for rm in record.result.selected
        ],
        "recommendations": [
            recommendation_to_json(i, scored)
            for i, scored in enumerate(record.recommendations, 1)
        ],
    }
