"""The SubDEx HTTP application: stdlib ``ThreadingHTTPServer`` + routes.

Architecture (one process, many threads):

* one :class:`EnginePool` — per dataset, a lazily-built
  :class:`~repro.core.engine.SubDEx` wrapped in a shared, thread-safe
  :class:`~repro.core.caching.CachingEngine`, so every session on that
  dataset amortises group materialisation and RM-Set generation;
* one :class:`~repro.server.registry.SessionRegistry` — per-session locks,
  TTL idle eviction, a bounded live-session cap;
* one :class:`~repro.server.metrics.ServerMetrics` — request/latency/cache
  accounting behind ``GET /metrics``.

Endpoints (all JSON; see ``docs/API.md`` for the full reference)::

    GET    /health                          liveness + datasets
    GET    /metrics                         serving metrics
    POST   /sessions                        create a session (opening step)
    GET    /sessions                        list live sessions
    GET    /sessions/{id}                   session summary
    DELETE /sessions/{id}                   close a session
    GET    /sessions/{id}/maps              current rating maps
    GET    /sessions/{id}/recommendations   numbered top-o recommendations
    POST   /sessions/{id}/apply             apply a recommendation / edit
    GET    /sessions/{id}/history           exploration log (JSON schema)
"""

from __future__ import annotations

import json
import re
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Mapping
from urllib.parse import parse_qs, urlsplit

from ..core.caching import CachingEngine
from ..core.engine import SubDEx
from ..core.history import ExplorationLog
from ..core.modes import ExplorationMode, ExplorationPath
from ..exceptions import EmptyGroupError, OperationError, ReproError
from .metrics import ServerMetrics
from .protocol import (
    ProtocolError,
    apply_edit,
    criteria_from_json,
    criteria_to_json,
    error_payload,
    rating_map_to_json,
    recommendation_to_json,
    step_to_json,
)
from .registry import (
    SessionGoneError,
    SessionLimitError,
    SessionRegistry,
    UnknownSessionError,
)

__all__ = ["ServerConfig", "EnginePool", "SubDExServer", "build_server", "serve"]


@dataclass(frozen=True)
class ServerConfig:
    """Tunables of one server process."""

    max_sessions: int = 64
    session_ttl_seconds: float = 1800.0
    max_body_bytes: int = 1 << 20
    metrics_reservoir_size: int = 1024
    group_cache_capacity: int = 256
    result_cache_capacity: int = 128


class EnginePool:
    """Per-dataset shared caching engines.

    ``factories`` maps dataset name → zero-argument :class:`SubDEx`
    builder; engines are built lazily on first use (dataset loading is the
    expensive part) and wrapped in one shared :class:`CachingEngine` each.
    """

    def __init__(
        self,
        factories: Mapping[str, Callable[[], SubDEx]],
        group_capacity: int = 256,
        result_capacity: int = 128,
    ) -> None:
        if not factories:
            raise ValueError("EnginePool needs at least one dataset factory")
        self._factories = dict(factories)
        self._group_capacity = group_capacity
        self._result_capacity = result_capacity
        self._engines: dict[str, CachingEngine] = {}
        self._lock = threading.Lock()

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._factories)

    @property
    def default_dataset(self) -> str:
        return next(iter(self._factories))

    def get(self, name: str) -> CachingEngine:
        """The shared caching engine for ``name`` (built on first use)."""
        if name not in self._factories:
            raise ProtocolError(
                f"unknown dataset {name!r} "
                f"(served datasets: {', '.join(self._factories)})",
                "unknown_dataset",
            )
        with self._lock:
            engine = self._engines.get(name)
            if engine is None:
                engine = CachingEngine(
                    self._factories[name](),
                    group_capacity=self._group_capacity,
                    result_capacity=self._result_capacity,
                )
                self._engines[name] = engine
            return engine

    def cache_snapshots(self) -> dict[str, Any]:
        """Per-dataset group/result cache statistics (for ``/metrics``)."""
        with self._lock:
            engines = dict(self._engines)
        return {
            name: {
                "group": engine.group_stats.snapshot(),
                "result": engine.result_stats.snapshot(),
            }
            for name, engine in engines.items()
        }


_SESSION_ID = r"(?P<sid>[0-9a-f]{32})"
_ROUTES: list[tuple[str, re.Pattern, str, str]] = [
    ("GET", re.compile(r"^/health$"), "handle_health", "GET /health"),
    ("GET", re.compile(r"^/metrics$"), "handle_metrics", "GET /metrics"),
    ("POST", re.compile(r"^/sessions$"), "handle_create", "POST /sessions"),
    ("GET", re.compile(r"^/sessions$"), "handle_list", "GET /sessions"),
    (
        "GET",
        re.compile(rf"^/sessions/{_SESSION_ID}$"),
        "handle_summary",
        "GET /sessions/{id}",
    ),
    (
        "DELETE",
        re.compile(rf"^/sessions/{_SESSION_ID}$"),
        "handle_close",
        "DELETE /sessions/{id}",
    ),
    (
        "GET",
        re.compile(rf"^/sessions/{_SESSION_ID}/maps$"),
        "handle_maps",
        "GET /sessions/{id}/maps",
    ),
    (
        "GET",
        re.compile(rf"^/sessions/{_SESSION_ID}/recommendations$"),
        "handle_recommendations",
        "GET /sessions/{id}/recommendations",
    ),
    (
        "POST",
        re.compile(rf"^/sessions/{_SESSION_ID}/apply$"),
        "handle_apply",
        "POST /sessions/{id}/apply",
    ),
    (
        "GET",
        re.compile(rf"^/sessions/{_SESSION_ID}/history$"),
        "handle_history",
        "GET /sessions/{id}/history",
    ),
]


class _PayloadTooLarge(ReproError):
    """Request body exceeds the configured limit (HTTP 413)."""


class SubDExRequestHandler(BaseHTTPRequestHandler):
    """Routes requests to handler methods; owns nothing but the wire."""

    protocol_version = "HTTP/1.1"
    server: "SubDExServer"  # narrowed for type checkers

    # -- plumbing -----------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # request logging is the metrics endpoint's job

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def do_DELETE(self) -> None:
        self._dispatch("DELETE")

    def _dispatch(self, method: str) -> None:
        path = urlsplit(self.path).path
        label = None
        allowed: list[str] = []
        handler_name = None
        params: dict[str, str] = {}
        for route_method, pattern, name, route_label in _ROUTES:
            match = pattern.match(path)
            if not match:
                continue
            if route_method == method:
                handler_name = name
                label = route_label
                params = match.groupdict()
                break
            allowed.append(route_method)

        started = time.perf_counter()
        if handler_name is None:
            if allowed:
                label = f"{method} {path}"
                status, payload = 405, error_payload(
                    "method_not_allowed",
                    f"{method} not allowed here (allowed: {', '.join(allowed)})",
                )
            else:
                label = "<unmatched>"
                status, payload = 404, error_payload(
                    "not_found", f"no such endpoint: {method} {path}"
                )
        else:
            status, payload = self._run(handler_name, params)
        self._send(status, payload)
        self.server.metrics.observe(
            label or "<unmatched>", status, time.perf_counter() - started
        )

    def _run(
        self, handler_name: str, params: dict[str, str]
    ) -> tuple[int, dict[str, Any]]:
        try:
            return getattr(self, handler_name)(**params)
        except _PayloadTooLarge as error:
            self.close_connection = True  # unread body still on the wire
            return 413, error_payload("payload_too_large", str(error))
        except ProtocolError as error:
            return 400, error_payload(error.code, str(error))
        except UnknownSessionError as error:
            return 404, error_payload("unknown_session", str(error))
        except SessionGoneError as error:
            return 410, error_payload("session_gone", str(error))
        except SessionLimitError as error:
            return 429, error_payload("too_many_sessions", str(error))
        except (EmptyGroupError, OperationError) as error:
            return 400, error_payload("empty_group", str(error))
        except ReproError as error:
            return 400, error_payload("bad_request", str(error))
        except Exception as error:  # noqa: BLE001 - last-resort 500
            return 500, error_payload(
                "internal_error", f"{type(error).__name__}: {error}"
            )

    def _send(self, status: int, payload: dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _json_body(self) -> dict[str, Any]:
        length_header = self.headers.get("Content-Length")
        try:
            length = int(length_header) if length_header is not None else 0
        except ValueError:
            raise ProtocolError(
                f"invalid Content-Length: {length_header!r}", "invalid_request"
            ) from None
        limit = self.server.config.max_body_bytes
        if length > limit:
            raise _PayloadTooLarge(
                f"request body of {length} bytes exceeds the "
                f"{limit}-byte limit"
            )
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as error:
            raise ProtocolError(
                f"request body is not valid JSON: {error}", "invalid_json"
            ) from None
        if not isinstance(body, dict):
            raise ProtocolError(
                "request body must be a JSON object", "invalid_json"
            )
        return body

    def _query(self) -> dict[str, list[str]]:
        return parse_qs(urlsplit(self.path).query)

    # -- service endpoints ---------------------------------------------------
    def handle_health(self) -> tuple[int, dict[str, Any]]:
        return 200, {
            "status": "ok",
            "datasets": list(self.server.pool.names),
            "sessions": self.server.registry.live_count,
        }

    def handle_metrics(self) -> tuple[int, dict[str, Any]]:
        return 200, self.server.metrics.snapshot(
            sessions=self.server.registry.counters(),
            caches=self.server.pool.cache_snapshots(),
        )

    # -- session lifecycle ---------------------------------------------------
    def handle_create(self) -> tuple[int, dict[str, Any]]:
        body = self._json_body()
        dataset = body.get("dataset") or self.server.pool.default_dataset
        if not isinstance(dataset, str):
            raise ProtocolError("'dataset' must be a string", "invalid_request")
        engine = self.server.pool.get(dataset)
        start = (
            criteria_from_json(body["criteria"])
            if body.get("criteria") is not None
            else None
        )
        managed = self.server.registry.create(
            dataset, lambda: engine.session(start)
        )
        with self.server.registry.acquire(managed.session_id) as live:
            record = live.session.step(with_recommendations=True)
            live.latest = record
            return 201, {
                "session_id": live.session_id,
                "dataset": dataset,
                "step": step_to_json(record),
            }

    def handle_list(self) -> tuple[int, dict[str, Any]]:
        return 200, {"sessions": self.server.registry.summaries()}

    def handle_summary(self, sid: str) -> tuple[int, dict[str, Any]]:
        registry = self.server.registry
        with registry.acquire(sid) as managed:
            summary = managed.summary(now=time.monotonic())
            summary["criteria"] = (
                criteria_to_json(managed.session.criteria)
                if managed.session is not None
                else None
            )
            return 200, summary

    def handle_close(self, sid: str) -> tuple[int, dict[str, Any]]:
        managed = self.server.registry.close(sid)
        return 200, {
            "session_id": sid,
            "closed": True,
            "n_steps": managed.session.n_steps if managed.session else 0,
        }

    # -- exploration ---------------------------------------------------------
    def handle_maps(self, sid: str) -> tuple[int, dict[str, Any]]:
        with self.server.registry.acquire(sid) as managed:
            record = managed.latest
            return 200, {
                "session_id": sid,
                "step_index": record.index if record else 0,
                "criteria": criteria_to_json(record.criteria) if record else None,
                "maps": [
                    rating_map_to_json(rm, record.result.dw_utility(rm))
                    for rm in record.result.selected
                ]
                if record
                else [],
            }

    def handle_recommendations(self, sid: str) -> tuple[int, dict[str, Any]]:
        query = self._query()
        limit: int | None = None
        if "o" in query:
            try:
                limit = int(query["o"][0])
            except ValueError:
                raise ProtocolError(
                    f"query parameter o must be an integer, "
                    f"got {query['o'][0]!r}",
                    "invalid_request",
                ) from None
            if limit < 1:
                raise ProtocolError(
                    f"query parameter o must be >= 1, got {limit}",
                    "invalid_request",
                )
        with self.server.registry.acquire(sid) as managed:
            scored = managed.latest.recommendations if managed.latest else ()
            if limit is not None:
                scored = scored[:limit]
            return 200, {
                "session_id": sid,
                "recommendations": [
                    recommendation_to_json(i, s)
                    for i, s in enumerate(scored, 1)
                ],
            }

    def handle_apply(self, sid: str) -> tuple[int, dict[str, Any]]:
        body = self._json_body()
        directives = [
            k
            for k in ("recommendation", "add", "drop", "sql", "criteria")
            if k in body
        ]
        if len(directives) > 1:
            raise ProtocolError(
                "apply body must contain exactly one of 'recommendation', "
                f"'add', 'drop', 'sql' or 'criteria', got {directives}",
                "invalid_edit",
            )
        with self.server.registry.acquire(sid) as managed:
            if "recommendation" in body:
                number = body["recommendation"]
                scored = managed.latest.recommendations if managed.latest else ()
                if (
                    not isinstance(number, int)
                    or isinstance(number, bool)
                    or not 1 <= number <= len(scored)
                ):
                    raise ProtocolError(
                        f"invalid recommendation number {number!r} "
                        f"(the current step offers 1..{len(scored)})",
                        "invalid_recommendation",
                    )
                record = managed.session.step(
                    scored[number - 1].operation, with_recommendations=True
                )
            else:
                criteria = apply_edit(managed.session.criteria, body)
                record = managed.session.apply_criteria(
                    criteria, with_recommendations=True
                )
            managed.latest = record
            return 200, {"session_id": sid, "step": step_to_json(record)}

    def handle_history(self, sid: str) -> tuple[int, dict[str, Any]]:
        with self.server.registry.acquire(sid) as managed:
            path = ExplorationPath(
                ExplorationMode.USER_DRIVEN, managed.session.steps
            )
            log = ExplorationLog.from_path(
                path,
                dataset=managed.dataset,
                metadata={"session_id": sid},
            )
            return 200, log.to_dict()


class SubDExServer(ThreadingHTTPServer):
    """One serving process: pool + registry + metrics behind HTTP."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        pool: EnginePool,
        config: ServerConfig | None = None,
    ) -> None:
        super().__init__(address, SubDExRequestHandler)
        self.config = config or ServerConfig()
        self.pool = pool
        self.registry = SessionRegistry(
            max_sessions=self.config.max_sessions,
            ttl_seconds=self.config.session_ttl_seconds,
        )
        self.metrics = ServerMetrics(
            reservoir_size=self.config.metrics_reservoir_size
        )

    @property
    def url(self) -> str:
        host, port = self.server_address[0], self.server_address[1]
        return f"http://{host}:{port}"


def build_server(
    factories: Mapping[str, Callable[[], SubDEx]],
    host: str = "127.0.0.1",
    port: int = 0,
    config: ServerConfig | None = None,
) -> SubDExServer:
    """Create (but do not start) a server; ``port=0`` picks a free port."""
    config = config or ServerConfig()
    pool = EnginePool(
        factories,
        group_capacity=config.group_cache_capacity,
        result_capacity=config.result_cache_capacity,
    )
    return SubDExServer((host, port), pool, config)


def serve(
    factories: Mapping[str, Callable[[], SubDEx]],
    host: str = "127.0.0.1",
    port: int = 8642,
    config: ServerConfig | None = None,
    out=None,
) -> int:
    """Run a server until interrupted (the ``python -m repro serve`` body)."""
    import sys

    out = out or sys.stdout
    server = build_server(factories, host, port, config)
    print(f"SubDEx serving {', '.join(server.pool.names)} on {server.url}", file=out)
    print("endpoints: /health /metrics /sessions (see docs/API.md)", file=out)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down", file=out)
    finally:
        server.server_close()
    return 0
