"""The SubDEx HTTP application: stdlib ``ThreadingHTTPServer`` + routes.

Architecture (one process, many threads):

* one :class:`EnginePool` — per dataset, a lazily-built
  :class:`~repro.core.engine.SubDEx` wrapped in a shared, thread-safe
  :class:`~repro.core.caching.CachingEngine`, so every session on that
  dataset amortises group materialisation and RM-Set generation; each
  dataset sits behind a :class:`~repro.resilience.breaker.CircuitBreaker`
  so a failing load answers fast 503s instead of retrying on every request;
* one :class:`~repro.server.registry.SessionRegistry` — per-session locks,
  TTL idle eviction, a bounded live-session cap;
* one :class:`~repro.resilience.gate.AdmissionGate` — the worker budget:
  past the soft limit heavy requests degrade (stale RM-Sets, no GMM pass,
  ``degraded: true`` in the response), past the hard limit they are shed
  with 503 + ``Retry-After``;
* per request, a :class:`~repro.resilience.deadline.Deadline` — from the
  ``X-Deadline-Ms`` header (or the server default), propagated down into
  the phased GroupBy scans; overruns answer a structured 504;
* optionally one :class:`~repro.resilience.checkpoint.SessionCheckpointer`
  — crash-safe session persistence: on-mutation + periodic checkpoints,
  restore-on-startup, and a final flush during graceful shutdown.

Endpoints (all JSON; see ``docs/API.md`` for the full reference)::

    GET    /health                          liveness + datasets
    GET    /metrics                         serving metrics
    GET    /debug/traces                    recent finished traces
    GET    /debug/profile                   sampling profiler (collapsed/json)
    GET    /debug/spans/summary             span-derived cost accounting
    GET    /cluster/workers                 worker states (sharded mode)
    POST   /cluster/maps                    stateless scatter/gather scan
    POST   /sessions                        create a session (opening step)
    GET    /sessions                        list live sessions
    GET    /sessions/{id}                   session summary
    DELETE /sessions/{id}                   close a session
    GET    /sessions/{id}/maps              current rating maps
    GET    /sessions/{id}/recommendations   numbered top-o recommendations
    POST   /sessions/{id}/apply             apply a recommendation / edit
    GET    /sessions/{id}/history           exploration log (JSON schema)
"""

from __future__ import annotations

import json
import logging
import re
import signal
import threading
import time
import uuid
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Iterator, Mapping
from urllib.parse import parse_qs, urlsplit

from ..cluster.merge import (
    local_partial_scans,
    preview_generator,
    result_from_scans,
    scan_specs,
)
from ..cluster.partition import ShardMap
# import the module, not names: repro.cluster.worker imports the server
# package, so when an import starts from the cluster side this module
# runs while repro.cluster.supervisor is still partially initialised —
# its names only resolve at call time, which is all we need
from ..cluster import supervisor as cluster_supervisor
from ..core.caching import CachingEngine
from ..core.engine import SubDEx
from ..core.generator import RMSetGenerator
from ..model.groups import SelectionCriteria
from ..core.history import ExplorationLog
from ..core.modes import ExplorationMode, ExplorationPath
from ..exceptions import EmptyGroupError, OperationError, ReproError
from ..obs.collect import TailSampler, TraceCollector
from ..obs.metrics import MetricFamily
from ..obs.process import ProcessCollector
from ..obs.sinks import JsonlTraceSink, SlowTraceLog, TraceRingBuffer
from ..obs.tracing import Tracer, annotate, current_trace_partial
from ..perf.profiler import SamplingProfiler
from ..perf.spanstats import SpanStatsSink
from ..resilience.breaker import BreakerOpenError, CircuitBreaker
from ..resilience.checkpoint import (
    CheckpointStore,
    SessionCheckpoint,
    SessionCheckpointer,
    restore_session,
)
from ..anytime import (
    AnytimeController,
    QualityRung,
    RefinementLostError,
    RefinementStore,
    budget_deadline,
    parse_budget_ms,
)
from ..resilience.deadline import Deadline, DeadlineExceeded, deadline_scope
from ..slo import SLOTracker, load_slo_config, merge_worker_totals
from ..slo.tracker import scorecard_from_totals
from ..resilience.faults import FaultPlan, InjectedFault
from ..resilience.gate import (
    AdmissionGate,
    OverloadedError,
    Priority,
    under_pressure,
)
from .metrics import ServerMetrics
from .protocol import (
    ProtocolError,
    apply_edit,
    criteria_from_json,
    criteria_to_json,
    error_payload,
    rating_map_to_json,
    recommendation_to_json,
    step_to_json,
)
from .registry import (
    ManagedSession,
    SessionGoneError,
    SessionLimitError,
    SessionRegistry,
    UnknownSessionError,
)

__all__ = [
    "DatasetLoadError",
    "EnginePool",
    "ServerConfig",
    "SubDExServer",
    "build_server",
    "serve",
]

_log = logging.getLogger("repro.server")
_http_log = logging.getLogger("repro.server.http")

#: Accepted shape of a client-supplied ``X-Trace-Id`` (hex/dash, bounded).
_TRACE_ID_RE = re.compile(r"^[0-9a-fA-F-]{8,64}$")


@dataclass(frozen=True)
class ServerConfig:
    """Tunables of one server process."""

    max_sessions: int = 64
    session_ttl_seconds: float = 1800.0
    max_body_bytes: int = 1 << 20
    metrics_reservoir_size: int = 1024
    group_cache_capacity: int = 256
    result_cache_capacity: int = 128
    #: Default per-request time budget in milliseconds; ``None`` disables
    #: deadlines unless the client sends ``X-Deadline-Ms``.
    default_deadline_ms: int | None = None
    #: Worker budget: the hard concurrent-request limit (sheddable work
    #: past it gets 503) and the soft limit past which heavy work degrades
    #: (``None`` → 3/4 of the hard limit).
    max_inflight: int = 32
    soft_inflight: int | None = None
    shed_retry_after_seconds: float = 1.0
    #: Per-dataset engine-construction circuit breaker.
    breaker_failure_threshold: int = 3
    breaker_reset_seconds: float = 30.0
    #: Crash-safe sessions: ``None`` disables checkpointing.
    checkpoint_dir: str | None = None
    checkpoint_interval_seconds: float = 30.0
    #: Graceful shutdown: how long to wait for in-flight requests.
    drain_seconds: float = 10.0
    #: Tracing: one root span per request, ``X-Trace-Id`` response header,
    #: engine-layer child spans, ``?debug=1`` span-tree breakdowns.
    tracing_enabled: bool = True
    #: Recent finished traces kept in memory for ``GET /debug/traces``.
    trace_buffer_size: int = 128
    #: Byte budget (MiB) for each in-memory trace store — the ring buffer
    #: and the fleet collector each evict oldest-first past it.
    trace_ring_mb: float = 16.0
    #: Pathological span trees are truncated past this many spans per
    #: trace (per process), with an explicit ``truncated: true`` marker.
    trace_max_spans: int = 512
    #: Tail-sampling keep probability for unremarkable traces.  Error,
    #: shed, degraded, slow (≥ ``slow_request_ms``) and SLO-burn-window
    #: traces are always kept regardless of this rate.
    trace_sample_rate: float = 1.0
    #: Optional JSONL file receiving every finished trace.
    trace_file: str | None = None
    #: Rotate ``trace_file`` past this size (``trace.jsonl →
    #: trace.jsonl.1``, keeping 3 generations); ``None`` grows unbounded.
    trace_file_max_mb: float | None = None
    #: Requests slower than this are logged at WARNING with their span
    #: tree; ``None`` disables the slow-request log.
    slow_request_ms: float | None = 1000.0
    #: Upper bound on one ``GET /debug/profile`` sampling window — the
    #: handler thread is occupied for the whole window, so cap it.
    profile_max_seconds: float = 30.0
    #: Cluster mode: spawn this many shard-owning worker processes behind
    #: the front (``0`` = classic single-process serving).  Sessions are
    #: routed to workers by consistent hash; phase scans scatter/gather
    #: across shards with byte-identical merged results.
    workers: int = 0
    #: Partition count for scatter/gather scans; ``None`` → 4 × workers
    #: (also used by the single-process ``POST /cluster/maps`` path,
    #: where ``None`` → 4).
    shards: int | None = None
    worker_heartbeat_seconds: float = 0.5
    worker_rpc_timeout_seconds: float = 30.0
    worker_max_restarts: int = 8
    #: Anytime recommendations: clients may send ``?budget_ms=`` for a
    #: soft-bounded best-so-far answer, and under load the quality ladder
    #: degrades recommendation traffic instead of shedding it.  Requests
    #: with no budget on an unloaded server are untouched by this flag.
    anytime_enabled: bool = True
    #: Latency EWMA target feeding the degradation controller.
    anytime_latency_target_ms: float = 500.0
    #: Bounds of the background refinement-job store.
    refinement_capacity: int = 64
    refinement_ttl_seconds: float = 600.0
    #: SLO tracking: per-endpoint-class objectives scored over rolling
    #: 1m/5m/1h windows, served at ``GET /slo`` and as ``subdex_slo_*``
    #: metric families, with burn-rate threshold events in the log.
    slo_enabled: bool = True
    #: Optional ``--slo-config`` JSON file overriding the shipped
    #: objectives/route classes (see docs/OBSERVABILITY.md).
    slo_config_path: str | None = None


class DatasetLoadError(ReproError):
    """A dataset engine failed to build (HTTP 503, retryable)."""

    def __init__(self, dataset: str, error: BaseException) -> None:
        super().__init__(
            f"dataset {dataset!r} failed to load: "
            f"{type(error).__name__}: {error}"
        )
        self.dataset = dataset


class _DatasetSlot:
    """One dataset's lazily-built engine plus its failure bookkeeping."""

    __slots__ = ("factory", "lock", "engine", "breaker")

    def __init__(
        self, factory: Callable[[], SubDEx], breaker: CircuitBreaker
    ) -> None:
        self.factory = factory
        self.lock = threading.Lock()
        self.engine: CachingEngine | None = None
        self.breaker = breaker


class EnginePool:
    """Per-dataset shared caching engines with circuit-broken construction.

    ``factories`` maps dataset name → zero-argument :class:`SubDEx`
    builder; engines are built lazily on first use (dataset loading is the
    expensive part) and wrapped in one shared :class:`CachingEngine` each.

    A failed build is **never cached**: the slot stays empty, the failure
    feeds the dataset's circuit breaker, and the request answers 503.
    After ``breaker_failure_threshold`` consecutive failures the breaker
    opens and further requests fail fast — no repeated doomed loads —
    until the cooldown admits a single probe.
    """

    def __init__(
        self,
        factories: Mapping[str, Callable[[], SubDEx]],
        group_capacity: int = 256,
        result_capacity: int = 128,
        breaker_failure_threshold: int = 3,
        breaker_reset_seconds: float = 30.0,
        fault_plan: FaultPlan | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not factories:
            raise ValueError("EnginePool needs at least one dataset factory")
        self._group_capacity = group_capacity
        self._result_capacity = result_capacity
        self._fault_plan = fault_plan
        self._slots = {
            name: _DatasetSlot(
                factory,
                CircuitBreaker(
                    f"dataset {name!r}",
                    failure_threshold=breaker_failure_threshold,
                    reset_seconds=breaker_reset_seconds,
                    clock=clock,
                ),
            )
            for name, factory in factories.items()
        }

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._slots)

    @property
    def default_dataset(self) -> str:
        return next(iter(self._slots))

    def breaker(self, name: str) -> CircuitBreaker:
        return self._slots[name].breaker

    def get(self, name: str) -> CachingEngine:
        """The shared caching engine for ``name`` (built on first use)."""
        slot = self._slots.get(name)
        if slot is None:
            raise ProtocolError(
                f"unknown dataset {name!r} "
                f"(served datasets: {', '.join(self._slots)})",
                "unknown_dataset",
            )
        if self._fault_plan is not None:
            # chaos site "pool.get": a slow engine call on the request path
            self._fault_plan.check("pool.get")
        with slot.lock:
            if slot.engine is not None:
                return slot.engine
            slot.breaker.before_call()  # fast 503 while the circuit is open
            try:
                if self._fault_plan is not None:
                    self._fault_plan.check("pool.build")
                engine = CachingEngine(
                    slot.factory(),
                    group_capacity=self._group_capacity,
                    result_capacity=self._result_capacity,
                )
            except Exception as error:
                # evict-on-failure: the slot stays empty so the next
                # admitted attempt rebuilds from scratch
                slot.breaker.record_failure(error)
                raise DatasetLoadError(name, error) from error
            slot.breaker.record_success()
            slot.engine = engine
            return engine

    def cache_snapshots(self) -> dict[str, Any]:
        """Per-dataset group/result cache statistics (for ``/metrics``)."""
        snapshots: dict[str, Any] = {}
        for name, slot in self._slots.items():
            with slot.lock:
                engine = slot.engine
            if engine is None:
                continue
            snapshots[name] = {
                "group": engine.group_stats.snapshot(),
                "result": engine.result_stats.snapshot(),
                "stale_hits": engine.stale_hits,
                "flight_waits": engine.flight_waits,
            }
            index = engine.engine.index
            if index is not None:
                snapshots[name]["index"] = index.stats()
            snapshots[name]["batch"] = (
                engine.engine.recommender.batch_stats()
            )
        return snapshots

    def breaker_snapshots(self) -> dict[str, Any]:
        return {
            name: slot.breaker.snapshot()
            for name, slot in self._slots.items()
        }


_SESSION_ID = r"(?P<sid>[0-9a-f]{32})"
#: method, pattern, handler, metrics label, shed priority
_ROUTES: list[tuple[str, re.Pattern, str, str, Priority]] = [
    ("GET", re.compile(r"^/health$"), "handle_health", "GET /health",
     Priority.CRITICAL),
    ("GET", re.compile(r"^/metrics$"), "handle_metrics", "GET /metrics",
     Priority.CRITICAL),
    ("GET", re.compile(r"^/slo$"), "handle_slo", "GET /slo",
     Priority.CRITICAL),
    ("GET", re.compile(r"^/debug/traces$"), "handle_debug_traces",
     "GET /debug/traces", Priority.CRITICAL),
    (
        "GET",
        re.compile(r"^/debug/traces/(?P<trace_id>[0-9a-fA-F-]{8,64})$"),
        "handle_debug_trace",
        "GET /debug/traces/{id}",
        Priority.CRITICAL,
    ),
    ("GET", re.compile(r"^/debug/profile$"), "handle_debug_profile",
     "GET /debug/profile", Priority.CRITICAL),
    ("GET", re.compile(r"^/debug/spans/summary$"), "handle_debug_spans",
     "GET /debug/spans/summary", Priority.CRITICAL),
    ("GET", re.compile(r"^/cluster/workers$"), "handle_cluster_workers",
     "GET /cluster/workers", Priority.CRITICAL),
    ("POST", re.compile(r"^/cluster/maps$"), "handle_cluster_maps",
     "POST /cluster/maps", Priority.HEAVY),
    ("POST", re.compile(r"^/sessions$"), "handle_create", "POST /sessions",
     Priority.HEAVY),
    ("GET", re.compile(r"^/sessions$"), "handle_list", "GET /sessions",
     Priority.NORMAL),
    (
        "GET",
        re.compile(rf"^/sessions/{_SESSION_ID}$"),
        "handle_summary",
        "GET /sessions/{id}",
        Priority.NORMAL,
    ),
    (
        "DELETE",
        re.compile(rf"^/sessions/{_SESSION_ID}$"),
        "handle_close",
        "DELETE /sessions/{id}",
        Priority.CRITICAL,  # closing frees capacity: never shed it
    ),
    (
        "GET",
        re.compile(rf"^/sessions/{_SESSION_ID}/maps$"),
        "handle_maps",
        "GET /sessions/{id}/maps",
        Priority.NORMAL,
    ),
    (
        "GET",
        re.compile(rf"^/sessions/{_SESSION_ID}/recommendations$"),
        "handle_recommendations",
        "GET /sessions/{id}/recommendations",
        Priority.NORMAL,
    ),
    (
        "GET",
        re.compile(
            rf"^/sessions/{_SESSION_ID}/recommendations/refine/"
            r"(?P<token>[0-9a-f]{32})$"
        ),
        "handle_refine",
        "GET /sessions/{id}/recommendations/refine/{token}",
        Priority.NORMAL,
    ),
    (
        "POST",
        re.compile(rf"^/sessions/{_SESSION_ID}/apply$"),
        "handle_apply",
        "POST /sessions/{id}/apply",
        Priority.HEAVY,
    ),
    (
        "GET",
        re.compile(rf"^/sessions/{_SESSION_ID}/history$"),
        "handle_history",
        "GET /sessions/{id}/history",
        Priority.NORMAL,
    ),
]


def _classify_payload(
    status: int, payload: Any
) -> tuple[bool, bool, str | None]:
    """(shed, degraded, rung) of one finished response envelope."""
    shed = False
    degraded = False
    rung = None
    if isinstance(payload, dict):
        error = payload.get("error")
        shed = (
            status == 503
            and isinstance(error, dict)
            and error.get("code") == "overloaded"
        )
        degraded = bool(payload.get("degraded"))
        quality = payload.get("quality")
        if isinstance(quality, dict):
            rung = quality.get("rung")
    return shed, degraded, rung


class _PayloadTooLarge(ReproError):
    """Request body exceeds the configured limit (HTTP 413)."""


class SubDExRequestHandler(BaseHTTPRequestHandler):
    """Routes requests to handler methods; owns nothing but the wire."""

    protocol_version = "HTTP/1.1"
    server: "SubDExServer"  # narrowed for type checkers

    # -- plumbing -----------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        # per-request accounting lives in /metrics; the raw HTTP line is
        # still available at DEBUG for wire-level troubleshooting
        _http_log.debug("%s - %s", self.address_string(), format % args)

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def do_DELETE(self) -> None:
        self._dispatch("DELETE")

    def _dispatch(self, method: str) -> None:
        path = urlsplit(self.path).path
        label = None
        allowed: list[str] = []
        handler_name = None
        priority = Priority.NORMAL
        params: dict[str, str] = {}
        for route_method, pattern, name, route_label, route_priority in _ROUTES:
            match = pattern.match(path)
            if not match:
                continue
            if route_method == method:
                handler_name = name
                label = route_label
                priority = route_priority
                params = match.groupdict()
                break
            allowed.append(route_method)

        started = time.perf_counter()
        headers: dict[str, str] = {}
        trace_id: str | None = None
        shed = False
        degraded = False
        rung = None
        if handler_name is None:
            if allowed:
                label = f"{method} {path}"
                status, payload = 405, error_payload(
                    "method_not_allowed",
                    f"{method} not allowed here (allowed: {', '.join(allowed)})",
                )
            else:
                label = "<unmatched>"
                status, payload = 404, error_payload(
                    "not_found", f"no such endpoint: {method} {path}"
                )
        else:
            with self.server.tracer.span(
                "request",
                trace_id=self._incoming_trace_id(),
                method=method,
                route=label or path,
            ) as root:
                status, payload, headers = self._run_admitted(
                    handler_name, priority, params
                )
                shed, degraded, rung = _classify_payload(status, payload)
                trace_id = getattr(root, "trace_id", None)
                if trace_id is not None:
                    # outcome attributes set while the root is open: the
                    # tail sampler reads them off the finished root span
                    root.set(status=status)
                    if shed:
                        root.set(shed=True)
                    if degraded:
                        root.set(degraded=True)
                    headers = {**headers, "X-Trace-Id": trace_id}
                    if self._debug_requested() and isinstance(payload, dict):
                        # taken while the root span is still open: its
                        # duration reports elapsed-so-far, the handler's
                        # child spans are final
                        payload["debug"] = current_trace_partial()
        elapsed = time.perf_counter() - started
        headers = {**headers, "X-Server-Ms": f"{elapsed * 1000.0:.3f}"}
        # record before sending so a client that has the response in hand
        # is guaranteed to see its own request on a follow-up /metrics read
        self.server.metrics.observe(label or "<unmatched>", status, elapsed)
        slo = self.server.slo
        if slo is not None:
            slo.ingest(
                label or "<unmatched>",
                status,
                elapsed,
                shed=shed,
                degraded=degraded,
                rung=rung,
                trace_id=trace_id,
            )
        self._send(status, payload, headers)

    def _incoming_trace_id(self) -> str | None:
        """A client-supplied ``X-Trace-Id``, if well-formed (else ignored)."""
        raw = self.headers.get("X-Trace-Id")
        if raw is not None and _TRACE_ID_RE.match(raw):
            return raw
        return None

    def _debug_requested(self) -> bool:
        values = self._query().get("debug")
        return bool(values) and values[-1].lower() in ("1", "true", "yes")

    def _drop_unread_body(self) -> None:
        """Close the connection if the handler never consumed the body.

        Early-exit paths (shedding, injected faults, bad deadline headers)
        answer before reading the request body; leaving those bytes on a
        keep-alive connection would desync the next request.
        """
        if self.headers.get("Content-Length") not in (None, "0"):
            self.close_connection = True

    def _deadline(self) -> Deadline | None:
        """The request's time budget: header first, server default second."""
        raw = self.headers.get("X-Deadline-Ms")
        if raw is None:
            default = self.server.config.default_deadline_ms
            return Deadline(default / 1000.0) if default else None
        try:
            millis = int(raw)
        except ValueError:
            raise ProtocolError(
                f"invalid X-Deadline-Ms header: {raw!r}", "invalid_deadline"
            ) from None
        if millis < 1:
            raise ProtocolError(
                f"X-Deadline-Ms must be >= 1, got {millis}", "invalid_deadline"
            )
        return Deadline(millis / 1000.0)

    def _run_admitted(
        self, handler_name: str, priority: Priority, params: dict[str, str]
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        """Admission gate + deadline scope around one handler call."""
        server = self.server
        try:
            deadline = self._deadline()
        except ProtocolError as error:
            self._drop_unread_body()
            return 400, error_payload(error.code, str(error)), {}
        # anytime recommendation reads can always answer from the quality
        # ladder's cached rung at near-zero cost, so past the hard limit
        # they degrade instead of being shed with 503
        degradable = (
            handler_name == "handle_recommendations"
            and server.config.anytime_enabled
        )
        try:
            with server.gate.admit(priority, degradable=degradable) as degraded:
                if degraded:
                    server.metrics.record_event("pressure_admissions")
                with deadline_scope(deadline):
                    if server.fault_plan is not None:
                        try:
                            server.fault_plan.check("handler")
                        except InjectedFault as error:
                            server.metrics.record_event("injected_faults")
                            self._drop_unread_body()
                            return (
                                500,
                                error_payload(
                                    "injected_fault", str(error), retryable=True
                                ),
                                {},
                            )
                    return self._run(handler_name, params)
        except OverloadedError as error:
            server.metrics.record_event("shed_requests")
            self._drop_unread_body()
            return (
                503,
                error_payload(
                    "overloaded",
                    str(error),
                    retryable=True,
                    retry_after=error.retry_after,
                ),
                {"Retry-After": f"{max(1, round(error.retry_after))}"},
            )

    def _run(
        self, handler_name: str, params: dict[str, str]
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        try:
            result = getattr(self, handler_name)(**params)
            if len(result) == 3:  # (status, payload, extra headers)
                status, payload, handler_headers = result
            else:
                status, payload = result
                handler_headers = {}
            headers: dict[str, str] = dict(handler_headers)
            if isinstance(payload, dict):
                if payload.get("degraded"):
                    self.server.metrics.record_event("degraded_responses")
                # forwarded worker error envelopes carry retry_after in the
                # body; surface it as the Retry-After header the
                # single-process paths set directly
                error = payload.get("error")
                if isinstance(error, dict) and "retry_after" in error:
                    headers["Retry-After"] = (
                        f"{max(1, round(error['retry_after']))}"
                    )
            return status, payload, headers
        except _PayloadTooLarge as error:
            self.close_connection = True  # unread body still on the wire
            return 413, error_payload("payload_too_large", str(error)), {}
        except DeadlineExceeded as error:
            self.server.metrics.record_event("deadline_exceeded")
            return (
                504,
                error_payload("deadline_exceeded", str(error), retryable=True),
                {},
            )
        except BreakerOpenError as error:
            return (
                503,
                error_payload(
                    "dataset_unavailable",
                    str(error),
                    retryable=True,
                    retry_after=error.retry_after,
                ),
                {"Retry-After": f"{max(1, round(error.retry_after))}"},
            )
        except DatasetLoadError as error:
            return (
                503,
                error_payload("dataset_unavailable", str(error), retryable=True),
                {"Retry-After": "1"},
            )
        except ProtocolError as error:
            return 400, error_payload(error.code, str(error)), {}
        except UnknownSessionError as error:
            return 404, error_payload("unknown_session", str(error)), {}
        except SessionGoneError as error:
            return 410, error_payload("session_gone", str(error)), {}
        except RefinementLostError as error:
            self.server.metrics.record_event("refinements_lost")
            return 410, error_payload("refinement_lost", str(error)), {}
        except SessionLimitError as error:
            return (
                429,
                error_payload("too_many_sessions", str(error), retryable=True),
                {"Retry-After": "1"},
            )
        except InjectedFault as error:
            self.server.metrics.record_event("injected_faults")
            return 500, error_payload("injected_fault", str(error), retryable=True), {}
        except (EmptyGroupError, OperationError) as error:
            return 400, error_payload("empty_group", str(error)), {}
        except cluster_supervisor.WorkerUnavailableError as error:
            self.server.metrics.record_event("worker_unavailable")
            return (
                503,
                error_payload(
                    "worker_unavailable",
                    str(error),
                    retryable=True,
                    retry_after=error.retry_after,
                ),
                {"Retry-After": f"{max(1, round(error.retry_after))}"},
            )
        except ReproError as error:
            return 400, error_payload("bad_request", str(error)), {}
        except Exception as error:  # noqa: BLE001 - last-resort 500
            return (
                500,
                error_payload(
                    "internal_error", f"{type(error).__name__}: {error}"
                ),
                {},
            )

    def _send(
        self,
        status: int,
        payload: dict[str, Any] | str,
        headers: Mapping[str, str] | None = None,
    ) -> None:
        if isinstance(payload, str):  # Prometheus text exposition
            body = payload.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json; charset=utf-8"
        remaining = dict(headers or {})
        content_type = remaining.pop("Content-Type", content_type)
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in remaining.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _json_body(self) -> dict[str, Any]:
        length_header = self.headers.get("Content-Length")
        try:
            length = int(length_header) if length_header is not None else 0
        except ValueError:
            raise ProtocolError(
                f"invalid Content-Length: {length_header!r}", "invalid_request"
            ) from None
        limit = self.server.config.max_body_bytes
        if length > limit:
            raise _PayloadTooLarge(
                f"request body of {length} bytes exceeds the "
                f"{limit}-byte limit"
            )
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as error:
            raise ProtocolError(
                f"request body is not valid JSON: {error}", "invalid_json"
            ) from None
        if not isinstance(body, dict):
            raise ProtocolError(
                "request body must be a JSON object", "invalid_json"
            )
        return body

    def _query(self) -> dict[str, list[str]]:
        return parse_qs(urlsplit(self.path).query)

    # -- cluster forwarding ---------------------------------------------------
    def _cluster_forward(
        self, op: str, sid: str, payload: dict[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        """Route a session op to its ring-owning worker; relay the reply.

        Transport failures and open worker breakers surface as
        :class:`~repro.cluster.supervisor.WorkerUnavailableError` — a retryable 503 with
        ``Retry-After`` — instead of hanging the caller on a dead worker.
        """
        cluster = self.server.cluster
        worker = cluster.route(sid)
        try:
            return cluster.call(worker, op, {"sid": sid, **payload})
        except BreakerOpenError as error:
            raise cluster_supervisor.WorkerUnavailableError(
                worker, str(error), error.retry_after
            ) from error

    # -- service endpoints ---------------------------------------------------
    def handle_health(self) -> tuple[int, dict[str, Any]]:
        payload: dict[str, Any] = {
            "status": "ok",
            "datasets": list(self.server.pool.names),
            "sessions": self.server.registry.live_count,
            "inflight": self.server.gate.inflight,
        }
        cluster = self.server.cluster
        if cluster is not None:
            states = cluster.worker_states()
            payload["cluster"] = {
                "workers": len(states),
                "up": sum(
                    1 for s in states if s["alive"] and s["state"] == "up"
                ),
                "restarts": sum(s["restarts"] for s in states),
            }
        return 200, payload

    def handle_metrics(self) -> tuple[int, dict[str, Any] | str]:
        fmt = self._query().get("format", ["json"])[-1]
        if fmt in ("prometheus", "openmetrics"):
            # both serve the exemplar-bearing OpenMetrics rendering (a
            # superset of the classic text format: exemplars after
            # _bucket values, "# EOF" terminator); "openmetrics" also
            # negotiates the proper content type
            text = self.server.metrics.registry.render_openmetrics()
            if fmt == "openmetrics":
                return 200, text, {
                    "Content-Type": (
                        "application/openmetrics-text; "
                        "version=1.0.0; charset=utf-8"
                    )
                }
            return 200, text
        if fmt != "json":
            raise ProtocolError(
                f"unknown metrics format {fmt!r} "
                "(supported: json, prometheus, openmetrics)",
                "invalid_request",
            )
        payload = self.server.metrics.snapshot(
            sessions=self.server.registry.counters(),
            caches=self.server.pool.cache_snapshots(),
            resilience=self.server.resilience_snapshot(),
        )
        payload["process"] = self.server.process_collector.snapshot()
        if self.server.cluster is not None:
            payload["cluster"] = {
                "workers": self.server.cluster.worker_states()
            }
        return 200, payload

    def handle_slo(self) -> tuple[int, dict[str, Any]]:
        """The SLO scorecard: attainment, budgets, burn rates per class.

        In cluster mode the front's own tracker (which sees every HTTP
        request) stays the primary scorecard; the per-worker op windows
        are scraped best-effort and merged by addition into a ``fleet``
        aggregate so per-worker skew is visible from one endpoint.
        """
        slo = self.server.slo
        if slo is None:
            return 200, {"enabled": False}
        payload = slo.scorecard()
        payload["enabled"] = True
        cluster = self.server.cluster
        if cluster is not None:
            worker_totals = cluster.slo_totals()
            reachable = {
                index: totals
                for index, totals in worker_totals.items()
                if totals is not None
            }
            payload["cluster"] = {
                "workers": sorted(reachable),
                "unreachable": sorted(
                    set(worker_totals) - set(reachable)
                ),
                "fleet": scorecard_from_totals(
                    slo.config,
                    merge_worker_totals(reachable.values()),
                ),
            }
        return 200, payload

    def handle_debug_traces(self) -> tuple[int, dict[str, Any]]:
        query = self._query()
        min_ms = 0.0
        limit: int | None = None
        if "min_ms" in query:
            try:
                min_ms = float(query["min_ms"][-1])
            except ValueError:
                raise ProtocolError(
                    f"query parameter min_ms must be a number, "
                    f"got {query['min_ms'][-1]!r}",
                    "invalid_request",
                ) from None
        if "limit" in query:
            try:
                limit = int(query["limit"][-1])
            except ValueError:
                raise ProtocolError(
                    f"query parameter limit must be an integer, "
                    f"got {query['limit'][-1]!r}",
                    "invalid_request",
                ) from None
            if limit < 1:
                raise ProtocolError(
                    f"query parameter limit must be >= 1, got {limit}",
                    "invalid_request",
                )
        op = query.get("op", [None])[-1]
        dataset = query.get("dataset", [None])[-1]
        status = query.get("status", [None])[-1]
        if status is not None and status not in ("ok", "error") and not (
            status.isdigit() and len(status) == 3
        ):
            raise ProtocolError(
                f"query parameter status must be 'ok', 'error' or a "
                f"3-digit HTTP status, got {status!r}",
                "invalid_request",
            )
        traces = self.server.collector.search(
            op=op, dataset=dataset, min_ms=min_ms, status=status, limit=limit
        )
        return 200, {
            "tracing_enabled": self.server.tracer.enabled,
            "total_recorded": self.server.trace_buffer.total_recorded,
            "returned": len(traces),
            "sampling": self.server.collector.counters(),
            "traces": traces,
        }

    def handle_debug_trace(
        self, trace_id: str
    ) -> tuple[int, dict[str, Any]]:
        """One fleet-assembled trace: front + worker spans, stitched."""
        record = self.server.collector.get(trace_id)
        if record is None:
            return 404, error_payload(
                "unknown_trace",
                f"no collected trace {trace_id!r} "
                "(it may have been sampled out or evicted)",
            )
        return 200, record

    def handle_debug_profile(self) -> tuple[int, dict[str, Any] | str]:
        """Sample every thread's stack for a window; render the result.

        The handler thread sleeps through the window (and is sampled doing
        so); the profiler thread watches the rest of the process, so the
        profile covers all concurrent request handling.  One profile at a
        time — a second request while one is running gets 409 rather than
        doubling the sampling overhead.
        """
        query = self._query()
        seconds = 1.0
        if "seconds" in query:
            try:
                seconds = float(query["seconds"][-1])
            except ValueError:
                raise ProtocolError(
                    f"query parameter seconds must be a number, "
                    f"got {query['seconds'][-1]!r}",
                    "invalid_request",
                ) from None
        limit = self.server.config.profile_max_seconds
        if not 0.0 < seconds <= limit:
            raise ProtocolError(
                f"query parameter seconds must be in (0, {limit:g}], "
                f"got {seconds:g}",
                "invalid_request",
            )
        interval = 0.005
        if "interval_ms" in query:
            try:
                interval = float(query["interval_ms"][-1]) / 1000.0
            except ValueError:
                raise ProtocolError(
                    f"query parameter interval_ms must be a number, "
                    f"got {query['interval_ms'][-1]!r}",
                    "invalid_request",
                ) from None
        fmt = query.get("format", ["collapsed"])[-1]
        if fmt not in ("collapsed", "json"):
            raise ProtocolError(
                f"unknown profile format {fmt!r} "
                "(supported: collapsed, json)",
                "invalid_request",
            )
        if not self.server.profile_lock.acquire(blocking=False):
            return 409, error_payload(
                "profile_in_progress",
                "another profile is being taken; retry when it finishes",
                retryable=True,
            )
        try:
            try:
                profiler = SamplingProfiler(interval=interval)
            except ValueError as error:
                raise ProtocolError(str(error), "invalid_request") from None
            profiler.start()
            try:
                time.sleep(seconds)
            finally:
                profile = profiler.stop()
        finally:
            self.server.profile_lock.release()
        if fmt == "collapsed":
            return 200, profile.render_collapsed()
        return 200, profile.to_dict()

    def handle_debug_spans(self) -> tuple[int, dict[str, Any]]:
        """Span cost accounting: the aggregate per-operation cost table."""
        query = self._query()
        limit: int | None = None
        if "limit" in query:
            try:
                limit = int(query["limit"][-1])
            except ValueError:
                raise ProtocolError(
                    f"query parameter limit must be an integer, "
                    f"got {query['limit'][-1]!r}",
                    "invalid_request",
                ) from None
            if limit < 1:
                raise ProtocolError(
                    f"query parameter limit must be >= 1, got {limit}",
                    "invalid_request",
                )
        payload = self.server.span_stats.summary(limit=limit)
        payload["tracing_enabled"] = self.server.tracer.enabled
        if self.server.cluster is not None:
            # per-worker span accounting, scraped over IPC; an unreachable
            # worker reports {"unreachable": true} instead of blocking
            payload["workers"] = {
                index: stats.get("spans", stats)
                for index, stats in self.server.cluster.stats(
                    limit=limit
                ).items()
            }
        return 200, payload

    # -- cluster endpoints ----------------------------------------------------
    def handle_cluster_workers(self) -> tuple[int, dict[str, Any]]:
        cluster = self.server.cluster
        if cluster is None:
            return 200, {"enabled": False, "workers": []}
        return 200, {
            "enabled": True,
            "n_workers": cluster.n_workers,
            "n_shards": cluster.config.n_shards,
            "workers": cluster.worker_states(),
        }

    def handle_cluster_maps(self) -> tuple[int, dict[str, Any]]:
        """One stateless scatter/gather phase scan (no session involved).

        In cluster mode the scan fans out across the workers' shards and
        the partial count cubes merge by addition; in single-process mode
        the *same* merge code runs over all shards locally — so the two
        deployments answer byte-identical maps for the same body, which
        the equivalence suite asserts end to end.
        """
        body = self._json_body()
        dataset = body.get("dataset") or self.server.pool.default_dataset
        if not isinstance(dataset, str):
            raise ProtocolError("'dataset' must be a string", "invalid_request")
        annotate(dataset=dataset)
        criteria = (
            criteria_from_json(body["criteria"])
            if body.get("criteria") is not None
            else SelectionCriteria.root()
        )
        k = body.get("k")
        if k is not None and (
            not isinstance(k, int) or isinstance(k, bool) or k < 1
        ):
            raise ProtocolError(
                f"'k' must be an integer >= 1, got {k!r}", "invalid_request"
            )
        cluster = self.server.cluster
        if cluster is not None:
            if dataset not in cluster.dataset_names:
                raise ProtocolError(
                    f"unknown dataset {dataset!r} "
                    f"(served datasets: {', '.join(cluster.dataset_names)})",
                    "unknown_dataset",
                )
            database, engine_config = cluster.dataset(dataset)
            generator = preview_generator(
                RMSetGenerator(engine_config.generator)
            )
            specs = scan_specs(database, criteria)
            try:
                partials, scatter = cluster.scatter_scan(
                    dataset, criteria, specs
                )
            except BreakerOpenError as error:
                raise cluster_supervisor.WorkerUnavailableError(
                    -1, str(error), error.retry_after
                ) from error
        else:
            engine = self.server.pool.get(dataset)
            database = engine.database
            generator = preview_generator(engine.engine.generator)
            specs = scan_specs(database, criteria)
            n_shards = self.server.config.shards or 4
            shard_map = ShardMap(n_shards)
            record_shards = shard_map.record_shards(database)
            partials = local_partial_scans(
                database, criteria, specs, record_shards, n_shards
            )
            scatter = {
                "workers": [],
                "degraded": False,
                "missing_shards": [],
                "mode": "local",
                "shards": n_shards,
            }
        result = result_from_scans(
            generator, database, criteria, specs, partials, k=k
        )
        return 200, {
            "dataset": dataset,
            "criteria": criteria_to_json(criteria),
            "group_size": sum(p.group_size for p in partials),
            "degraded": bool(scatter["degraded"]),
            "scatter": scatter,
            "maps": [
                rating_map_to_json(rm, result.dw_utility(rm))
                for rm in result.selected
            ],
        }

    # -- session lifecycle ---------------------------------------------------
    def handle_create(self) -> tuple[int, dict[str, Any]]:
        body = self._json_body()
        if self.server.cluster is not None:
            # the front picks the id so it can route before the session
            # exists; the worker adopts the session under this id
            sid = uuid.uuid4().hex
            return self._cluster_forward("session.create", sid, {"body": body})
        dataset = body.get("dataset") or self.server.pool.default_dataset
        if not isinstance(dataset, str):
            raise ProtocolError("'dataset' must be a string", "invalid_request")
        annotate(dataset=dataset)
        engine = self.server.pool.get(dataset)
        start = (
            criteria_from_json(body["criteria"])
            if body.get("criteria") is not None
            else None
        )
        managed = self.server.registry.create(
            dataset, lambda: engine.session(start)
        )
        with self.server.registry.acquire(managed.session_id) as live:
            record = live.session.step(with_recommendations=True)
            live.latest = record
            self.server.save_checkpoint(live)
            return 201, {
                "session_id": live.session_id,
                "dataset": dataset,
                "degraded": record.degraded,
                "step": step_to_json(record),
            }

    def handle_list(self) -> tuple[int, dict[str, Any]]:
        if self.server.cluster is not None:
            return 200, {"sessions": self.server.cluster.live_sessions()}
        return 200, {"sessions": self.server.registry.summaries()}

    def handle_summary(self, sid: str) -> tuple[int, dict[str, Any]]:
        if self.server.cluster is not None:
            return self._cluster_forward("session.summary", sid, {})
        registry = self.server.registry
        with registry.acquire(sid) as managed:
            summary = managed.summary(now=time.monotonic())
            summary["criteria"] = (
                criteria_to_json(managed.session.criteria)
                if managed.session is not None
                else None
            )
            return 200, summary

    def handle_close(self, sid: str) -> tuple[int, dict[str, Any]]:
        if self.server.cluster is not None:
            return self._cluster_forward("session.close", sid, {})
        managed = self.server.registry.close(sid)
        self.server.forget_checkpoint(sid)
        return 200, {
            "session_id": sid,
            "closed": True,
            "n_steps": managed.session.n_steps if managed.session else 0,
        }

    # -- exploration ---------------------------------------------------------
    def handle_maps(self, sid: str) -> tuple[int, dict[str, Any]]:
        if self.server.cluster is not None:
            return self._cluster_forward("session.maps", sid, {})
        with self.server.registry.acquire(sid) as managed:
            record = managed.latest
            return 200, {
                "session_id": sid,
                "step_index": record.index if record else 0,
                "degraded": record.degraded if record else False,
                "criteria": criteria_to_json(record.criteria) if record else None,
                "maps": [
                    rating_map_to_json(rm, record.result.dw_utility(rm))
                    for rm in record.result.selected
                ]
                if record
                else [],
            }

    def handle_recommendations(self, sid: str) -> tuple[int, dict[str, Any]]:
        query = self._query()
        limit: int | None = None
        if "o" in query:
            try:
                limit = int(query["o"][0])
            except ValueError:
                raise ProtocolError(
                    f"query parameter o must be an integer, "
                    f"got {query['o'][0]!r}",
                    "invalid_request",
                ) from None
            if limit < 1:
                raise ProtocolError(
                    f"query parameter o must be >= 1, got {limit}",
                    "invalid_request",
                )
        budget_ms: int | None = None
        if "budget_ms" in query:
            try:
                budget_ms = parse_budget_ms(query["budget_ms"][0])
            except ValueError as error:
                raise ProtocolError(str(error), "invalid_request") from None
        server = self.server
        # the anytime path engages only when asked for (a budget) or
        # needed (admitted under pressure / past the hard limit); a
        # budget-less request on an unloaded server takes the exact
        # pre-anytime path
        engaged = server.config.anytime_enabled and (
            budget_ms is not None or under_pressure()
        )
        if server.cluster is not None:
            if not engaged:
                return self._cluster_forward(
                    "session.recommendations", sid, {"o": limit}
                )
            # the front owns the load signals, so it picks the rung; the
            # plan ships to the shard owner inside the op payload (the
            # envelope deadline stays the *hard* limit)
            rung = server.anytime.select_rung()
            status, payload = self._cluster_forward(
                "session.recommendations",
                sid,
                {"o": limit, "budget_ms": budget_ms, "rung": rung.label},
            )
            if status == 200 and isinstance(payload, dict):
                quality = payload.get("quality") or {}
                server.anytime.record(
                    QualityRung.from_label(quality.get("rung", rung.label)),
                    partial=not quality.get("complete", True),
                    snapshots=int(quality.get("snapshots", 0)),
                )
            return status, payload
        if not engaged:
            with server.registry.acquire(sid) as managed:
                scored = managed.latest.recommendations if managed.latest else ()
                if limit is not None:
                    scored = scored[:limit]
                return 200, {
                    "session_id": sid,
                    "recommendations": [
                        recommendation_to_json(i, s)
                        for i, s in enumerate(scored, 1)
                    ],
                }
        return self._anytime_recommendations(sid, limit, budget_ms)

    def _anytime_recommendations(
        self, sid: str, limit: int | None, budget_ms: int | None
    ) -> tuple[int, dict[str, Any]]:
        """Budget-bounded / degraded recommendations with refinement."""
        server = self.server
        started = time.perf_counter()
        rung = server.anytime.select_rung()
        plan = server.anytime.ladder.plan(rung)
        force_cut: int | None = None
        if server.fault_plan is not None:
            force_cut = server.fault_plan.budget_cut("anytime.recommend")
        with server.registry.acquire(sid) as managed:
            if plan.use_cached:
                scored = managed.latest.recommendations if managed.latest else ()
                if limit is not None:
                    scored = scored[:limit]
                quality: dict[str, Any] = {
                    "rung": rung.label,
                    "complete": False,
                    "stale": True,
                }
                partial = True
                recommendations = [
                    recommendation_to_json(i, s)
                    for i, s in enumerate(scored, 1)
                ]
            else:
                result = managed.session.recommendations_anytime(
                    budget=budget_deadline(budget_ms),
                    o=limit,
                    plan=plan,
                    force_cut_after=force_cut,
                )
                quality = result.completeness.to_json()
                partial = result.is_partial
                recommendations = [
                    recommendation_to_json(i, s)
                    for i, s in enumerate(result, 1)
                ]
        refinement: dict[str, Any] | None = None
        if partial:
            token = uuid.uuid4().hex
            server.refinements.submit(
                token, lambda: server.refine_session(sid)
            )
            refinement = {
                "token": token,
                "href": f"/sessions/{sid}/recommendations/refine/{token}",
            }
        server.anytime.observe_latency(time.perf_counter() - started)
        server.anytime.record(
            rung,
            partial=partial,
            snapshots=int(quality.get("snapshots", 0)),
            forced_cut=force_cut is not None and bool(quality.get("budget_cut")),
        )
        if budget_ms is not None:
            quality["budget_ms"] = budget_ms
        return 200, {
            "session_id": sid,
            "degraded": partial or rung is not QualityRung.FULL,
            "quality": quality,
            "refinement": refinement,
            "recommendations": recommendations,
        }

    def handle_refine(self, sid: str, token: str) -> tuple[int, dict[str, Any]]:
        """Poll one refinement token (``refinement_lost`` → typed 410)."""
        if self.server.cluster is not None:
            return self._cluster_forward(
                "session.refine", sid, {"token": token}
            )
        payload = self.server.refinements.poll(token)
        return 200, {"session_id": sid, **payload}

    def handle_apply(self, sid: str) -> tuple[int, dict[str, Any]]:
        body = self._json_body()
        if self.server.cluster is not None:
            return self._cluster_forward("session.apply", sid, {"body": body})
        directives = [
            k
            for k in ("recommendation", "add", "drop", "sql", "criteria")
            if k in body
        ]
        if len(directives) > 1:
            raise ProtocolError(
                "apply body must contain exactly one of 'recommendation', "
                f"'add', 'drop', 'sql' or 'criteria', got {directives}",
                "invalid_edit",
            )
        with self.server.registry.acquire(sid) as managed:
            if "recommendation" in body:
                number = body["recommendation"]
                scored = managed.latest.recommendations if managed.latest else ()
                if (
                    not isinstance(number, int)
                    or isinstance(number, bool)
                    or not 1 <= number <= len(scored)
                ):
                    raise ProtocolError(
                        f"invalid recommendation number {number!r} "
                        f"(the current step offers 1..{len(scored)})",
                        "invalid_recommendation",
                    )
                record = managed.session.step(
                    scored[number - 1].operation, with_recommendations=True
                )
            else:
                criteria = apply_edit(managed.session.criteria, body)
                record = managed.session.apply_criteria(
                    criteria, with_recommendations=True
                )
            managed.latest = record
            self.server.save_checkpoint(managed)
            return 200, {
                "session_id": sid,
                "degraded": record.degraded,
                "step": step_to_json(record),
            }

    def handle_history(self, sid: str) -> tuple[int, dict[str, Any]]:
        if self.server.cluster is not None:
            return self._cluster_forward("session.history", sid, {})
        with self.server.registry.acquire(sid) as managed:
            path = ExplorationPath(
                ExplorationMode.USER_DRIVEN, managed.session.steps
            )
            log = ExplorationLog.from_path(
                path,
                dataset=managed.dataset,
                metadata={"session_id": sid},
            )
            return 200, log.to_dict()


class SubDExServer(ThreadingHTTPServer):
    """One serving process: pool + registry + gate + metrics behind HTTP."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        pool: EnginePool,
        config: ServerConfig | None = None,
        fault_plan: FaultPlan | None = None,
        cluster: cluster_supervisor.WorkerPool | None = None,
    ) -> None:
        super().__init__(address, SubDExRequestHandler)
        self.config = config or ServerConfig()
        self.pool = pool
        self.fault_plan = fault_plan
        #: sharded mode: a started :class:`~repro.cluster.supervisor.WorkerPool`;
        #: ``None`` means classic single-process serving
        self.cluster = cluster
        self.registry = SessionRegistry(
            max_sessions=self.config.max_sessions,
            ttl_seconds=self.config.session_ttl_seconds,
            fault_plan=fault_plan,
        )
        self.metrics = ServerMetrics(
            reservoir_size=self.config.metrics_reservoir_size
        )
        self.metrics.registry.register_collector(self._collect_engine_metrics)
        #: SLO tracking: one ingest per finished request in _dispatch,
        #: scored at GET /slo and collected as subdex_slo_* families
        self.slo: SLOTracker | None = None
        if self.config.slo_enabled:
            self.slo = SLOTracker(
                load_slo_config(self.config.slo_config_path),
                on_event=self._on_slo_event,
            )
            self.metrics.registry.register_collector(self.slo.collect)
        if self.cluster is not None:
            self.metrics.registry.register_collector(
                self.cluster.metric_families
            )
        # a private tracer: concurrent servers in one process (tests run
        # several) must not deliver traces into each other's sinks
        self.tracer = Tracer(enabled=self.config.tracing_enabled)
        ring_bytes = int(self.config.trace_ring_mb * 1024 * 1024) or None
        self.trace_buffer = TraceRingBuffer(
            self.config.trace_buffer_size,
            max_bytes=ring_bytes,
            max_spans_per_trace=self.config.trace_max_spans,
        )
        self.tracer.add_sink(self.trace_buffer)
        #: fleet trace collection: tail-sampled, cross-worker-stitched
        #: traces behind GET /debug/traces[/<id>] — identical endpoints
        #: in 0-worker and N-worker deployments
        self.trace_sampler = TailSampler(
            sample_rate=self.config.trace_sample_rate,
            slow_ms=self.config.slow_request_ms,
        )
        self.collector = TraceCollector(
            sampler=self.trace_sampler,
            max_traces=self.config.trace_buffer_size,
            max_bytes=ring_bytes,
            max_spans_per_trace=self.config.trace_max_spans,
        )
        self.tracer.add_sink(self.collector)
        if self.cluster is not None:
            self.cluster.trace_sink = self.collector.add_fragment
            self.cluster.collect_traces = self.config.tracing_enabled
        self.trace_file_sink: JsonlTraceSink | None = None
        if self.config.trace_file is not None:
            self.trace_file_sink = JsonlTraceSink(
                self.config.trace_file,
                max_mb=self.config.trace_file_max_mb,
            )
            self.tracer.add_sink(self.trace_file_sink)
        self.slow_log: SlowTraceLog | None = None
        if self.config.slow_request_ms is not None:
            self.slow_log = SlowTraceLog(self.config.slow_request_ms, _log)
            self.tracer.add_sink(self.slow_log)
        # span cost accounting (GET /debug/spans/summary + registry
        # families) and process health gauges (RSS/GC/threads/uptime)
        self.span_stats = SpanStatsSink()
        self.tracer.add_sink(self.span_stats)
        self.metrics.registry.register_collector(self.span_stats.collect)
        self.process_collector = ProcessCollector()
        self.metrics.registry.register_collector(self.process_collector)
        #: serialises GET /debug/profile: one sampling run at a time
        self.profile_lock = threading.Lock()
        self.gate = AdmissionGate(
            hard_limit=self.config.max_inflight,
            soft_limit=self.config.soft_inflight,
            retry_after_seconds=self.config.shed_retry_after_seconds,
        )
        #: anytime recommendations: the degradation controller reads the
        #: gate / breakers live, the store tracks refinement jobs
        self.anytime = AnytimeController(
            gate=self.gate,
            latency_target_ms=self.config.anytime_latency_target_ms,
            breaker_states=self._breaker_states,
        )
        self.refinements = RefinementStore(
            capacity=self.config.refinement_capacity,
            ttl_seconds=self.config.refinement_ttl_seconds,
        )
        self.checkpointer: SessionCheckpointer | None = None
        if self.config.checkpoint_dir is not None:
            store = CheckpointStore(
                self.config.checkpoint_dir, fault_plan=fault_plan
            )
            self.checkpointer = SessionCheckpointer(
                store,
                source=self._checkpoint_source,
                interval_seconds=self.config.checkpoint_interval_seconds,
            )

    @property
    def url(self) -> str:
        host, port = self.server_address[0], self.server_address[1]
        return f"http://{host}:{port}"

    # -- checkpointing --------------------------------------------------------
    def _checkpoint_source(self) -> Iterator[SessionCheckpoint]:
        """Periodic-flush source: every live session whose lock is free.

        A busy session is mid-mutation and will checkpoint itself when the
        handler finishes; skipping it avoids stalling the flush thread on
        a long-running step.
        """
        for managed in self.registry.live_sessions():
            if managed.session is None:
                continue
            if not managed.lock.acquire(blocking=False):
                continue
            try:
                yield SessionCheckpoint.capture(
                    managed.session_id,
                    managed.dataset,
                    managed.created_wall,
                    managed.session,
                )
            finally:
                managed.lock.release()

    def save_checkpoint(self, managed: ManagedSession) -> None:
        """On-mutation checkpoint (caller holds the session lock)."""
        if self.checkpointer is None or managed.session is None:
            return
        self.checkpointer.save(
            SessionCheckpoint.capture(
                managed.session_id,
                managed.dataset,
                managed.created_wall,
                managed.session,
            )
        )

    def forget_checkpoint(self, session_id: str) -> None:
        if self.checkpointer is not None:
            self.checkpointer.forget(session_id)

    # -- SLO events -----------------------------------------------------------
    def _on_slo_event(self, event: Mapping[str, Any]) -> None:
        """Count burn-rate state transitions into /metrics event counters.

        Also drives the tail sampler's burn windows: while any class is
        burning, every trace is kept so the incident is fully traced.
        """
        state = event.get("to", "unknown")
        self.metrics.record_event(f"slo_{state}")
        slo_class = str(event.get("class", ""))
        if state == "ok":
            self.trace_sampler.unpin_burn(slo_class)
        else:
            self.trace_sampler.pin_burn(slo_class)

    # -- anytime --------------------------------------------------------------
    def _breaker_states(self) -> list[str]:
        return [
            str(snapshot["state"])
            for snapshot in self.pool.breaker_snapshots().values()
        ]

    def refine_session(self, sid: str) -> dict[str, Any]:
        """Full-quality recompute backing one refinement token.

        Runs on a refinement-store thread with no ambient deadline or
        pressure, so the answer it produces is the unbudgeted full-rung
        result — exactly what the budget-cut request could not wait for.
        """
        with self.registry.acquire(sid) as managed:
            result = managed.session.recommendations_anytime()
            return {
                "quality": result.completeness.to_json(),
                "recommendations": [
                    recommendation_to_json(i, s)
                    for i, s in enumerate(result, 1)
                ],
            }

    def restore_sessions(self) -> int:
        """Replay every checkpoint in the store into live sessions.

        Called once before serving.  A checkpoint that cannot be restored
        (unknown dataset, failing engine, replay error) is skipped and
        counted — a corrupt session must not block the healthy ones.
        """
        if self.checkpointer is None:
            return 0
        restored = 0
        for checkpoint in self.checkpointer.store.load_all():
            try:
                engine = self.pool.get(checkpoint.dataset)
                session = restore_session(engine, checkpoint)
                managed = self.registry.adopt(
                    checkpoint.session_id,
                    checkpoint.dataset,
                    session,
                    created_wall=checkpoint.created_wall,
                )
                managed.latest = session.steps[-1] if session.steps else None
                restored += 1
            except Exception:  # noqa: BLE001 - skip the unrestorable
                self.metrics.record_event("restore_failures")
                _log.warning(
                    "failed to restore session %s (dataset %r); skipping it",
                    checkpoint.session_id,
                    checkpoint.dataset,
                    exc_info=True,
                )
        if restored:
            self.metrics.record_event("sessions_restored", restored)
            _log.info("restored %d checkpointed session(s)", restored)
        return restored

    def start_background(self) -> None:
        """Start the periodic checkpoint flusher (no-op without one)."""
        if self.checkpointer is not None:
            self.checkpointer.start()

    # -- shutdown -------------------------------------------------------------
    def graceful_shutdown(self, drain_seconds: float | None = None) -> bool:
        """Stop accepting, drain in-flight work, flush checkpoints, close.

        Returns ``True`` if every in-flight request finished inside the
        drain budget.  Must be called from a thread other than the one
        running :meth:`serve_forever`.
        """
        budget = (
            self.config.drain_seconds if drain_seconds is None else drain_seconds
        )
        _log.info("graceful shutdown: draining for up to %.1fs", budget)
        self.shutdown()  # stop accepting new connections
        drained = self.gate.drain(budget)
        if not drained:
            _log.warning(
                "drain deadline hit after %.1fs; aborting in-flight requests",
                budget,
            )
        if self.checkpointer is not None:
            self.checkpointer.stop()
            self.checkpointer.flush()  # one final checkpoint per live session
        if self.cluster is not None:
            # drain workers (each flushes its own checkpoints), join their
            # processes, unlink every shared-memory segment
            self.cluster.shutdown(drain_seconds=budget)
        if self.trace_file_sink is not None:
            self.trace_file_sink.close()
        self.server_close()
        _log.info("shutdown complete (drained=%s)", drained)
        return drained

    def resilience_snapshot(self) -> dict[str, Any]:
        snapshot: dict[str, Any] = {
            "gate": self.gate.counters(),
            "breakers": self.pool.breaker_snapshots(),
            "anytime": self.anytime.counters(),
            "refinements": self.refinements.counters(),
        }
        if self.checkpointer is not None:
            snapshot["checkpoints"] = self.checkpointer.counters()
        if self.fault_plan is not None:
            snapshot["faults"] = self.fault_plan.counters()
        return snapshot

    # -- metrics collection ---------------------------------------------------
    def _collect_engine_metrics(self) -> list[MetricFamily]:
        """Scrape-time families for layers that keep their own counters.

        Reading existing counters at scrape time (instead of double
        accounting on the hot paths) keeps instrumentation out of the
        engine's inner loops.
        """
        families: list[MetricFamily] = []

        sessions = MetricFamily(
            "subdex_sessions", "gauge", "Session registry state by kind."
        )
        for kind, value in self.registry.counters().items():
            sessions.add(value, kind=kind)
        families.append(sessions)

        gate = MetricFamily(
            "subdex_gate", "gauge", "Admission gate state by kind."
        )
        for kind, value in self.gate.counters().items():
            gate.add(value, kind=kind)
        families.append(gate)

        caches = MetricFamily(
            "subdex_cache_events_total",
            "counter",
            "Engine cache events by dataset, cache and kind.",
        )
        index_events = MetricFamily(
            "subdex_index_events_total",
            "counter",
            "Sufficient-statistic index events by dataset and kind.",
        )
        batch_events = MetricFamily(
            "subdex_batch_events_total",
            "counter",
            "Family-batched scoring events by dataset and kind.",
        )
        for dataset, snapshot in self.pool.cache_snapshots().items():
            for cache in ("group", "result"):
                for kind in ("hits", "misses", "evictions"):
                    caches.add(
                        snapshot[cache][kind],
                        dataset=dataset,
                        cache=cache,
                        kind=kind,
                    )
            caches.add(
                snapshot["stale_hits"],
                dataset=dataset, cache="result", kind="stale_hits",
            )
            caches.add(
                snapshot["flight_waits"],
                dataset=dataset, cache="result", kind="flight_waits",
            )
            index = snapshot.get("index")
            if index is not None:
                for kind in (
                    "cube_builds",
                    "candidates_cube",
                    "candidates_delta",
                    "candidates_direct",
                ):
                    index_events.add(index[kind], dataset=dataset, kind=kind)
                postings = index["postings"]
                for kind in ("hits", "misses", "builds", "evictions"):
                    index_events.add(
                        postings[kind], dataset=dataset, kind=f"postings_{kind}"
                    )
            for kind, value in snapshot.get("batch", {}).items():
                batch_events.add(value, dataset=dataset, kind=kind)
        families.append(caches)
        families.append(index_events)
        families.append(batch_events)

        breaker_state = MetricFamily(
            "subdex_breaker_open",
            "gauge",
            "Circuit breaker state by dataset (0 closed, 0.5 half-open, 1 open).",
        )
        state_value = {"closed": 0.0, "half_open": 0.5, "open": 1.0}
        for dataset, snapshot in self.pool.breaker_snapshots().items():
            breaker_state.add(
                state_value.get(str(snapshot["state"]), 1.0), dataset=dataset
            )
        families.append(breaker_state)

        if self.checkpointer is not None:
            checkpoints = MetricFamily(
                "subdex_checkpoints_total",
                "counter",
                "Checkpoint events by kind.",
            )
            for kind, value in self.checkpointer.counters().items():
                checkpoints.add(value, kind=kind)
            families.append(checkpoints)

        anytime_counters = self.anytime.counters()
        anytime_requests = MetricFamily(
            "subdex_anytime_requests_total",
            "counter",
            "Anytime recommendation requests by quality rung.",
        )
        for label, value in sorted(
            dict(anytime_counters["rung_requests"]).items()  # type: ignore[call-overload]
        ):
            anytime_requests.add(value, rung=label)
        families.append(anytime_requests)

        anytime_events = MetricFamily(
            "subdex_anytime_events_total",
            "counter",
            "Anytime degradation events by kind.",
        )
        for kind in ("partials", "snapshots", "forced_cuts", "cache_serves"):
            anytime_events.add(float(anytime_counters[kind]), kind=kind)  # type: ignore[arg-type]
        families.append(anytime_events)

        ewma = anytime_counters["latency_ewma_ms"]
        if ewma is not None:
            anytime_latency = MetricFamily(
                "subdex_anytime_latency_ewma_ms",
                "gauge",
                "EWMA of recommendation latency feeding the ladder controller.",
            )
            anytime_latency.add(float(ewma))  # type: ignore[arg-type]
            families.append(anytime_latency)

        refinements = MetricFamily(
            "subdex_anytime_refinements_total",
            "counter",
            "Background refinement-job events by kind.",
        )
        for kind, value in self.refinements.counters().items():
            refinements.add(value, kind=kind)
        families.append(refinements)

        tracing = MetricFamily(
            "subdex_traces", "gauge", "Tracer and trace sink state by kind."
        )
        tracing.add(self.tracer.traces_recorded, kind="recorded")
        tracing.add(self.tracer.sink_errors, kind="sink_errors")
        tracing.add(self.trace_buffer.total_recorded, kind="buffered")
        if self.trace_file_sink is not None:
            tracing.add(self.trace_file_sink.traces_written, kind="written")
            tracing.add(self.trace_file_sink.rotations, kind="file_rotations")
        if self.slow_log is not None:
            tracing.add(self.slow_log.slow_traces, kind="slow")
            tracing.add(self.slow_log.suppressed_total, kind="slow_suppressed")
        collect_counters = self.collector.counters()
        for kind in (
            "kept",
            "dropped",
            "stored",
            "stored_bytes",
            "pending_fragments",
            "fragments_received",
            "fragments_unmatched",
            "truncated",
            "partial",
        ):
            tracing.add(float(collect_counters[kind]), kind=f"collect_{kind}")
        families.append(tracing)
        return families


def build_server(
    factories: Mapping[str, Callable[[], SubDEx]],
    host: str = "127.0.0.1",
    port: int = 0,
    config: ServerConfig | None = None,
    fault_plan: FaultPlan | None = None,
) -> SubDExServer:
    """Create (but do not start) a server; ``port=0`` picks a free port.

    If the config names a checkpoint directory, previously checkpointed
    sessions are restored (replayed) before the server is returned, and
    the periodic flusher is started.
    """
    config = config or ServerConfig()
    pool = EnginePool(
        factories,
        group_capacity=config.group_cache_capacity,
        result_capacity=config.result_cache_capacity,
        breaker_failure_threshold=config.breaker_failure_threshold,
        breaker_reset_seconds=config.breaker_reset_seconds,
        fault_plan=fault_plan,
    )
    cluster: cluster_supervisor.WorkerPool | None = None
    if config.workers > 0:
        # cluster mode needs the datasets eagerly: they are exported into
        # shared memory once and every worker attaches zero-copy views
        datasets = {}
        for name, factory in factories.items():
            engine = factory()
            datasets[name] = (engine.database, engine.config)
        cluster = cluster_supervisor.WorkerPool(
            datasets,
            cluster_supervisor.ClusterConfig(
                workers=config.workers,
                shards=config.shards,
                heartbeat_interval_seconds=config.worker_heartbeat_seconds,
                rpc_timeout_seconds=config.worker_rpc_timeout_seconds,
                max_restarts=config.worker_max_restarts,
            ),
            max_sessions=config.max_sessions,
            session_ttl_seconds=config.session_ttl_seconds,
            group_cache_capacity=config.group_cache_capacity,
            result_cache_capacity=config.result_cache_capacity,
            checkpoint_dir=config.checkpoint_dir,
            checkpoint_interval_seconds=config.checkpoint_interval_seconds,
            tracing_enabled=config.tracing_enabled,
            slo_config=(
                load_slo_config(config.slo_config_path).to_json()
                if config.slo_enabled
                else None
            ),
            trace_max_spans=config.trace_max_spans,
        )
        cluster.start()
    server = SubDExServer(
        (host, port), pool, config, fault_plan=fault_plan, cluster=cluster
    )
    server.restore_sessions()
    server.start_background()
    return server


def serve(
    factories: Mapping[str, Callable[[], SubDEx]],
    host: str = "127.0.0.1",
    port: int = 8642,
    config: ServerConfig | None = None,
    out=None,
    install_signal_handlers: bool = True,
) -> int:
    """Run a server until interrupted (the ``python -m repro serve`` body).

    SIGTERM/SIGINT trigger a graceful shutdown: stop accepting, drain
    in-flight requests inside the configured drain budget, flush one final
    checkpoint per live session, exit 0.
    """
    import sys

    out = out or sys.stdout
    server = build_server(factories, host, port, config)
    _log.info(
        "serving datasets %s on %s", ", ".join(server.pool.names), server.url
    )
    print(f"SubDEx serving {', '.join(server.pool.names)} on {server.url}", file=out)
    if server.cluster is not None:
        print(
            f"cluster: {server.cluster.n_workers} workers, "
            f"{server.cluster.config.n_shards} shards "
            "(see docs/SCALING.md)",
            file=out,
        )
    print("endpoints: /health /metrics /sessions (see docs/API.md)", file=out)

    stop = threading.Event()
    if (
        install_signal_handlers
        and threading.current_thread() is threading.main_thread()
    ):

        def _request_stop(signum: int, frame: object) -> None:
            stop.set()

        signal.signal(signal.SIGTERM, _request_stop)
        signal.signal(signal.SIGINT, _request_stop)

    worker = threading.Thread(
        target=server.serve_forever, name="subdex-serve", daemon=True
    )
    worker.start()
    try:
        stop.wait()
    except KeyboardInterrupt:
        pass
    print("\ndraining in-flight requests", file=out)
    drained = server.graceful_shutdown()
    worker.join(5.0)
    print(
        "shutdown complete"
        + ("" if drained else " (drain deadline hit; some requests aborted)"),
        file=out,
    )
    return 0
