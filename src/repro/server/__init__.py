"""The SubDEx exploration service (the "serving layer").

The paper demonstrates SubDEx as an interactive UI over one analyst's
session; this package turns the engine into a shared, concurrent service:

* :mod:`repro.server.protocol` — the JSON wire protocol mirroring the
  paper's UI actions (create session, show rating maps, list top-o
  recommendations, apply an operation, edit the selection via the SQL
  dialect, fetch the exploration log, close);
* :mod:`repro.server.registry` — the session registry: per-session locks,
  TTL-based idle eviction, a bounded session cap;
* :mod:`repro.server.metrics` — request counters, latency percentiles and
  cache statistics behind ``GET /metrics``;
* :mod:`repro.server.app` — the stdlib :class:`ThreadingHTTPServer`
  application and the per-dataset engine pool (one shared, thread-safe
  :class:`~repro.core.caching.CachingEngine` per dataset, so group/result
  caches are amortised across users);
* :mod:`repro.server.client` — :class:`SubDExClient`, the small blocking
  client used by the tests and the throughput bench (idempotent GETs retry
  with full-jitter backoff; the budget-exhausted failure is the typed
  :class:`ServerUnavailable`).

Resilience (deadlines, admission control, circuit breakers, crash-safe
checkpoints, fault injection) lives in :mod:`repro.resilience` and is
wired through the application here — see the "Resilience" section of the
README and the error-semantics table in ``docs/API.md``.

Start a server from the command line with ``python -m repro serve``.
"""

from .app import (
    DatasetLoadError,
    EnginePool,
    ServerConfig,
    SubDExServer,
    build_server,
    serve,
)
from .client import (
    RetryPolicy,
    ServerError,
    ServerUnavailable,
    SubDExClient,
)
from .metrics import ServerMetrics
from .protocol import ProtocolError
from .registry import (
    ManagedSession,
    SessionGoneError,
    SessionLimitError,
    SessionRegistry,
    UnknownSessionError,
)

__all__ = [
    "DatasetLoadError",
    "EnginePool",
    "ManagedSession",
    "ProtocolError",
    "RetryPolicy",
    "ServerConfig",
    "ServerError",
    "ServerMetrics",
    "ServerUnavailable",
    "SessionGoneError",
    "SessionLimitError",
    "SessionRegistry",
    "SubDExClient",
    "SubDExServer",
    "UnknownSessionError",
    "build_server",
    "serve",
]
