"""Serving metrics: request counts, latency percentiles, cache hit rates.

Pure stdlib (the server must not pull numpy into its hot path): latencies
are kept in bounded per-endpoint reservoirs (the most recent ``maxlen``
observations) and percentiles are computed with linear interpolation on a
sorted copy at snapshot time.  All mutation is behind one lock —
``observe`` is a few appends and increments, far cheaper than any request
it measures.

An endpoint that has observed no latencies yet reports ``None`` (JSON
``null``) for its mean/percentiles — never ``NaN``, which ``json.dumps``
would serialise as the bare token ``NaN`` that strict JSON parsers
reject.

Every observation is mirrored into a :class:`~repro.obs.metrics.
MetricsRegistry` (labelled counters + bounded latency histograms), which
is what the Prometheus rendering of ``/metrics`` scrapes.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Mapping

from ..obs.metrics import MetricsRegistry

__all__ = ["ServerMetrics", "pure_percentile"]


def pure_percentile(samples: list[float], q: float) -> float:
    """The ``q``-th percentile (0–100), linear interpolation, no numpy."""
    if not samples:
        return float("nan")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


class _EndpointStats:
    """Counters and a bounded latency reservoir for one endpoint."""

    __slots__ = ("count", "errors", "latencies")

    def __init__(self, maxlen: int) -> None:
        self.count = 0
        self.errors = 0
        self.latencies: deque[float] = deque(maxlen=maxlen)

    def snapshot(self) -> dict[str, Any]:
        samples = list(self.latencies)
        if not samples:
            # None → JSON null; float("nan") would serialise as the bare
            # token NaN, which strict JSON parsers reject
            latency: dict[str, float | None] = {
                "mean": None, "p50": None, "p95": None, "p99": None,
            }
        else:
            latency = {
                "mean": sum(samples) / len(samples),
                "p50": pure_percentile(samples, 50.0),
                "p95": pure_percentile(samples, 95.0),
                "p99": pure_percentile(samples, 99.0),
            }
        return {
            "count": self.count,
            "errors": self.errors,
            "latency_seconds": latency,
        }


class ServerMetrics:
    """Thread-safe request/latency/session accounting for ``/metrics``."""

    def __init__(
        self,
        reservoir_size: int = 1024,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if reservoir_size < 1:
            raise ValueError(
                f"reservoir_size must be >= 1, got {reservoir_size}"
            )
        self._reservoir_size = reservoir_size
        self._lock = threading.Lock()
        self._started_wall = time.time()
        self._started_monotonic = time.monotonic()
        self._total = 0
        self._by_endpoint: dict[str, _EndpointStats] = {}
        self._by_status: dict[int, int] = {}
        self._events: dict[str, int] = {}
        #: The generic registry behind ``/metrics?format=prometheus``.
        self.registry = registry if registry is not None else MetricsRegistry()
        self._req_counter = self.registry.counter(
            "subdex_requests_total",
            "Completed HTTP requests by route and status.",
            labelnames=("endpoint", "status"),
        )
        self._latency_histogram = self.registry.histogram(
            "subdex_request_seconds",
            "Request wall-clock latency by route.",
            labelnames=("endpoint",),
        )
        self._event_counter = self.registry.counter(
            "subdex_events_total",
            "Resilience and lifecycle events (shed, degraded, deadline, ...).",
            labelnames=("event",),
        )

    def observe(self, endpoint: str, status: int, seconds: float) -> None:
        """Record one completed request.

        ``endpoint`` is the route label (``"POST /sessions"``), not the
        raw path, so per-session URLs aggregate into one series.
        """
        with self._lock:
            self._total += 1
            stats = self._by_endpoint.get(endpoint)
            if stats is None:
                stats = self._by_endpoint[endpoint] = _EndpointStats(
                    self._reservoir_size
                )
            stats.count += 1
            if status >= 400:
                stats.errors += 1
            stats.latencies.append(seconds)
            self._by_status[status] = self._by_status.get(status, 0) + 1
        self._req_counter.inc(endpoint=endpoint, status=str(status))
        self._latency_histogram.observe(seconds, endpoint=endpoint)

    @property
    def total_requests(self) -> int:
        with self._lock:
            return self._total

    def record_event(self, name: str, count: int = 1) -> None:
        """Count one resilience event (shed, degraded, deadline, ...)."""
        with self._lock:
            self._events[name] = self._events.get(name, 0) + count
        self._event_counter.inc(count, event=name)

    def event_count(self, name: str) -> int:
        with self._lock:
            return self._events.get(name, 0)

    def snapshot(
        self,
        sessions: Mapping[str, int] | None = None,
        caches: Mapping[str, Any] | None = None,
        resilience: Mapping[str, Any] | None = None,
    ) -> dict[str, Any]:
        """The full ``/metrics`` payload.

        ``sessions`` (registry counters), ``caches`` (per-dataset
        group/result cache stats) and ``resilience`` (gate, breaker and
        checkpoint state) are supplied by the application, which owns
        those objects.
        """
        with self._lock:
            payload: dict[str, Any] = {
                "started_at": self._started_wall,
                "uptime_seconds": time.monotonic() - self._started_monotonic,
                "requests": {
                    "total": self._total,
                    "by_endpoint": {
                        name: stats.snapshot()
                        for name, stats in sorted(self._by_endpoint.items())
                    },
                    "by_status": {
                        str(status): count
                        for status, count in sorted(self._by_status.items())
                    },
                },
                "events": dict(sorted(self._events.items())),
            }
        if sessions is not None:
            payload["sessions"] = dict(sessions)
        if caches is not None:
            payload["caches"] = dict(caches)
        if resilience is not None:
            payload["resilience"] = dict(resilience)
        return payload
