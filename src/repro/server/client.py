"""A small blocking client for the SubDEx service.

:class:`SubDExClient` speaks the JSON wire protocol over a persistent
``http.client`` connection (reconnecting transparently when the server
closes it).  Server-side failures surface as :class:`ServerError` carrying
the HTTP status and the machine-readable error code from the payload, so
callers can distinguish a bad request (400) from an evicted session (410)
or a full server (429).

.. code-block:: python

    with SubDExClient("http://127.0.0.1:8642") as client:
        session = client.create_session()
        for rm in session.maps()["maps"]:
            print(rm["description"])
        session.apply_recommendation(1)
        log = session.history()
        session.close()
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Mapping
from urllib.parse import urlencode, urlsplit

from ..exceptions import ReproError

__all__ = ["ServerError", "SubDExClient", "ClientSession"]


class ServerError(ReproError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(f"[{status} {code}] {message}")
        self.status = status
        self.code = code
        self.message = message


class SubDExClient:
    """Blocking HTTP client; one instance per thread (not thread-safe)."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        parts = urlsplit(base_url)
        if parts.scheme not in ("http", ""):
            raise ValueError(f"only http:// URLs are supported, got {base_url!r}")
        netloc = parts.netloc or parts.path  # tolerate "host:port" without scheme
        self._host, _, port = netloc.partition(":")
        self._port = int(port) if port else 80
        self._timeout = timeout
        self._connection: http.client.HTTPConnection | None = None

    # -- plumbing -----------------------------------------------------------
    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self._host, self._port, timeout=self._timeout
            )
        return self._connection

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "SubDExClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def request(
        self,
        method: str,
        path: str,
        payload: Mapping[str, Any] | None = None,
        query: Mapping[str, Any] | None = None,
    ) -> dict[str, Any]:
        """One round-trip; raises :class:`ServerError` on non-2xx."""
        if query:
            path = f"{path}?{urlencode(query)}"
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        for attempt in (1, 2):
            connection = self._connect()
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                raw = response.read()
                break
            except (
                http.client.HTTPException,
                ConnectionError,
                BrokenPipeError,
            ):
                # stale keep-alive connection: reconnect once
                self.close()
                if attempt == 2:
                    raise
        try:
            data = json.loads(raw) if raw else {}
        except json.JSONDecodeError as error:
            raise ServerError(
                response.status, "invalid_response", f"non-JSON body: {error}"
            ) from None
        if response.status >= 400:
            error_info = data.get("error", {}) if isinstance(data, dict) else {}
            raise ServerError(
                response.status,
                error_info.get("code", "unknown"),
                error_info.get("message", raw.decode("utf-8", "replace")),
            )
        return data

    # -- service endpoints ---------------------------------------------------
    def health(self) -> dict[str, Any]:
        return self.request("GET", "/health")

    def metrics(self) -> dict[str, Any]:
        return self.request("GET", "/metrics")

    def sessions(self) -> list[dict[str, Any]]:
        return self.request("GET", "/sessions")["sessions"]

    def create_session(
        self,
        dataset: str | None = None,
        criteria: Mapping[str, Mapping[str, Any]] | None = None,
    ) -> "ClientSession":
        payload: dict[str, Any] = {}
        if dataset is not None:
            payload["dataset"] = dataset
        if criteria is not None:
            payload["criteria"] = dict(criteria)
        data = self.request("POST", "/sessions", payload)
        return ClientSession(self, data)


class ClientSession:
    """A handle on one server-side exploration session."""

    def __init__(self, client: SubDExClient, created: dict[str, Any]) -> None:
        self._client = client
        self.id = created["session_id"]
        self.dataset = created["dataset"]
        #: The latest step payload (updated by every ``apply_*`` call).
        self.step = created["step"]

    def _apply(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        data = self._client.request(
            "POST", f"/sessions/{self.id}/apply", payload
        )
        self.step = data["step"]
        return self.step

    # -- the paper's UI actions ---------------------------------------------
    def summary(self) -> dict[str, Any]:
        return self._client.request("GET", f"/sessions/{self.id}")

    def maps(self) -> dict[str, Any]:
        """The current step's rating maps."""
        return self._client.request("GET", f"/sessions/{self.id}/maps")

    def recommendations(self, o: int | None = None) -> list[dict[str, Any]]:
        """The current step's numbered top-o recommendations."""
        query = {"o": o} if o is not None else None
        data = self._client.request(
            "GET", f"/sessions/{self.id}/recommendations", query=query
        )
        return data["recommendations"]

    def apply_recommendation(self, number: int) -> dict[str, Any]:
        """Apply recommendation ``number`` (1-based, as displayed)."""
        return self._apply({"recommendation": number})

    def apply_add(self, side: str, attribute: str, value: Any) -> dict[str, Any]:
        return self._apply(
            {"add": {"side": side, "attribute": attribute, "value": value}}
        )

    def apply_drop(self, side: str, attribute: str) -> dict[str, Any]:
        return self._apply({"drop": {"side": side, "attribute": attribute}})

    def apply_sql(self, side: str, where: str) -> dict[str, Any]:
        """Replace one side's selection with a SQL-dialect conjunction."""
        return self._apply({"sql": {"side": side, "where": where}})

    def apply_criteria(
        self, criteria: Mapping[str, Mapping[str, Any]]
    ) -> dict[str, Any]:
        return self._apply({"criteria": dict(criteria)})

    def history(self) -> dict[str, Any]:
        """The exploration log (same JSON schema as ``--log`` exports)."""
        return self._client.request("GET", f"/sessions/{self.id}/history")

    def close(self) -> dict[str, Any]:
        return self._client.request("DELETE", f"/sessions/{self.id}")
