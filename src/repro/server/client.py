"""A small blocking client for the SubDEx service.

:class:`SubDExClient` speaks the JSON wire protocol over a persistent
``http.client`` connection (reconnecting transparently when the server
closes it).  Server-side failures surface as :class:`ServerError` carrying
the HTTP status and the machine-readable error code from the payload, so
callers can distinguish a bad request (400) from an evicted session (410)
or a full server (429).

Idempotent GETs are retried with capped exponential backoff and **full
jitter** (``sleep ~ U(0, min(cap, base * 2**attempt))``) on transient
failures — connection errors, 429/503/504 and any error the server marks
``retryable`` — honouring ``Retry-After`` when the server sends one.
Mutating requests (POST/DELETE) are never replayed: applying a
recommendation twice is two steps.  When the retry budget runs out the
client raises the typed :class:`ServerUnavailable`.  The policy's RNG and
sleep are injectable so tests are deterministic and instant.

.. code-block:: python

    with SubDExClient("http://127.0.0.1:8642") as client:
        session = client.create_session()
        for rm in session.maps()["maps"]:
            print(rm["description"])
        session.apply_recommendation(1)
        log = session.history()
        session.close()
"""

from __future__ import annotations

import http.client
import json
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping
from urllib.parse import urlencode, urlsplit

from ..exceptions import ReproError
from ..perf.spanstats import tree_costs

__all__ = [
    "ClientSession",
    "RetryPolicy",
    "ServerError",
    "ServerUnavailable",
    "SubDExClient",
]

#: Statuses worth retrying on an idempotent request: overload shedding,
#: open circuit breakers (503), deadline overruns (504), session-cap
#: rejections (429).
_RETRYABLE_STATUSES = frozenset({429, 503, 504})


class ServerError(ReproError):
    """A non-2xx response from the service.

    ``trace_id`` is the server's ``X-Trace-Id`` for the failed request,
    when one was sent — quote it when reporting a problem, it pins the
    exact trace in the server's ``/debug/traces`` ring and trace file.
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        retryable: bool = False,
        retry_after: float | None = None,
        trace_id: str | None = None,
    ) -> None:
        suffix = f" [trace {trace_id}]" if trace_id else ""
        super().__init__(f"[{status} {code}] {message}{suffix}")
        self.status = status
        self.code = code
        self.message = message
        #: The server's own judgement (the ``retryable`` payload field).
        self.retryable = retryable or status in _RETRYABLE_STATUSES
        self.retry_after = retry_after
        self.trace_id = trace_id


class ServerUnavailable(ServerError):
    """The retry budget ran out without a successful response.

    ``last_error`` is the final failure — a :class:`ServerError` for an
    HTTP-level rejection, an :class:`OSError` for a dead connection.
    """

    def __init__(self, attempts: int, last_error: BaseException) -> None:
        status = last_error.status if isinstance(last_error, ServerError) else 0
        code = last_error.code if isinstance(last_error, ServerError) else "unreachable"
        trace_id = (
            last_error.trace_id if isinstance(last_error, ServerError) else None
        )
        super().__init__(
            status,
            code,
            f"server unavailable after {attempts} attempts "
            f"(last error: {last_error})",
            trace_id=trace_id,
        )
        self.attempts = attempts
        self.last_error = last_error


@dataclass
class RetryPolicy:
    """Capped exponential backoff with full jitter for idempotent GETs.

    Deterministic when given a seeded ``rng`` and a fake ``sleep``;
    ``max_attempts=1`` disables retries entirely.
    """

    max_attempts: int = 4
    base_seconds: float = 0.05
    cap_seconds: float = 2.0
    rng: random.Random = field(default_factory=random.Random)
    sleep: Callable[[float], None] = time.sleep

    def backoff(self, attempt: int, retry_after: float | None = None) -> float:
        """Seconds to wait after failed attempt ``attempt`` (0-based).

        A server-provided ``Retry-After`` is a floor, not a suggestion:
        retrying sooner is guaranteed to fail again.
        """
        jittered = self.rng.uniform(
            0.0, min(self.cap_seconds, self.base_seconds * (2.0 ** attempt))
        )
        if retry_after is not None:
            return max(retry_after, jittered)
        return jittered


class SubDExClient:
    """Blocking HTTP client; one instance per thread (not thread-safe)."""

    def __init__(
        self,
        base_url: str,
        timeout: float = 60.0,
        retry: RetryPolicy | None = None,
        trace_id: str | None = None,
    ) -> None:
        parts = urlsplit(base_url)
        if parts.scheme not in ("http", ""):
            raise ValueError(f"only http:// URLs are supported, got {base_url!r}")
        netloc = parts.netloc or parts.path  # tolerate "host:port" without scheme
        self._host, _, port = netloc.partition(":")
        self._port = int(port) if port else 80
        self._timeout = timeout
        self._retry = retry or RetryPolicy()
        self._connection: http.client.HTTPConnection | None = None
        #: Sent as ``X-Trace-Id`` on every request, so the server threads
        #: this client's requests onto one caller-chosen trace id family.
        self.trace_id = trace_id
        #: The server-assigned trace id of the most recent response.
        self.last_trace_id: str | None = None
        #: Server-side handling time of the most recent response (the
        #: ``X-Server-Ms`` header) — subtracting it from the client-side
        #: wall clock isolates network + queueing from actual work.
        self.last_server_ms: float | None = None

    # -- plumbing -----------------------------------------------------------
    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self._host, self._port, timeout=self._timeout
            )
        return self._connection

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "SubDExClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _round_trip(
        self,
        method: str,
        path: str,
        body: bytes | None,
        headers: Mapping[str, str],
    ) -> dict[str, Any]:
        """One request/response cycle; raises :class:`ServerError` on non-2xx."""
        for attempt in (1, 2):
            connection = self._connect()
            try:
                connection.request(method, path, body=body, headers=dict(headers))
                response = connection.getresponse()
                raw = response.read()
                break
            except (
                http.client.HTTPException,
                ConnectionError,
                BrokenPipeError,
            ):
                # stale keep-alive connection: reconnect once
                self.close()
                if attempt == 2:
                    raise
        trace_id = response.getheader("X-Trace-Id")
        if trace_id is not None:
            self.last_trace_id = trace_id
        server_ms: float | None = None
        raw_server_ms = response.getheader("X-Server-Ms")
        if raw_server_ms is not None:
            try:
                server_ms = float(raw_server_ms)
            except ValueError:
                server_ms = None
        self.last_server_ms = server_ms
        content_type = response.getheader("Content-Type") or ""
        if response.status < 400 and "application/json" not in content_type:
            # text endpoints (collapsed profiles, Prometheus expositions)
            data: dict[str, Any] = {"text": raw.decode("utf-8", "replace")}
        else:
            try:
                data = json.loads(raw) if raw else {}
            except json.JSONDecodeError as error:
                raise ServerError(
                    response.status,
                    "invalid_response",
                    f"non-JSON body: {error}",
                    trace_id=trace_id,
                ) from None
        if (
            response.status < 400
            and server_ms is not None
            and isinstance(data, dict)
        ):
            data.setdefault("server_ms", server_ms)
        if response.status >= 400:
            error_info = data.get("error", {}) if isinstance(data, dict) else {}
            retry_after = error_info.get("retry_after")
            if retry_after is None:
                header = response.getheader("Retry-After")
                if header is not None:
                    try:
                        retry_after = float(header)
                    except ValueError:
                        retry_after = None
            raise ServerError(
                response.status,
                error_info.get("code", "unknown"),
                error_info.get("message", raw.decode("utf-8", "replace")),
                retryable=bool(error_info.get("retryable", False)),
                retry_after=retry_after,
                trace_id=trace_id,
            )
        return data

    def request(
        self,
        method: str,
        path: str,
        payload: Mapping[str, Any] | None = None,
        query: Mapping[str, Any] | None = None,
        deadline_ms: int | None = None,
    ) -> dict[str, Any]:
        """One logical request; idempotent GETs retry per the policy."""
        if query:
            path = f"{path}?{urlencode(query)}"
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        headers: dict[str, str] = {}
        if body:
            headers["Content-Type"] = "application/json"
        if deadline_ms is not None:
            headers["X-Deadline-Ms"] = str(deadline_ms)
        if self.trace_id is not None:
            headers["X-Trace-Id"] = self.trace_id
        if method != "GET" or self._retry.max_attempts <= 1:
            return self._round_trip(method, path, body, headers)

        attempts = self._retry.max_attempts
        last_error: BaseException | None = None
        for attempt in range(attempts):
            try:
                return self._round_trip(method, path, body, headers)
            except ServerError as error:
                if not error.retryable:
                    raise
                last_error = error
                retry_after = error.retry_after
            except (OSError, http.client.HTTPException) as error:
                # connection refused / reset / aborted mid-response: the
                # server (or its worker) may be restarting.  OSError covers
                # ConnectionResetError and RemoteDisconnected (a subclass);
                # HTTPException catches the non-OSError failure shapes a
                # dying peer produces — BadStatusLine on a garbage status
                # line, IncompleteRead on a truncated body — which
                # _round_trip re-raises after its single reconnect.
                self.close()
                last_error = error
                retry_after = None
            if attempt + 1 < attempts:
                self._retry.sleep(self._retry.backoff(attempt, retry_after))
        raise ServerUnavailable(attempts, last_error)  # type: ignore[arg-type]

    # -- service endpoints ---------------------------------------------------
    def health(self) -> dict[str, Any]:
        return self.request("GET", "/health")

    def metrics(self) -> dict[str, Any]:
        return self.request("GET", "/metrics")

    def slo(self) -> dict[str, Any]:
        """The SLO scorecard (attainment, budgets, burn rates per class)."""
        return self.request("GET", "/slo")

    def sessions(self) -> list[dict[str, Any]]:
        return self.request("GET", "/sessions")["sessions"]

    # -- cluster -------------------------------------------------------------
    def workers(self) -> dict[str, Any]:
        """Worker states of a sharded server (``enabled: false`` otherwise)."""
        return self.request("GET", "/cluster/workers")

    def cluster_maps(
        self,
        dataset: str | None = None,
        criteria: Mapping[str, Any] | None = None,
        k: int | None = None,
    ) -> dict[str, Any]:
        """One stateless scatter/gather phase scan (``POST /cluster/maps``)."""
        payload: dict[str, Any] = {}
        if dataset is not None:
            payload["dataset"] = dataset
        if criteria is not None:
            payload["criteria"] = dict(criteria)
        if k is not None:
            payload["k"] = k
        return self.request("POST", "/cluster/maps", payload)

    # -- performance introspection -------------------------------------------
    def explain(
        self,
        method: str,
        path: str,
        payload: Mapping[str, Any] | None = None,
        query: Mapping[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Re-issue a request with ``?debug=1``; return its cost breakdown.

        The returned dict carries the raw span ``tree`` (the server's
        ``debug`` payload), a flattened per-operation ``costs`` table
        (inclusive/exclusive milliseconds, heaviest first), the
        ``server_ms`` handling time and the ``trace_id`` to quote when
        digging further in ``/debug/traces``.
        """
        merged = dict(query or {})
        merged["debug"] = 1
        data = self.request(method, path, payload, query=merged)
        debug = data.get("debug") or {}
        tree = debug.get("spans") or {}
        return {
            "trace_id": debug.get("trace_id") or self.last_trace_id,
            "server_ms": data.get("server_ms"),
            "tree": tree,
            "costs": tree_costs(tree),
        }

    def profile(
        self,
        seconds: float = 1.0,
        fmt: str = "collapsed",
        interval_ms: float | None = None,
    ) -> str | dict[str, Any]:
        """Sample the server for ``seconds``; collapsed text or JSON dict."""
        query: dict[str, Any] = {"seconds": seconds, "format": fmt}
        if interval_ms is not None:
            query["interval_ms"] = interval_ms
        data = self.request("GET", "/debug/profile", query=query)
        return data["text"] if fmt == "collapsed" else data

    def spans_summary(self, limit: int | None = None) -> dict[str, Any]:
        """The server's aggregate per-operation span cost table."""
        query = {"limit": limit} if limit is not None else None
        return self.request("GET", "/debug/spans/summary", query=query)

    def traces(
        self,
        op: str | None = None,
        dataset: str | None = None,
        min_ms: float | None = None,
        status: str | None = None,
        limit: int | None = None,
    ) -> dict[str, Any]:
        """Search the server's collected (fleet-stitched) traces.

        Filters mirror ``GET /debug/traces``: ``op`` substring-matches
        the route label, ``dataset`` matches any span's dataset
        attribute, ``status`` is ``"ok"``/``"error"`` or an HTTP status.
        """
        query = {
            name: value
            for name, value in (
                ("op", op),
                ("dataset", dataset),
                ("min_ms", min_ms),
                ("status", status),
                ("limit", limit),
            )
            if value is not None
        }
        return self.request("GET", "/debug/traces", query=query or None)

    def trace(self, trace_id: str) -> dict[str, Any]:
        """One fleet-assembled trace (front + worker spans) by id.

        The id to pass is the ``[trace <id>]`` from a
        :class:`ServerError` message or the ``X-Trace-Id`` response
        header — in cluster deployments the returned tree includes the
        worker-side spans stitched under the front's ``worker.rpc``.
        """
        return self.request("GET", f"/debug/traces/{trace_id}")

    def create_session(
        self,
        dataset: str | None = None,
        criteria: Mapping[str, Mapping[str, Any]] | None = None,
    ) -> "ClientSession":
        payload: dict[str, Any] = {}
        if dataset is not None:
            payload["dataset"] = dataset
        if criteria is not None:
            payload["criteria"] = dict(criteria)
        data = self.request("POST", "/sessions", payload)
        return ClientSession(self, data)


class ClientSession:
    """A handle on one server-side exploration session."""

    def __init__(self, client: SubDExClient, created: dict[str, Any]) -> None:
        self._client = client
        self.id = created["session_id"]
        self.dataset = created["dataset"]
        #: The latest step payload (updated by every ``apply_*`` call).
        self.step = created["step"]

    def _apply(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        data = self._client.request(
            "POST", f"/sessions/{self.id}/apply", payload
        )
        self.step = data["step"]
        return self.step

    # -- the paper's UI actions ---------------------------------------------
    def summary(self) -> dict[str, Any]:
        return self._client.request("GET", f"/sessions/{self.id}")

    def maps(self) -> dict[str, Any]:
        """The current step's rating maps."""
        return self._client.request("GET", f"/sessions/{self.id}/maps")

    def recommendations(self, o: int | None = None) -> list[dict[str, Any]]:
        """The current step's numbered top-o recommendations."""
        query = {"o": o} if o is not None else None
        data = self._client.request(
            "GET", f"/sessions/{self.id}/recommendations", query=query
        )
        return data["recommendations"]

    def recommend(
        self,
        o: int | None = None,
        budget_ms: int | None = None,
        deadline_ms: int | None = None,
    ) -> dict[str, Any]:
        """Recommendations with the full anytime envelope.

        ``budget_ms`` is the *soft* limit: the server answers its
        best-so-far inside the budget and the payload's ``quality``
        describes how complete the answer is; a partial answer carries a
        ``refinement`` token to poll.  ``deadline_ms`` stays the hard
        limit (504 on overrun) — when both are given, the smaller wins.
        """
        query: dict[str, Any] = {}
        if o is not None:
            query["o"] = o
        if budget_ms is not None:
            query["budget_ms"] = budget_ms
        return self._client.request(
            "GET",
            f"/sessions/{self.id}/recommendations",
            query=query or None,
            deadline_ms=deadline_ms,
        )

    def refine(self, token: str) -> dict[str, Any]:
        """Poll one refinement token (``refinement_lost`` → 410)."""
        return self._client.request(
            "GET", f"/sessions/{self.id}/recommendations/refine/{token}"
        )

    def wait_for_refinement(
        self,
        token: str,
        timeout: float = 30.0,
        interval: float = 0.05,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> dict[str, Any]:
        """Poll ``token`` until its job finishes (done *or* failed).

        Raises :class:`TimeoutError` when the job is still running at the
        deadline; a lost token surfaces immediately as the server's typed
        410 (:class:`ServerError` with code ``refinement_lost``).
        """
        give_up = clock() + timeout
        while True:
            data = self.refine(token)
            if data.get("status") in ("done", "failed"):
                return data
            if clock() >= give_up:
                raise TimeoutError(
                    f"refinement {token!r} still {data.get('status')!r} "
                    f"after {timeout:.1f}s"
                )
            sleep(interval)

    def apply_recommendation(self, number: int) -> dict[str, Any]:
        """Apply recommendation ``number`` (1-based, as displayed)."""
        return self._apply({"recommendation": number})

    def apply_add(self, side: str, attribute: str, value: Any) -> dict[str, Any]:
        return self._apply(
            {"add": {"side": side, "attribute": attribute, "value": value}}
        )

    def apply_drop(self, side: str, attribute: str) -> dict[str, Any]:
        return self._apply({"drop": {"side": side, "attribute": attribute}})

    def apply_sql(self, side: str, where: str) -> dict[str, Any]:
        """Replace one side's selection with a SQL-dialect conjunction."""
        return self._apply({"sql": {"side": side, "where": where}})

    def apply_criteria(
        self, criteria: Mapping[str, Mapping[str, Any]]
    ) -> dict[str, Any]:
        return self._apply({"criteria": dict(criteria)})

    def history(self) -> dict[str, Any]:
        """The exploration log (same JSON schema as ``--log`` exports)."""
        return self._client.request("GET", f"/sessions/{self.id}/history")

    def close(self) -> dict[str, Any]:
        return self._client.request("DELETE", f"/sessions/{self.id}")
