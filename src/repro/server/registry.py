"""The session registry: who is exploring what, and for how long.

Each connected user owns one :class:`~repro.core.session.ExplorationSession`
(stateful: current criteria, seen-maps display history, step log).  The
registry wraps every session in a :class:`ManagedSession` carrying a
per-session lock — requests for the *same* session serialise (a session's
seen-state mutates on every step), while requests for *different* sessions
proceed concurrently on the server's worker threads.

Capacity is bounded two ways:

* a hard **session cap** — creating a session beyond ``max_sessions``
  raises :class:`SessionLimitError` (HTTP 429);
* **TTL idle eviction** — sessions untouched for ``ttl_seconds`` are
  evicted opportunistically on registry traffic; their ids are remembered
  in a bounded tombstone map so late requests get a truthful
  :class:`SessionGoneError` (HTTP 410) rather than a generic 404.

The clock is injectable so eviction is deterministic in tests.
"""

from __future__ import annotations

import logging
import threading
import time
import uuid
from collections import OrderedDict
from contextlib import contextmanager
from typing import Callable, Iterator

from ..core.session import ExplorationSession, StepRecord
from ..exceptions import ReproError
from ..resilience.faults import FaultPlan

__all__ = [
    "ManagedSession",
    "SessionGoneError",
    "SessionLimitError",
    "SessionRegistry",
    "UnknownSessionError",
]

_log = logging.getLogger("repro.server.registry")

_TOMBSTONE_CAPACITY = 1024


class UnknownSessionError(ReproError):
    """The session id was never issued by this server (HTTP 404)."""

    def __init__(self, session_id: str) -> None:
        super().__init__(f"unknown session {session_id!r}")
        self.session_id = session_id


class SessionGoneError(ReproError):
    """The session existed but was closed or idle-evicted (HTTP 410)."""

    def __init__(self, session_id: str, reason: str) -> None:
        super().__init__(f"session {session_id!r} is gone ({reason})")
        self.session_id = session_id
        self.reason = reason


class SessionLimitError(ReproError):
    """The server is at its live-session cap (HTTP 429)."""

    def __init__(self, limit: int) -> None:
        super().__init__(
            f"session limit reached ({limit} live sessions); retry later "
            "or close an existing session"
        )
        self.limit = limit


class ManagedSession:
    """One registered exploration session plus its serving bookkeeping."""

    def __init__(
        self,
        session_id: str,
        dataset: str,
        session: ExplorationSession,
        created_monotonic: float,
        created_wall: float | None = None,
    ) -> None:
        self.session_id = session_id
        self.dataset = dataset
        self.session = session
        self.lock = threading.Lock()
        # restored sessions keep their original creation time
        self.created_wall = time.time() if created_wall is None else created_wall
        self.created_monotonic = created_monotonic
        self.last_used = created_monotonic
        #: The latest step record — the numbered recommendation list an
        #: ``/apply`` request refers to is *this* record's.
        self.latest: StepRecord | None = None

    def summary(self, now: float) -> dict:
        """A JSON-friendly view for ``GET /sessions``."""
        return {
            "session_id": self.session_id,
            "dataset": self.dataset,
            # the session is briefly None while its factory runs (the id is
            # private to the creating request, but /sessions may list it)
            "n_steps": self.session.n_steps if self.session is not None else 0,
            "created_at": self.created_wall,
            "idle_seconds": max(0.0, now - self.last_used),
        }


class SessionRegistry:
    """Thread-safe ownership of every live :class:`ManagedSession`."""

    def __init__(
        self,
        max_sessions: int = 64,
        ttl_seconds: float = 1800.0,
        clock: Callable[[], float] = time.monotonic,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {max_sessions}")
        if ttl_seconds <= 0:
            raise ValueError(f"ttl_seconds must be > 0, got {ttl_seconds}")
        self._max_sessions = max_sessions
        self._ttl_seconds = ttl_seconds
        self._clock = clock
        self._fault_plan = fault_plan
        self._lock = threading.Lock()
        self._sessions: dict[str, ManagedSession] = {}
        self._tombstones: OrderedDict[str, str] = OrderedDict()  # id → reason
        self.created = 0
        self.closed = 0
        self.evicted = 0
        self.rejected = 0

    # -- capacity -----------------------------------------------------------
    @property
    def max_sessions(self) -> int:
        return self._max_sessions

    @property
    def ttl_seconds(self) -> float:
        return self._ttl_seconds

    @property
    def live_count(self) -> int:
        with self._lock:
            return len(self._sessions)

    # -- lifecycle ----------------------------------------------------------
    def create(
        self, dataset: str, factory: Callable[[], ExplorationSession]
    ) -> ManagedSession:
        """Register a new session, enforcing the cap.

        The (possibly expensive) session construction runs outside the
        registry lock; the slot is claimed first so a create stampede
        cannot overshoot the cap.
        """
        self.evict_idle()
        session_id = uuid.uuid4().hex
        with self._lock:
            if len(self._sessions) >= self._max_sessions:
                self.rejected += 1
                raise SessionLimitError(self._max_sessions)
            placeholder = ManagedSession(
                session_id, dataset, None, self._clock()  # type: ignore[arg-type]
            )
            self._sessions[session_id] = placeholder
        try:
            placeholder.session = factory()
        except BaseException:
            with self._lock:
                self._sessions.pop(session_id, None)
            raise
        with self._lock:
            self.created += 1
        _log.info("created session %s (dataset %r)", session_id, dataset)
        return placeholder

    @contextmanager
    def acquire(self, session_id: str) -> Iterator[ManagedSession]:
        """Yield the session with its per-session lock held.

        Raises :class:`UnknownSessionError` for ids this server never
        issued and :class:`SessionGoneError` for closed/evicted ones.
        """
        self.evict_idle()
        with self._lock:
            managed = self._sessions.get(session_id)
            if managed is None:
                reason = self._tombstones.get(session_id)
                if reason is not None:
                    raise SessionGoneError(session_id, reason)
                raise UnknownSessionError(session_id)
        if self._fault_plan is not None:
            # chaos site "registry.acquire": a slow or failing lock handoff
            self._fault_plan.check("registry.acquire")
        with managed.lock:
            with self._lock:
                # re-check: the session may have been closed while we
                # waited on its lock
                if session_id not in self._sessions:
                    reason = self._tombstones.get(session_id, "closed")
                    raise SessionGoneError(session_id, reason)
            try:
                yield managed
            finally:
                managed.last_used = self._clock()

    def adopt(
        self,
        session_id: str,
        dataset: str,
        session: ExplorationSession,
        created_wall: float | None = None,
    ) -> ManagedSession:
        """Register a restored session under its original id.

        Used by checkpoint restore on startup: the id was issued by a
        previous incarnation of this server, so clients holding it must
        keep working.  Beyond-cap restores raise
        :class:`SessionLimitError` (oldest checkpoints win).
        """
        managed = ManagedSession(
            session_id, dataset, session, self._clock(), created_wall
        )
        with self._lock:
            if session_id in self._sessions:
                raise ReproError(f"session {session_id!r} already live")
            if len(self._sessions) >= self._max_sessions:
                self.rejected += 1
                raise SessionLimitError(self._max_sessions)
            self._sessions[session_id] = managed
            self._tombstones.pop(session_id, None)
            self.created += 1
        return managed

    def close(self, session_id: str) -> ManagedSession:
        """Remove a session and tombstone its id as ``closed``."""
        with self._lock:
            managed = self._sessions.pop(session_id, None)
            if managed is None:
                reason = self._tombstones.get(session_id)
                if reason is not None:
                    raise SessionGoneError(session_id, reason)
                raise UnknownSessionError(session_id)
            self._remember(session_id, "closed")
            self.closed += 1
        _log.info("closed session %s", session_id)
        return managed

    def evict_idle(self, now: float | None = None) -> list[str]:
        """Evict every session idle past the TTL; returns the evicted ids.

        Sessions whose lock is held (a request is mid-flight) are skipped —
        they are not idle, whatever their timestamp says.
        """
        now = self._clock() if now is None else now
        evicted: list[str] = []
        with self._lock:
            for session_id, managed in list(self._sessions.items()):
                if now - managed.last_used < self._ttl_seconds:
                    continue
                if not managed.lock.acquire(blocking=False):
                    continue
                try:
                    del self._sessions[session_id]
                    self._remember(session_id, "evicted")
                    self.evicted += 1
                    evicted.append(session_id)
                finally:
                    managed.lock.release()
        if evicted:
            _log.info(
                "idle-evicted %d session(s): %s", len(evicted), ", ".join(evicted)
            )
        return evicted

    def _remember(self, session_id: str, reason: str) -> None:
        # caller holds self._lock
        self._tombstones[session_id] = reason
        while len(self._tombstones) > _TOMBSTONE_CAPACITY:
            self._tombstones.popitem(last=False)

    # -- introspection -------------------------------------------------------
    def live_sessions(self) -> list[ManagedSession]:
        """A point-in-time list of live sessions (for the checkpointer)."""
        with self._lock:
            return list(self._sessions.values())

    def summaries(self) -> list[dict]:
        now = self._clock()
        with self._lock:
            return [m.summary(now) for m in self._sessions.values()]

    def counters(self) -> dict[str, int]:
        with self._lock:
            return {
                "live": len(self._sessions),
                "capacity": self._max_sessions,
                "created": self.created,
                "closed": self.closed,
                "evicted": self.evicted,
                "rejected": self.rejected,
            }
