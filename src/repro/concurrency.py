"""Small shared concurrency primitives.

:class:`KeyedSingleFlight` gives per-key mutual exclusion for "compute on
miss" caches: when several threads miss the same key simultaneously, one
computes while the rest wait and then read the freshly cached value, so an
expensive computation runs once per key instead of once per thread.  Used
by :class:`~repro.core.caching.CachingEngine` and the posting-list /
candidate-cube builders in :mod:`repro.index`.

Lock entries are reference-counted and removed as soon as the last holder
releases, so the registry never grows with the key space.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Hashable, Iterator

__all__ = ["KeyedSingleFlight"]


class KeyedSingleFlight:
    """Per-key locks handed out on demand and reclaimed when idle."""

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        #: key → [lock, holders+waiters]
        self._entries: dict[Hashable, list] = {}

    def __len__(self) -> int:
        with self._mutex:
            return len(self._entries)

    @contextmanager
    def lock(self, key: Hashable) -> Iterator[None]:
        """Hold the key's lock for the duration of the ``with`` block.

        Callers are expected to re-check their cache after acquiring: a
        waiter that blocked here usually finds the value the first holder
        just computed.
        """
        with self._mutex:
            entry = self._entries.get(key)
            if entry is None:
                entry = [threading.Lock(), 0]
                self._entries[key] = entry
            entry[1] += 1
        entry[0].acquire()
        try:
            yield
        finally:
            entry[0].release()
            with self._mutex:
                entry[1] -= 1
                if entry[1] == 0:
                    self._entries.pop(key, None)
