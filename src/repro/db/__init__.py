"""In-memory columnar database engine (substrate S1).

This subpackage is self-contained: typed columns, schemas, predicate
algebra, a tiny SQL WHERE dialect, a shared multi-aggregate group-by engine
with phased scans, active-domain catalogs, and CSV persistence.
"""

from .catalog import AttributeDomain, Catalog
from .column import (
    CategoricalColumn,
    Column,
    MultiValuedColumn,
    NumericColumn,
    column_from_values,
)
from .csvio import load_table, save_table
from .groupby import (
    Grouping,
    HistogramAccumulator,
    SharedGroupByScan,
    build_grouping,
    group_histograms,
    phase_slices,
)
from .predicates import (
    And,
    Cmp,
    Eq,
    In,
    Not,
    Or,
    Predicate,
    TruePredicate,
    conjunction,
    to_sql,
)
from .schema import AttributeSpec, TableSchema
from .sql import parse_select, parse_where
from .table import Table
from .types import ColumnType, infer_column_type

__all__ = [
    "AttributeDomain",
    "AttributeSpec",
    "And",
    "Catalog",
    "CategoricalColumn",
    "Cmp",
    "Column",
    "ColumnType",
    "Eq",
    "Grouping",
    "HistogramAccumulator",
    "In",
    "MultiValuedColumn",
    "Not",
    "NumericColumn",
    "Or",
    "Predicate",
    "SharedGroupByScan",
    "Table",
    "TableSchema",
    "TruePredicate",
    "build_grouping",
    "column_from_values",
    "conjunction",
    "group_histograms",
    "infer_column_type",
    "load_table",
    "parse_select",
    "parse_where",
    "phase_slices",
    "save_table",
    "to_sql",
]
