"""CSV persistence for tables.

The format is plain RFC-4180 CSV.  Multi-valued cells are serialised as
``"a|b|c"``; empty cells are missing values.  A sidecar convention is not
needed: ``load_table`` re-infers types, and callers that need exact types
pass an explicit schema.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any

from .schema import TableSchema
from .table import Table
from .types import ColumnType

__all__ = ["save_table", "load_table"]

_MULTI_SEP = "|"


def _serialise(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, (set, frozenset)):
        return _MULTI_SEP.join(sorted(str(v) for v in value))
    return str(value)


def save_table(table: Table, path: str | Path) -> None:
    """Write ``table`` to ``path`` as CSV (UTF-8, header row)."""
    path = Path(path)
    names = table.attribute_names
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        for row in table.rows():
            writer.writerow([_serialise(row[name]) for name in names])


def _parse_cell(text: str, ctype: ColumnType | None) -> Any:
    if text == "":
        return None
    if ctype is ColumnType.MULTI_VALUED or (
        ctype is None and _MULTI_SEP in text
    ):
        return frozenset(text.split(_MULTI_SEP))
    if ctype is ColumnType.CATEGORICAL:
        return text
    # numeric or inferred
    try:
        value = float(text)
    except ValueError:
        return text
    if ctype is ColumnType.NUMERIC:
        return value
    # inference: keep numerics numeric, but preserve leading zeros as text
    if text.lstrip("-").startswith("0") and text not in ("0", "-0") and "." not in text:
        return text
    return value


def load_table(path: str | Path, schema: TableSchema | None = None) -> Table:
    """Load a CSV written by :func:`save_table`.

    With a ``schema``, cells are parsed to the declared types; otherwise
    types are inferred from the parsed values.
    """
    path = Path(path)
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            return Table.from_columns({}, schema)
        raw_rows = list(reader)
    ctypes: dict[str, ColumnType | None]
    if schema is not None:
        ctypes = {spec.name: spec.ctype for spec in schema.attributes}
    else:
        ctypes = {name: None for name in header}
    data: dict[str, list[Any]] = {name: [] for name in header}
    for raw in raw_rows:
        for name, cell in zip(header, raw):
            data[name].append(_parse_cell(cell, ctypes.get(name)))
    return Table.from_columns(data, schema)
