"""Column type definitions for the columnar engine.

The engine supports three logical column types, matching what a subjective
database needs (paper §3.1):

* ``CATEGORICAL`` — dictionary-encoded strings (e.g. gender, city).
* ``NUMERIC`` — integers or floats (e.g. rating scores, zip codes used as
  numbers).
* ``MULTI_VALUED`` — sets of strings per row (e.g. a restaurant's cuisines).
"""

from __future__ import annotations

import enum
from typing import Any


class ColumnType(enum.Enum):
    """Logical type of a table column."""

    CATEGORICAL = "categorical"
    NUMERIC = "numeric"
    MULTI_VALUED = "multi_valued"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def infer_column_type(values: list[Any]) -> ColumnType:
    """Infer the :class:`ColumnType` of raw Python ``values``.

    Rules, applied to the non-``None`` entries:

    * any ``set``/``frozenset``/``list``/``tuple`` value → ``MULTI_VALUED``;
    * all ``int``/``float`` (bools excluded) → ``NUMERIC``;
    * otherwise → ``CATEGORICAL``.

    An all-``None`` or empty column defaults to ``CATEGORICAL``.
    """
    saw_numeric = False
    saw_other = False
    for value in values:
        if value is None:
            continue
        if isinstance(value, (set, frozenset, list, tuple)):
            return ColumnType.MULTI_VALUED
        if isinstance(value, bool):
            saw_other = True
        elif isinstance(value, (int, float)):
            saw_numeric = True
        else:
            saw_other = True
    if saw_numeric and not saw_other:
        return ColumnType.NUMERIC
    return ColumnType.CATEGORICAL
