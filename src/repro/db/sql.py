"""A tiny SQL ``WHERE``-clause dialect.

SubDEx's UI lets advanced users type SQL predicates (paper §4, "System UI").
This module parses that dialect into the predicate algebra of
:mod:`repro.db.predicates`:

.. code-block:: sql

    age_group = 'young' AND (city = 'NYC' OR city = 'Brooklyn')
    occupation IN ('student', 'programmer') AND NOT gender = 'M'
    year >= 1990 AND rating != 3

Also accepted is a full ``SELECT * FROM t WHERE ...`` statement, in which
case only the WHERE clause is parsed.  Identifiers are attribute names;
string literals use single quotes (doubled to escape); numbers are int or
float literals.
"""

from __future__ import annotations

import re
from typing import Any

from ..exceptions import SQLParseError
from .predicates import And, Cmp, Eq, In, Not, Or, Predicate, TruePredicate

__all__ = ["parse_where", "parse_select"]

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<string>'(?:[^']|'')*')
      | (?P<number>-?\d+(?:\.\d+)?)
      | (?P<op><=|>=|!=|<>|=|<|>)
      | (?P<lparen>\()
      | (?P<rparen>\))
      | (?P<comma>,)
      | (?P<word>[A-Za-z_][A-Za-z_0-9.]*)
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {"AND", "OR", "NOT", "IN", "TRUE", "SELECT", "FROM", "WHERE"}


class _Token:
    __slots__ = ("kind", "value")

    def __init__(self, kind: str, value: Any) -> None:
        self.kind = kind
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_Token({self.kind}, {self.value!r})"


def _tokenise(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise SQLParseError(text, f"unexpected character at {remainder[:10]!r}")
        pos = match.end()
        if match.lastgroup == "string":
            literal = match.group("string")[1:-1].replace("''", "'")
            tokens.append(_Token("string", literal))
        elif match.lastgroup == "number":
            raw = match.group("number")
            tokens.append(_Token("number", float(raw) if "." in raw else int(raw)))
        elif match.lastgroup == "word":
            word = match.group("word")
            if word.upper() in _KEYWORDS:
                tokens.append(_Token("keyword", word.upper()))
            else:
                tokens.append(_Token("ident", word))
        else:
            tokens.append(_Token(match.lastgroup or "", match.group(0).strip()))
    return tokens


class _Parser:
    """Recursive-descent parser: or_expr → and_expr → unary → comparison."""

    def __init__(self, text: str) -> None:
        self._text = text
        self._tokens = _tokenise(text)
        self._pos = 0

    # -- token helpers ----------------------------------------------------
    def _peek(self) -> _Token | None:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise SQLParseError(self._text, "unexpected end of input")
        self._pos += 1
        return token

    def _accept_keyword(self, word: str) -> bool:
        token = self._peek()
        if token is not None and token.kind == "keyword" and token.value == word:
            self._pos += 1
            return True
        return False

    def _expect(self, kind: str) -> _Token:
        token = self._next()
        if token.kind != kind:
            raise SQLParseError(
                self._text, f"expected {kind}, got {token.value!r}"
            )
        return token

    # -- grammar ----------------------------------------------------------
    def parse(self) -> Predicate:
        predicate = self._or_expr()
        if self._peek() is not None:
            raise SQLParseError(
                self._text, f"trailing input at {self._peek().value!r}"
            )
        return predicate

    def _or_expr(self) -> Predicate:
        operands = [self._and_expr()]
        while self._accept_keyword("OR"):
            operands.append(self._and_expr())
        if len(operands) == 1:
            return operands[0]
        return Or(tuple(operands)).flattened()

    def _and_expr(self) -> Predicate:
        operands = [self._unary()]
        while self._accept_keyword("AND"):
            operands.append(self._unary())
        if len(operands) == 1:
            return operands[0]
        return And(tuple(operands)).flattened()

    def _unary(self) -> Predicate:
        if self._accept_keyword("NOT"):
            return Not(self._unary())
        if self._accept_keyword("TRUE"):
            return TruePredicate()
        token = self._peek()
        if token is not None and token.kind == "lparen":
            self._next()
            inner = self._or_expr()
            self._expect("rparen")
            return inner
        return self._comparison()

    def _comparison(self) -> Predicate:
        ident = self._expect("ident")
        token = self._next()
        if token.kind == "keyword" and token.value == "IN":
            return In(ident.value, tuple(self._value_list()))
        if token.kind != "op":
            raise SQLParseError(
                self._text, f"expected operator after {ident.value!r}"
            )
        op = "!=" if token.value == "<>" else token.value
        literal = self._literal()
        if op == "=":
            return Eq(ident.value, literal)
        if not isinstance(literal, (int, float)):
            raise SQLParseError(
                self._text, f"operator {op!r} needs a numeric literal"
            )
        return Cmp(ident.value, op, float(literal))

    def _value_list(self) -> list[Any]:
        self._expect("lparen")
        values = [self._literal()]
        while True:
            token = self._next()
            if token.kind == "rparen":
                return values
            if token.kind != "comma":
                raise SQLParseError(self._text, "expected ',' or ')' in IN list")
            values.append(self._literal())

    def _literal(self) -> Any:
        token = self._next()
        if token.kind in ("string", "number"):
            return token.value
        if token.kind == "ident":
            # bare words allowed as string literals for convenience
            return token.value
        raise SQLParseError(self._text, f"expected literal, got {token.value!r}")


def parse_where(text: str) -> Predicate:
    """Parse a WHERE-clause expression into a :class:`Predicate`."""
    if not text or not text.strip():
        return TruePredicate()
    return _Parser(text).parse()


def parse_select(text: str) -> tuple[str | None, Predicate]:
    """Parse ``SELECT * FROM table [WHERE cond]``.

    Returns ``(table_name, predicate)``; plain WHERE expressions are also
    accepted and yield ``(None, predicate)``.
    """
    stripped = text.strip()
    match = re.match(
        r"(?is)^\s*select\s+\*\s+from\s+([A-Za-z_][A-Za-z_0-9]*)\s*(?:where\s+(.*))?$",
        stripped,
    )
    if match is None:
        return None, parse_where(stripped)
    table_name = match.group(1)
    where = match.group(2)
    return table_name, parse_where(where) if where else TruePredicate()
