"""Group-by engine with shared multi-aggregate execution.

Rating maps (paper Def. 2) are GroupBy-and-aggregate views over a rating
group.  Two properties of that workload shape this module:

* **Sharing** (paper §4.2.1, "Combining Multiple Aggregates"): all rating
  maps that group by the same attribute differ only in the aggregated rating
  dimension, so one scan computes histograms for every dimension at once.
* **Phased execution** (paper Alg. 1): pruning operates on *partial* results,
  so accumulators accept incremental batches of row indices and expose their
  partial histograms at any point.

Because rating scores live on an integer scale ``1..m`` (Def. 1), a per-group
histogram of counts is a sufficient statistic: mean, standard deviation and
every distance measure derive from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from ..exceptions import SchemaError
from .table import Table

__all__ = [
    "Grouping",
    "HistogramAccumulator",
    "SharedGroupByScan",
    "build_grouping",
    "group_histograms",
]


@dataclass(frozen=True)
class Grouping:
    """Dictionary encoding of one grouping attribute over a table.

    ``codes[i]`` is the subgroup index of row ``i`` (``-1`` = missing, the
    row belongs to no subgroup) and ``labels[g]`` names subgroup ``g``.
    """

    attribute: str
    codes: np.ndarray
    labels: tuple[Any, ...]

    @property
    def n_groups(self) -> int:
        return len(self.labels)

    def group_sizes(self) -> np.ndarray:
        """Number of rows in each subgroup."""
        valid = self.codes[self.codes >= 0]
        return np.bincount(valid, minlength=self.n_groups)


def build_grouping(table: Table, attribute: str) -> Grouping:
    """Dictionary-encode ``attribute`` of ``table`` for grouping."""
    codes, labels = table.column(attribute).group_codes()
    return Grouping(attribute, codes, tuple(labels))


def group_histograms(
    codes: np.ndarray,
    n_groups: int,
    scores: np.ndarray,
    scale: int,
    rows: np.ndarray | None = None,
) -> np.ndarray:
    """Histogram of integer scores ``1..scale`` per subgroup.

    Parameters
    ----------
    codes:
        Full-length subgroup codes (``-1`` excluded from all groups).
    n_groups:
        Number of subgroups.
    scores:
        Full-length float array of scores; non-finite and out-of-scale
        entries are ignored.
    scale:
        Rating scale ``m`` — scores are expected in ``{1, ..., m}``.
    rows:
        Optional subset of row indices to accumulate (for phased scans).

    Returns
    -------
    ``(n_groups, scale)`` int64 matrix of counts.
    """
    if rows is not None:
        codes = codes[rows]
        scores = scores[rows]
    with np.errstate(invalid="ignore"):
        valid = (codes >= 0) & np.isfinite(scores) & (scores >= 1) & (scores <= scale)
    codes = codes[valid]
    buckets = scores[valid].astype(np.int64) - 1
    flat = np.bincount(codes * scale + buckets, minlength=n_groups * scale)
    return flat.reshape(n_groups, scale)


class HistogramAccumulator:
    """Incrementally accumulated per-subgroup score histograms.

    One accumulator corresponds to one (grouping attribute, rating dimension)
    pair — i.e. one candidate rating map.  ``update`` folds in a batch of row
    indices; ``counts`` is always the histogram of all rows seen so far.
    """

    def __init__(self, grouping: Grouping, scores: np.ndarray, scale: int) -> None:
        if scale < 2:
            raise SchemaError(f"rating scale must be >= 2, got {scale}")
        self._grouping = grouping
        self._scores = np.asarray(scores, dtype=np.float64)
        self._scale = int(scale)
        self._counts = np.zeros((grouping.n_groups, scale), dtype=np.int64)
        self._rows_seen = 0

    @property
    def grouping(self) -> Grouping:
        return self._grouping

    @property
    def scale(self) -> int:
        return self._scale

    @property
    def counts(self) -> np.ndarray:
        """The ``(n_groups, scale)`` partial histogram (a view — don't mutate)."""
        return self._counts

    @property
    def rows_seen(self) -> int:
        return self._rows_seen

    def update(self, rows: np.ndarray) -> None:
        """Fold the scores at ``rows`` into the histograms."""
        self._counts += group_histograms(
            self._grouping.codes,
            self._grouping.n_groups,
            self._scores,
            self._scale,
            rows=rows,
        )
        self._rows_seen += int(len(rows))

    def update_with_codes(self, codes: np.ndarray, rows: np.ndarray) -> None:
        """Fold in ``rows`` given pre-sliced ``codes`` (= grouping.codes[rows]).

        The sharing fast path: a :class:`SharedGroupByScan` slices the
        grouping codes once per batch and every dimension reuses them.
        """
        self._counts += group_histograms(
            codes,
            self._grouping.n_groups,
            self._scores[rows],
            self._scale,
        )
        self._rows_seen += int(len(rows))

    def update_all(self) -> None:
        """Fold in every row at once (the no-phasing path)."""
        self.update(np.arange(len(self._grouping.codes), dtype=np.int64))


class SharedGroupByScan:
    """Shared scan over one grouping attribute for many rating dimensions.

    Implements the paper's "Combining Multiple Aggregates" sharing
    optimization: the grouping codes are computed once and every dimension's
    accumulator reuses them, so a phase touches each row once per attribute
    rather than once per (attribute, dimension) pair.
    """

    def __init__(
        self,
        grouping: Grouping,
        dimension_scores: Mapping[str, np.ndarray],
        scale: int,
    ) -> None:
        self._grouping = grouping
        self._accumulators = {
            dim: HistogramAccumulator(grouping, scores, scale)
            for dim, scores in dimension_scores.items()
        }

    @property
    def grouping(self) -> Grouping:
        return self._grouping

    @property
    def dimensions(self) -> tuple[str, ...]:
        return tuple(self._accumulators)

    def accumulator(self, dimension: str) -> HistogramAccumulator:
        return self._accumulators[dimension]

    def drop_dimension(self, dimension: str) -> None:
        """Stop accumulating a pruned dimension (frees per-phase work)."""
        self._accumulators.pop(dimension, None)

    def update(self, rows: np.ndarray) -> None:
        if not self._accumulators:
            return
        codes = self._grouping.codes[rows]
        for accumulator in self._accumulators.values():
            accumulator.update_with_codes(codes, rows)


def phase_slices(n_rows: int, n_phases: int) -> list[np.ndarray]:
    """Partition ``range(n_rows)`` into ``n_phases`` near-equal index blocks.

    The paper's phased framework (Alg. 1) processes "the i-th fraction of the
    group" per phase; blocks here are contiguous, sized within one row of
    each other, and jointly cover every row exactly once.  Fewer rows than
    phases yields fewer (non-empty) blocks.
    """
    n_phases = max(1, int(n_phases))
    if n_rows <= 0:
        return [np.empty(0, dtype=np.int64)]
    bounds = np.linspace(0, n_rows, num=min(n_phases, n_rows) + 1, dtype=np.int64)
    return [
        np.arange(bounds[i], bounds[i + 1], dtype=np.int64)
        for i in range(len(bounds) - 1)
    ]
