"""Column storage for the in-memory columnar engine.

Three concrete column classes implement a small common protocol:

* :class:`CategoricalColumn` — dictionary-encoded: an ``int32`` code array
  plus a category list.  Missing values are code ``-1``.
* :class:`NumericColumn` — a ``float64`` array; missing values are ``NaN``.
* :class:`MultiValuedColumn` — one ``frozenset`` of strings per row, stored
  densely as a flattened code array with offsets so that membership tests
  are vectorised.

Columns are immutable once built; selections produce new columns via
:meth:`take`.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Sequence

import numpy as np

from ..exceptions import ColumnTypeError
from .types import ColumnType

__all__ = [
    "Column",
    "CategoricalColumn",
    "NumericColumn",
    "MultiValuedColumn",
    "column_from_values",
]


class Column:
    """Abstract base for all column implementations."""

    #: logical type, set by subclasses
    type: ColumnType

    def __len__(self) -> int:
        raise NotImplementedError

    def take(self, indices: np.ndarray) -> "Column":
        """Return a new column holding only ``indices`` rows (in order)."""
        raise NotImplementedError

    def value_at(self, row: int) -> Any:
        """Return the Python value stored at ``row`` (``None`` if missing)."""
        raise NotImplementedError

    def to_list(self) -> list[Any]:
        """Materialise the column as a list of Python values."""
        return [self.value_at(i) for i in range(len(self))]

    def equals_mask(self, value: Any) -> np.ndarray:
        """Boolean mask of rows whose value equals ``value``.

        For multi-valued columns this is *containment* (the row's set
        contains ``value``), matching how selection predicates on e.g.
        ``cuisine`` behave in the paper's examples.
        """
        raise NotImplementedError

    def isin_mask(self, values: Iterable[Any]) -> np.ndarray:
        """Boolean mask of rows whose value is one of ``values``."""
        masks = [self.equals_mask(v) for v in values]
        if not masks:
            return np.zeros(len(self), dtype=bool)
        out = masks[0]
        for mask in masks[1:]:
            out = out | mask
        return out

    def distinct_values(self) -> list[Any]:
        """Sorted list of distinct non-missing values.

        For multi-valued columns the distinct *members* are returned, since
        predicates select by member.
        """
        raise NotImplementedError

    def group_codes(self) -> tuple[np.ndarray, list[Any]]:
        """Dictionary-encode the column for group-by.

        Returns ``(codes, labels)`` where ``codes[i]`` is the group index of
        row ``i`` (``-1`` for missing) and ``labels[g]`` is the value of
        group ``g``.  Groups are disjoint by construction (paper Def. 2):
        a multi-valued row is keyed by its full value set.
        """
        raise NotImplementedError


class CategoricalColumn(Column):
    """Dictionary-encoded string column."""

    type = ColumnType.CATEGORICAL

    def __init__(self, codes: np.ndarray, categories: Sequence[str]) -> None:
        self._codes = np.asarray(codes, dtype=np.int32)
        self._categories = list(categories)
        if self._codes.size and self._codes.max(initial=-1) >= len(self._categories):
            raise ColumnTypeError("category code out of range")
        self._index = {c: i for i, c in enumerate(self._categories)}

    @classmethod
    def from_values(cls, values: Sequence[Any]) -> "CategoricalColumn":
        """Build from raw values; ``None`` becomes a missing code."""
        categories: list[str] = []
        index: dict[str, int] = {}
        codes = np.empty(len(values), dtype=np.int32)
        for i, value in enumerate(values):
            if value is None:
                codes[i] = -1
                continue
            key = str(value)
            code = index.get(key)
            if code is None:
                code = len(categories)
                index[key] = code
                categories.append(key)
            codes[i] = code
        return cls(codes, categories)

    @property
    def codes(self) -> np.ndarray:
        return self._codes

    @property
    def categories(self) -> list[str]:
        return list(self._categories)

    def __len__(self) -> int:
        return int(self._codes.size)

    def take(self, indices: np.ndarray) -> "CategoricalColumn":
        return CategoricalColumn(self._codes[indices], self._categories)

    def value_at(self, row: int) -> Any:
        code = int(self._codes[row])
        return None if code < 0 else self._categories[code]

    def equals_mask(self, value: Any) -> np.ndarray:
        code = self._index.get(str(value), -2)
        return self._codes == code

    def isin_mask(self, values: Iterable[Any]) -> np.ndarray:
        """Vectorised membership: one ``np.isin`` over codes, not k mask ORs."""
        wanted = {
            code
            for code in (self._index.get(str(v)) for v in values)
            if code is not None
        }
        if not wanted:
            return np.zeros(len(self), dtype=bool)
        return np.isin(self._codes, np.fromiter(wanted, dtype=np.int32))

    def distinct_values(self) -> list[str]:
        present = np.unique(self._codes[self._codes >= 0])
        return sorted(self._categories[int(c)] for c in present)

    def group_codes(self) -> tuple[np.ndarray, list[str]]:
        present, dense = np.unique(self._codes, return_inverse=True)
        if present.size and present[0] == -1:
            # shift: missing stays -1, others become 0..G-1
            labels = [self._categories[int(c)] for c in present[1:]]
            return dense.astype(np.int64) - 1, labels
        labels = [self._categories[int(c)] for c in present]
        return dense.astype(np.int64), labels


class NumericColumn(Column):
    """Float column; missing values are NaN."""

    type = ColumnType.NUMERIC

    def __init__(self, data: np.ndarray) -> None:
        self._data = np.asarray(data, dtype=np.float64)

    @classmethod
    def from_values(cls, values: Sequence[Any]) -> "NumericColumn":
        data = np.array(
            [math.nan if v is None else float(v) for v in values], dtype=np.float64
        )
        return cls(data)

    @property
    def data(self) -> np.ndarray:
        return self._data

    def __len__(self) -> int:
        return int(self._data.size)

    def take(self, indices: np.ndarray) -> "NumericColumn":
        return NumericColumn(self._data[indices])

    def value_at(self, row: int) -> Any:
        value = float(self._data[row])
        if math.isnan(value):
            return None
        return int(value) if value.is_integer() else value

    def equals_mask(self, value: Any) -> np.ndarray:
        try:
            needle = float(value)
        except (TypeError, ValueError):
            return np.zeros(len(self), dtype=bool)
        return self._data == needle

    def compare_mask(self, op: str, value: float) -> np.ndarray:
        """Mask for a comparison ``op`` in ``{'<', '<=', '>', '>=', '!='}``."""
        value = float(value)
        if op == "<":
            return self._data < value
        if op == "<=":
            return self._data <= value
        if op == ">":
            return self._data > value
        if op == ">=":
            return self._data >= value
        if op == "!=":
            with np.errstate(invalid="ignore"):
                return ~np.isnan(self._data) & (self._data != value)
        raise ColumnTypeError(f"unsupported comparison operator {op!r}")

    def distinct_values(self) -> list[float]:
        finite = self._data[~np.isnan(self._data)]
        out: list[float] = []
        for value in np.unique(finite):
            value = float(value)
            out.append(int(value) if value.is_integer() else value)
        return out

    def group_codes(self) -> tuple[np.ndarray, list[Any]]:
        missing = np.isnan(self._data)
        filler = self._data.copy()
        filler[missing] = np.inf  # sorts last; removed below
        present, dense = np.unique(filler, return_inverse=True)
        codes = dense.astype(np.int64)
        if missing.any():
            codes[missing] = -1
            present = present[:-1] if np.isinf(present[-1]) else present
        labels: list[Any] = []
        for value in present:
            value = float(value)
            labels.append(int(value) if value.is_integer() else value)
        return codes, labels


class MultiValuedColumn(Column):
    """Column whose cells are frozensets of strings.

    Stored as a flattened member-code array plus per-row offsets so that
    membership predicates run vectorised over the flat array.
    """

    type = ColumnType.MULTI_VALUED

    def __init__(self, rows: Sequence[frozenset[str]]) -> None:
        self._rows = [frozenset(str(v) for v in row) for row in rows]
        members: list[str] = []
        index: dict[str, int] = {}
        flat: list[int] = []
        offsets = np.zeros(len(self._rows) + 1, dtype=np.int64)
        for i, row in enumerate(self._rows):
            for value in sorted(row):
                code = index.get(value)
                if code is None:
                    code = len(members)
                    index[value] = code
                    members.append(value)
                flat.append(code)
            offsets[i + 1] = len(flat)
        self._members = members
        self._index = index
        self._flat = np.asarray(flat, dtype=np.int64)
        self._offsets = offsets
        self._row_of_flat = np.repeat(
            np.arange(len(self._rows), dtype=np.int64), np.diff(offsets)
        )

    @classmethod
    def from_values(cls, values: Sequence[Any]) -> "MultiValuedColumn":
        rows = []
        for value in values:
            if value is None:
                rows.append(frozenset())
            elif isinstance(value, (set, frozenset, list, tuple)):
                rows.append(frozenset(str(v) for v in value))
            else:
                rows.append(frozenset({str(value)}))
        return cls(rows)

    def __len__(self) -> int:
        return len(self._rows)

    def take(self, indices: np.ndarray) -> "MultiValuedColumn":
        return MultiValuedColumn([self._rows[int(i)] for i in indices])

    def value_at(self, row: int) -> Any:
        value = self._rows[row]
        return value if value else None

    def equals_mask(self, value: Any) -> np.ndarray:
        """Containment mask: rows whose set contains ``value``."""
        code = self._index.get(str(value))
        mask = np.zeros(len(self), dtype=bool)
        if code is None:
            return mask
        hit_rows = self._row_of_flat[self._flat == code]
        mask[hit_rows] = True
        return mask

    def distinct_values(self) -> list[str]:
        return sorted(self._members)

    def group_codes(self) -> tuple[np.ndarray, list[str]]:
        """Group rows by their *full* value set (disjoint partition).

        The label of a group is the sorted members joined by ``" | "`` —
        e.g. ``"Burgers | Barbeque"`` sorts to ``"Barbeque | Burgers"``.
        Empty sets map to the missing code ``-1``.
        """
        labels: list[str] = []
        index: dict[frozenset[str], int] = {}
        codes = np.empty(len(self), dtype=np.int64)
        for i, row in enumerate(self._rows):
            if not row:
                codes[i] = -1
                continue
            code = index.get(row)
            if code is None:
                code = len(labels)
                index[row] = code
                labels.append(" | ".join(sorted(row)))
            codes[i] = code
        return codes, labels


def column_from_values(values: Sequence[Any], ctype: ColumnType | None = None) -> Column:
    """Build the appropriate column for ``values``.

    ``ctype`` forces a type; otherwise it is inferred with
    :func:`repro.db.types.infer_column_type`.
    """
    from .types import infer_column_type

    if ctype is None:
        ctype = infer_column_type(list(values))
    if ctype is ColumnType.CATEGORICAL:
        return CategoricalColumn.from_values(values)
    if ctype is ColumnType.NUMERIC:
        return NumericColumn.from_values(values)
    if ctype is ColumnType.MULTI_VALUED:
        return MultiValuedColumn.from_values(values)
    raise ColumnTypeError(f"unknown column type {ctype!r}")
