"""Predicate algebra over tables.

Predicates form a small immutable AST that evaluates to a boolean numpy mask
against a :class:`~repro.db.table.Table`.  SDE selection criteria (sets of
attribute-value pairs, paper §3.1) are conjunctions of :class:`Eq` leaves;
the algebra additionally supports ``IN``, numeric comparisons, negation and
disjunction so the tiny SQL dialect (:mod:`repro.db.sql`) has a full target.

Predicates are hashable value objects: two structurally identical predicates
compare equal, which the exploration layer relies on for deduplicating
candidate operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from ..exceptions import PredicateError

if TYPE_CHECKING:  # pragma: no cover
    from .table import Table

__all__ = [
    "Predicate",
    "TruePredicate",
    "Eq",
    "In",
    "Cmp",
    "Not",
    "And",
    "Or",
    "conjunction",
    "to_sql",
]


class Predicate:
    """Base class; subclasses are frozen dataclasses."""

    def mask(self, table: "Table") -> np.ndarray:
        """Evaluate to a boolean mask with one entry per table row."""
        raise NotImplementedError

    # -- algebra ----------------------------------------------------------
    def __and__(self, other: "Predicate") -> "Predicate":
        return And((self, other)).flattened()

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or((self, other)).flattened()

    def __invert__(self) -> "Predicate":
        return Not(self)

    def attributes(self) -> frozenset[str]:
        """The set of attribute names this predicate references."""
        return frozenset()


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """Matches every row (the empty selection criteria)."""

    def mask(self, table: "Table") -> np.ndarray:
        return np.ones(len(table), dtype=bool)

    def __repr__(self) -> str:
        return "TRUE"


@dataclass(frozen=True)
class Eq(Predicate):
    """``attribute = value``; containment for multi-valued attributes."""

    attribute: str
    value: Any

    def mask(self, table: "Table") -> np.ndarray:
        return table.column(self.attribute).equals_mask(self.value)

    def attributes(self) -> frozenset[str]:
        return frozenset({self.attribute})

    def __repr__(self) -> str:
        return f"{self.attribute} = {self.value!r}"


@dataclass(frozen=True)
class In(Predicate):
    """``attribute IN values``."""

    attribute: str
    values: tuple[Any, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(self.values))

    def mask(self, table: "Table") -> np.ndarray:
        return table.column(self.attribute).isin_mask(self.values)

    def attributes(self) -> frozenset[str]:
        return frozenset({self.attribute})

    def __repr__(self) -> str:
        return f"{self.attribute} IN {self.values!r}"


@dataclass(frozen=True)
class Cmp(Predicate):
    """Numeric comparison ``attribute op value`` with op in <, <=, >, >=, !=."""

    attribute: str
    op: str
    value: float

    _OPS = ("<", "<=", ">", ">=", "!=")

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise PredicateError(f"unsupported operator {self.op!r}")

    def mask(self, table: "Table") -> np.ndarray:
        from .column import NumericColumn

        column = table.column(self.attribute)
        if not isinstance(column, NumericColumn):
            raise PredicateError(
                f"comparison {self.op!r} requires a numeric column, "
                f"got {column.type} for {self.attribute!r}"
            )
        return column.compare_mask(self.op, self.value)

    def attributes(self) -> frozenset[str]:
        return frozenset({self.attribute})

    def __repr__(self) -> str:
        return f"{self.attribute} {self.op} {self.value!r}"


@dataclass(frozen=True)
class Not(Predicate):
    """Logical negation."""

    operand: Predicate

    def mask(self, table: "Table") -> np.ndarray:
        return ~self.operand.mask(table)

    def attributes(self) -> frozenset[str]:
        return self.operand.attributes()

    def __repr__(self) -> str:
        return f"NOT ({self.operand!r})"


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction of child predicates; empty conjunction is TRUE."""

    operands: tuple[Predicate, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "operands", tuple(self.operands))

    def mask(self, table: "Table") -> np.ndarray:
        out = np.ones(len(table), dtype=bool)
        for operand in self.operands:
            out &= operand.mask(table)
        return out

    def flattened(self) -> "Predicate":
        """Flatten nested ANDs and drop TRUE leaves."""
        flat: list[Predicate] = []
        for operand in self.operands:
            if isinstance(operand, And):
                flat.extend(operand.flattened_operands())
            elif not isinstance(operand, TruePredicate):
                flat.append(operand)
        if not flat:
            return TruePredicate()
        if len(flat) == 1:
            return flat[0]
        return And(tuple(flat))

    def flattened_operands(self) -> tuple[Predicate, ...]:
        flattened = self.flattened()
        if isinstance(flattened, And):
            return flattened.operands
        if isinstance(flattened, TruePredicate):
            return ()
        return (flattened,)

    def attributes(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for operand in self.operands:
            out |= operand.attributes()
        return out

    def __repr__(self) -> str:
        return " AND ".join(f"({op!r})" for op in self.operands) or "TRUE"


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction of child predicates; empty disjunction matches nothing."""

    operands: tuple[Predicate, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "operands", tuple(self.operands))

    def mask(self, table: "Table") -> np.ndarray:
        out = np.zeros(len(table), dtype=bool)
        for operand in self.operands:
            out |= operand.mask(table)
        return out

    def flattened(self) -> "Predicate":
        flat: list[Predicate] = []
        for operand in self.operands:
            if isinstance(operand, Or):
                inner = operand.flattened()
                if isinstance(inner, Or):
                    flat.extend(inner.operands)
                else:
                    flat.append(inner)
            else:
                flat.append(operand)
        if len(flat) == 1:
            return flat[0]
        return Or(tuple(flat))

    def attributes(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for operand in self.operands:
            out |= operand.attributes()
        return out

    def __repr__(self) -> str:
        return " OR ".join(f"({op!r})" for op in self.operands) or "FALSE"


def conjunction(pairs: dict[str, Any] | list[tuple[str, Any]]) -> Predicate:
    """Build the conjunction of ``attribute = value`` pairs.

    This is the canonical form of an SDE selection criteria (paper §3.1):
    ``conjunction({"gender": "F", "age_group": "young"})``.
    """
    if isinstance(pairs, dict):
        pairs = list(pairs.items())
    if not pairs:
        return TruePredicate()
    leaves: list[Predicate] = [Eq(attr, value) for attr, value in pairs]
    if len(leaves) == 1:
        return leaves[0]
    return And(tuple(leaves))


def _sql_literal(value: object) -> str:
    """Render a Python value as a SQL literal of the tiny dialect."""
    if isinstance(value, bool):
        return f"'{value}'"
    if isinstance(value, (int, float)):
        return repr(value)
    text = str(value).replace("'", "''")
    return f"'{text}'"


def to_sql(predicate: Predicate) -> str:
    """Serialise a predicate into the tiny SQL WHERE dialect.

    The output round-trips through :func:`repro.db.sql.parse_where` back to
    an equivalent predicate (modulo AND/OR flattening).
    """
    if isinstance(predicate, TruePredicate):
        return "TRUE"
    if isinstance(predicate, Eq):
        return f"{predicate.attribute} = {_sql_literal(predicate.value)}"
    if isinstance(predicate, In):
        values = ", ".join(_sql_literal(v) for v in predicate.values)
        return f"{predicate.attribute} IN ({values})"
    if isinstance(predicate, Cmp):
        return f"{predicate.attribute} {predicate.op} {predicate.value!r}"
    if isinstance(predicate, Not):
        return f"NOT ({to_sql(predicate.operand)})"
    if isinstance(predicate, And):
        if not predicate.operands:
            return "TRUE"
        return " AND ".join(f"({to_sql(op)})" for op in predicate.operands)
    if isinstance(predicate, Or):
        if not predicate.operands:
            return "NOT (TRUE)"
        return " OR ".join(f"({to_sql(op)})" for op in predicate.operands)
    raise PredicateError(f"cannot serialise predicate {predicate!r}")
