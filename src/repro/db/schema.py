"""Table schemas for the columnar engine.

A :class:`TableSchema` is an ordered collection of :class:`AttributeSpec`.
Schemas are declarative: dataset generators build them explicitly, and the
catalog (see :mod:`repro.db.catalog`) derives active domains from the data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import SchemaError, UnknownAttributeError
from .types import ColumnType

__all__ = ["AttributeSpec", "TableSchema"]


@dataclass(frozen=True)
class AttributeSpec:
    """Declaration of one attribute (column).

    Parameters
    ----------
    name:
        Column name, unique within the table.
    ctype:
        Logical column type.
    explorable:
        Whether SDE operations may filter / group by this attribute.  Keys
        (``user_id``, ``item_id``) and free-text columns set this to False.
    """

    name: str
    ctype: ColumnType = ColumnType.CATEGORICAL
    explorable: bool = True

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError("attribute name must be a non-empty string")


@dataclass(frozen=True)
class TableSchema:
    """Ordered, immutable set of attribute specs."""

    attributes: tuple[AttributeSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [a.name for a in self.attributes]
        if len(names) != len(set(names)):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate attribute names: {dupes}")

    @classmethod
    def of(cls, *specs: AttributeSpec) -> "TableSchema":
        return cls(tuple(specs))

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    @property
    def explorable_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.attributes if a.explorable)

    def __len__(self) -> int:
        return len(self.attributes)

    def __contains__(self, name: str) -> bool:
        return any(a.name == name for a in self.attributes)

    def __getitem__(self, name: str) -> AttributeSpec:
        for spec in self.attributes:
            if spec.name == name:
                return spec
        raise UnknownAttributeError(name, self.names)

    def ctype(self, name: str) -> ColumnType:
        return self[name].ctype

    def with_attribute(self, spec: AttributeSpec) -> "TableSchema":
        """Return a schema extended with ``spec`` (appended)."""
        return TableSchema(self.attributes + (spec,))

    def without_attributes(self, names: set[str] | frozenset[str]) -> "TableSchema":
        """Return a schema with every attribute in ``names`` removed."""
        return TableSchema(tuple(a for a in self.attributes if a.name not in names))
