"""The :class:`Table` — an immutable in-memory columnar relation.

Tables pair a :class:`~repro.db.schema.TableSchema` with one
:class:`~repro.db.column.Column` per attribute.  Selection (``filter``)
returns a new table; predicates evaluate to vectorised numpy masks.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping, Sequence

import numpy as np

from ..exceptions import SchemaError, UnknownAttributeError
from .column import Column, column_from_values
from .predicates import Predicate
from .schema import AttributeSpec, TableSchema
from .types import ColumnType, infer_column_type

__all__ = ["Table"]


class Table:
    """An immutable columnar table.

    Build directly from columns, or from Python rows / column dicts via the
    classmethod constructors.
    """

    def __init__(self, schema: TableSchema, columns: Mapping[str, Column]) -> None:
        if set(schema.names) != set(columns):
            missing = set(schema.names) - set(columns)
            extra = set(columns) - set(schema.names)
            raise SchemaError(
                f"columns do not match schema (missing={sorted(missing)}, "
                f"extra={sorted(extra)})"
            )
        lengths = {name: len(col) for name, col in columns.items()}
        if len(set(lengths.values())) > 1:
            raise SchemaError(f"column lengths differ: {lengths}")
        self._schema = schema
        self._columns = dict(columns)
        self._nrows = next(iter(lengths.values())) if lengths else 0

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_columns(
        cls,
        data: Mapping[str, Sequence[Any]],
        schema: TableSchema | None = None,
        explorable: Mapping[str, bool] | None = None,
    ) -> "Table":
        """Build a table from ``{name: values}``; types inferred if no schema.

        ``explorable`` optionally marks attributes as non-explorable when the
        schema is being inferred.
        """
        explorable = dict(explorable or {})
        if schema is None:
            specs = []
            for name, values in data.items():
                ctype = infer_column_type(list(values))
                specs.append(
                    AttributeSpec(name, ctype, explorable.get(name, True))
                )
            schema = TableSchema(tuple(specs))
        columns = {
            spec.name: column_from_values(list(data[spec.name]), spec.ctype)
            for spec in schema.attributes
        }
        return cls(schema, columns)

    @classmethod
    def from_rows(
        cls,
        rows: Sequence[Mapping[str, Any]],
        schema: TableSchema | None = None,
        explorable: Mapping[str, bool] | None = None,
    ) -> "Table":
        """Build a table from a sequence of row dicts."""
        if schema is not None:
            names: Sequence[str] = schema.names
        elif rows:
            names = list(rows[0])
        else:
            names = []
        data = {name: [row.get(name) for row in rows] for name in names}
        return cls.from_columns(data, schema, explorable)

    @classmethod
    def empty(cls, schema: TableSchema) -> "Table":
        columns = {
            spec.name: column_from_values([], spec.ctype)
            for spec in schema.attributes
        }
        return cls(schema, columns)

    # -- basic accessors ----------------------------------------------------
    @property
    def schema(self) -> TableSchema:
        return self._schema

    def __len__(self) -> int:
        return self._nrows

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return self._schema.names

    @property
    def explorable_attributes(self) -> tuple[str, ...]:
        return self._schema.explorable_names

    def column(self, name: str) -> Column:
        try:
            return self._columns[name]
        except KeyError:
            raise UnknownAttributeError(name, self._schema.names) from None

    def has_column(self, name: str) -> bool:
        return name in self._columns

    def row(self, index: int) -> dict[str, Any]:
        """Materialise row ``index`` as a dict."""
        return {name: col.value_at(index) for name, col in self._columns.items()}

    def rows(self) -> Iterator[dict[str, Any]]:
        for i in range(self._nrows):
            yield self.row(i)

    # -- relational operations ----------------------------------------------
    def mask(self, predicate: Predicate) -> np.ndarray:
        """Evaluate ``predicate`` to a boolean mask over this table."""
        return predicate.mask(self)

    def filter(self, predicate: Predicate) -> "Table":
        """Rows matching ``predicate`` (a new table)."""
        return self.take(np.flatnonzero(predicate.mask(self)))

    def take(self, indices: np.ndarray) -> "Table":
        """Rows at ``indices``, in order (a new table)."""
        indices = np.asarray(indices, dtype=np.int64)
        columns = {name: col.take(indices) for name, col in self._columns.items()}
        return Table(self._schema, columns)

    def select(self, names: Sequence[str]) -> "Table":
        """Projection onto ``names`` (preserving their schema specs)."""
        specs = tuple(self._schema[name] for name in names)
        columns = {name: self.column(name) for name in names}
        return Table(TableSchema(specs), columns)

    def drop(self, names: set[str] | frozenset[str] | Sequence[str]) -> "Table":
        """Projection removing ``names``."""
        names = set(names)
        keep = [n for n in self._schema.names if n not in names]
        return self.select(keep)

    def replace_column(self, name: str, column: Column) -> "Table":
        """A new table with column ``name`` swapped for ``column``.

        The replacement must have the same length and a type matching the
        schema (the schema is unchanged).
        """
        if name not in self._columns:
            raise UnknownAttributeError(name, self._schema.names)
        if len(column) != self._nrows:
            raise SchemaError(
                f"replacement column has {len(column)} rows, table has {self._nrows}"
            )
        if column.type is not self._schema[name].ctype:
            raise SchemaError(
                f"replacement column type {column.type} does not match "
                f"schema type {self._schema[name].ctype} for {name!r}"
            )
        columns = dict(self._columns)
        columns[name] = column
        return Table(self._schema, columns)

    def numeric(self, name: str) -> np.ndarray:
        """The float64 data of a numeric column (raises otherwise)."""
        from .column import NumericColumn

        column = self.column(name)
        if not isinstance(column, NumericColumn):
            raise SchemaError(f"column {name!r} is {column.type}, not numeric")
        return column.data

    def distinct(self, name: str) -> list[Any]:
        """Sorted distinct non-missing values of a column."""
        return self.column(name).distinct_values()

    def __repr__(self) -> str:
        return (
            f"Table({self._nrows} rows × {len(self._schema)} cols: "
            f"{', '.join(self._schema.names)})"
        )

    def head_str(self, n: int = 5) -> str:
        """A small aligned textual preview (for examples / debugging)."""
        names = self._schema.names
        rows = [
            ["" if v is None else str(v) for v in (self.row(i)[n2] for n2 in names)]
            for i in range(min(n, self._nrows))
        ]
        widths = [
            max(len(name), *(len(r[j]) for r in rows)) if rows else len(name)
            for j, name in enumerate(names)
        ]
        header = "  ".join(name.ljust(w) for name, w in zip(names, widths))
        lines = [header, "  ".join("-" * w for w in widths)]
        for r in rows:
            lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
        if self._nrows > n:
            lines.append(f"... ({self._nrows - n} more rows)")
        return "\n".join(lines)
