"""Active-domain catalog.

The Recommendation Builder enumerates candidate operations from the *active
domain* of each explorable attribute (which values actually occur, and how
often).  The catalog computes and caches those statistics per table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from .column import CategoricalColumn, MultiValuedColumn, NumericColumn
from .table import Table

__all__ = ["AttributeDomain", "Catalog"]


@dataclass(frozen=True)
class AttributeDomain:
    """Active domain of one attribute: values and their row frequencies."""

    attribute: str
    values: tuple[Any, ...]
    counts: tuple[int, ...]

    @property
    def cardinality(self) -> int:
        return len(self.values)

    def frequent_values(self, min_count: int = 1) -> tuple[Any, ...]:
        """Values occurring at least ``min_count`` times, most frequent first."""
        order = sorted(
            range(len(self.values)), key=lambda i: (-self.counts[i], str(self.values[i]))
        )
        return tuple(
            self.values[i] for i in order if self.counts[i] >= min_count
        )


def _domain_of(table: Table, attribute: str) -> AttributeDomain:
    column = table.column(attribute)
    if isinstance(column, CategoricalColumn):
        codes = column.codes
        present = codes[codes >= 0]
        counts = np.bincount(present, minlength=len(column.categories))
        pairs = [
            (cat, int(n)) for cat, n in zip(column.categories, counts) if n > 0
        ]
    elif isinstance(column, NumericColumn):
        finite = column.data[~np.isnan(column.data)]
        values, freq = np.unique(finite, return_counts=True)
        pairs = []
        for value, n in zip(values, freq):
            value = float(value)
            pairs.append((int(value) if value.is_integer() else value, int(n)))
    elif isinstance(column, MultiValuedColumn):
        tally: dict[str, int] = {}
        for value in column.distinct_values():
            tally[value] = int(column.equals_mask(value).sum())
        pairs = sorted(tally.items())
    else:  # pragma: no cover - defensive
        pairs = []
    pairs.sort(key=lambda p: str(p[0]))
    return AttributeDomain(
        attribute,
        tuple(p[0] for p in pairs),
        tuple(p[1] for p in pairs),
    )


class Catalog:
    """Lazy per-attribute active-domain statistics for a table."""

    def __init__(self, table: Table) -> None:
        self._table = table
        self._domains: dict[str, AttributeDomain] = {}

    @property
    def table(self) -> Table:
        return self._table

    def domain(self, attribute: str) -> AttributeDomain:
        """The (cached) active domain of ``attribute``."""
        if attribute not in self._domains:
            self._domains[attribute] = _domain_of(self._table, attribute)
        return self._domains[attribute]

    def explorable_domains(self) -> dict[str, AttributeDomain]:
        """Domains of every explorable attribute."""
        return {
            name: self.domain(name) for name in self._table.explorable_attributes
        }

    def total_values(self) -> int:
        """Total number of (attribute, value) pairs across explorable attrs."""
        return sum(d.cardinality for d in self.explorable_domains().values())
