"""Hotel-Reviews-like dataset generator (paper §5.1, Table 2).

At ``scale_factor=1.0``: 15 493 reviewers, 879 hotels, 35 912 rating
records, 4 dimensions (overall, cleanliness, food, comfort), 8 explorable
attributes with ≤ 62 values (the reviewer country attribute carries the
62-value domain).  The paper reports this dataset showed the same trends as
Yelp; it is included for completeness and used by the wider test matrix.
"""

from __future__ import annotations

import numpy as np

from ..model.database import Side, SubjectiveDatabase
from .synthetic import (
    CategoricalAttribute,
    GroupEffect,
    generate_entities,
    generate_ratings,
)

__all__ = ["hotels", "HOTEL_EFFECTS", "HOTEL_DIMENSIONS"]

HOTEL_DIMENSIONS: tuple[str, ...] = ("overall", "cleanliness", "food", "comfort")

_COUNTRIES: tuple[str, ...] = tuple(
    f"{name}"
    for name in (
        "USA", "UK", "Germany", "France", "Italy", "Spain", "Netherlands",
        "Canada", "Australia", "Japan", "China", "India", "Brazil", "Mexico",
        "Russia", "Poland", "Sweden", "Norway", "Denmark", "Finland",
        "Ireland", "Portugal", "Greece", "Turkey", "Austria", "Switzerland",
        "Belgium", "Czechia", "Hungary", "Romania", "Bulgaria", "Croatia",
        "Serbia", "Ukraine", "Israel", "Egypt", "Morocco", "South Africa",
        "Nigeria", "Kenya", "Argentina", "Chile", "Colombia", "Peru",
        "South Korea", "Thailand", "Vietnam", "Malaysia", "Singapore",
        "Indonesia", "Philippines", "New Zealand", "Iceland", "Estonia",
        "Latvia", "Lithuania", "Slovakia", "Slovenia", "Luxembourg",
        "Qatar", "UAE", "Saudi Arabia",
    )
)

_REVIEWER_ATTRS = (
    CategoricalAttribute("gender", ("M", "F", "Unspecified"), zipf_s=0.4),
    CategoricalAttribute("age_group", ("young", "adult", "senior"), zipf_s=0.5),
    CategoricalAttribute("country", _COUNTRIES, zipf_s=1.1),
    CategoricalAttribute(
        "traveler_type",
        ("leisure", "business", "family", "couple", "solo"),
        zipf_s=0.6,
    ),
)

_ITEM_ATTRS = (
    CategoricalAttribute("star_rating", ("1", "2", "3", "4", "5"), zipf_s=0.4),
    CategoricalAttribute(
        "city",
        (
            "London", "Paris", "Rome", "Barcelona", "Amsterdam", "Berlin",
            "Vienna", "Prague", "Lisbon", "Madrid", "Dublin", "Budapest",
            "Athens", "Istanbul", "New York", "Miami", "Las Vegas",
            "San Francisco", "Chicago", "Boston", "Tokyo", "Kyoto",
            "Bangkok", "Singapore", "Sydney", "Melbourne", "Dubai",
            "Marrakesh", "Cancun", "Rio de Janeiro",
        ),
        zipf_s=0.9,
    ),
    CategoricalAttribute("chain", ("independent", "chain"), zipf_s=0.3),
    CategoricalAttribute(
        "property_type", ("hotel", "resort", "boutique", "hostel"), zipf_s=0.8
    ),
)

HOTEL_EFFECTS: tuple[GroupEffect, ...] = (
    GroupEffect(Side.ITEM, "star_rating", "5", "comfort", +0.70),
    GroupEffect(Side.ITEM, "star_rating", "1", "cleanliness", -0.70),
    GroupEffect(Side.ITEM, "property_type", "hostel", "comfort", -0.55),
    GroupEffect(Side.ITEM, "property_type", "resort", "food", +0.40),
    GroupEffect(Side.REVIEWER, "traveler_type", "business", "overall", -0.45),
    GroupEffect(Side.REVIEWER, "age_group", "senior", "cleanliness", -0.35),
)


def hotels(seed: int = 0, scale_factor: float = 1.0) -> SubjectiveDatabase:
    """Generate the Hotel-Reviews-like database."""
    if scale_factor <= 0:
        raise ValueError(f"scale_factor must be positive, got {scale_factor}")
    rng = np.random.default_rng(seed)
    n_users = max(50, int(round(15_493 * scale_factor)))
    n_items = max(30, int(round(879 * scale_factor)))
    n_ratings = max(500, int(round(35_912 * scale_factor)))
    reviewers = generate_entities(n_users, "user_id", _REVIEWER_ATTRS, rng)
    items = generate_entities(n_items, "item_id", _ITEM_ATTRS, rng)
    ratings = generate_ratings(
        reviewers,
        items,
        n_ratings,
        HOTEL_DIMENSIONS,
        rng,
        effects=HOTEL_EFFECTS,
        base=3.6,
    )
    return SubjectiveDatabase(
        reviewers, items, ratings, HOTEL_DIMENSIONS, scale=5, name="hotels"
    )
