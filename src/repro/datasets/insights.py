"""Ground-truth insights (paper §5.2, Scenario II).

The paper harvested 5 insights per dataset from public Kaggle EDA
notebooks.  Here the generators *are* the ground truth: each dataset's
latent :class:`~repro.datasets.synthetic.GroupEffect` list encodes facts of
exactly the kaggle-notebook kind ("programmers rate lowest", "Williamsburg
gets the best food scores"), so the insight list is derived from the five
strongest effects.  :func:`verify_insight` measures whether a generated
database actually exhibits an insight, so tests can guarantee the tasks are
solvable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..model.database import Side, SubjectiveDatabase
from .synthetic import GroupEffect

__all__ = ["Insight", "insights_from_effects", "ground_truth_insights", "verify_insight"]


@dataclass(frozen=True)
class Insight:
    """One extractable fact: a group rates one dimension high/low."""

    side: Side
    attribute: str
    value: str
    dimension: str
    direction: str  # "high" | "low"

    def __post_init__(self) -> None:
        if self.direction not in ("high", "low"):
            raise ValueError(f"direction must be 'high'|'low', got {self.direction}")

    @classmethod
    def from_effect(cls, effect: GroupEffect) -> "Insight":
        return cls(
            side=effect.side,
            attribute=effect.attribute,
            value=effect.value,
            dimension=effect.dimension,
            direction="low" if effect.delta < 0 else "high",
        )

    def describe(self) -> str:
        verb = "lowest" if self.direction == "low" else "highest"
        return (
            f"{self.side.value} groups with {self.attribute}={self.value} "
            f"show the {verb} {self.dimension} scores"
        )


def insights_from_effects(
    effects: Sequence[GroupEffect], n: int = 5
) -> tuple[Insight, ...]:
    """The ``n`` strongest effects as insights (paper: 5 per dataset)."""
    strongest = sorted(effects, key=lambda e: -abs(e.delta))[:n]
    return tuple(Insight.from_effect(e) for e in strongest)


def ground_truth_insights(dataset_name: str, n: int = 5) -> tuple[Insight, ...]:
    """Insight list for a named dataset generator."""
    base = dataset_name.split("+")[0].split("[")[0]
    if base == "movielens":
        from .movielens import MOVIELENS_EFFECTS

        return insights_from_effects(MOVIELENS_EFFECTS, n)
    if base == "yelp":
        from .yelp import YELP_EFFECTS

        return insights_from_effects(YELP_EFFECTS, n)
    if base == "hotels":
        from .hotels import HOTEL_EFFECTS

        return insights_from_effects(HOTEL_EFFECTS, n)
    raise KeyError(f"no ground-truth insights for dataset {dataset_name!r}")


def verify_insight(
    database: SubjectiveDatabase, insight: Insight
) -> tuple[float, float]:
    """(group mean, complement mean) of the insight's dimension.

    A ``low`` insight holds when the group mean is below the complement
    mean (and vice versa); tests assert this on generated data.
    """
    table = database.entity_table(insight.side)
    entity_mask = table.column(insight.attribute).equals_mask(insight.value)
    record_mask = database.rating_rows_for_entities(insight.side, entity_mask)
    scores = database.dimension_scores(insight.dimension)
    finite = np.isfinite(scores)
    inside = scores[record_mask & finite]
    outside = scores[~record_mask & finite]
    inside_mean = float(inside.mean()) if inside.size else float("nan")
    outside_mean = float(outside.mean()) if outside.size else float("nan")
    return inside_mean, outside_mean
