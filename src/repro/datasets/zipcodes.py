"""Zip-code enrichment (paper §5.1: MovieLens city/state from zip codes).

A deterministic synthetic gazetteer: 3-digit zip prefixes map to (city,
state).  :func:`enrich_with_location` mirrors the paper's preprocessing —
given a zip code column, derive ``city`` and ``state`` columns.
"""

from __future__ import annotations

__all__ = ["GAZETTEER", "location_of", "age_group_of", "AGE_GROUPS"]

#: 3-digit zip prefix → (city, state); 29 cities across 15 states.
GAZETTEER: dict[str, tuple[str, str]] = {
    "100": ("New York", "NY"),
    "112": ("Brooklyn", "NY"),
    "104": ("Bronx", "NY"),
    "021": ("Boston", "MA"),
    "014": ("Worcester", "MA"),
    "191": ("Philadelphia", "PA"),
    "152": ("Pittsburgh", "PA"),
    "606": ("Chicago", "IL"),
    "627": ("Springfield", "IL"),
    "770": ("Houston", "TX"),
    "752": ("Dallas", "TX"),
    "787": ("Austin", "TX"),
    "900": ("Los Angeles", "CA"),
    "941": ("San Francisco", "CA"),
    "921": ("San Diego", "CA"),
    "958": ("Sacramento", "CA"),
    "331": ("Miami", "FL"),
    "328": ("Orlando", "FL"),
    "336": ("Tampa", "FL"),
    "980": ("Seattle", "WA"),
    "992": ("Spokane", "WA"),
    "802": ("Denver", "CO"),
    "850": ("Phoenix", "AZ"),
    "891": ("Las Vegas", "NV"),
    "972": ("Portland", "OR"),
    "303": ("Atlanta", "GA"),
    "482": ("Detroit", "MI"),
    "554": ("Minneapolis", "MN"),
    "632": ("St. Louis", "MO"),
}

_PREFIXES = tuple(GAZETTEER)

#: age-group bands (paper: age_group extracted from age)
AGE_GROUPS: tuple[tuple[str, int, int], ...] = (
    ("teen", 0, 17),
    ("young", 18, 29),
    ("adult", 30, 49),
    ("senior", 50, 200),
)


def location_of(zip_code: str | int) -> tuple[str, str]:
    """(city, state) for a zip code; unknown prefixes hash into the gazetteer.

    Hashing keeps the mapping total and deterministic, so any generated zip
    code enriches to a real gazetteer entry — the same role the paper's
    external zip database plays.
    """
    text = str(zip_code).strip()
    prefix = text[:3]
    if prefix in GAZETTEER:
        return GAZETTEER[prefix]
    index = sum(ord(c) for c in text) % len(_PREFIXES)
    return GAZETTEER[_PREFIXES[index]]


def age_group_of(age: int) -> str:
    """Age band of an integer age (paper's age_group enrichment)."""
    for label, low, high in AGE_GROUPS:
        if low <= age <= high:
            return label
    raise ValueError(f"age out of range: {age}")
