"""Dataset generators and study workloads (S16)."""

from .hotels import HOTEL_DIMENSIONS, HOTEL_EFFECTS, hotels
from .insights import (
    Insight,
    ground_truth_insights,
    insights_from_effects,
    verify_insight,
)
from .irregular import IrregularGroup, inject_irregular_groups
from .movielens import GENRES, MOVIELENS_EFFECTS, OCCUPATIONS, movielens
from .synthetic import (
    CategoricalAttribute,
    GroupEffect,
    MultiValuedAttribute,
    NumericAttribute,
    assemble_database,
    generate_entities,
    generate_ratings,
)
from .yelp import CUISINES, NEIGHBORHOODS, YELP_DIMENSIONS, YELP_EFFECTS, yelp
from .zipcodes import AGE_GROUPS, GAZETTEER, age_group_of, location_of

__all__ = [
    "AGE_GROUPS",
    "CUISINES",
    "CategoricalAttribute",
    "GAZETTEER",
    "GENRES",
    "GroupEffect",
    "HOTEL_DIMENSIONS",
    "HOTEL_EFFECTS",
    "Insight",
    "IrregularGroup",
    "MOVIELENS_EFFECTS",
    "MultiValuedAttribute",
    "NEIGHBORHOODS",
    "NumericAttribute",
    "OCCUPATIONS",
    "YELP_DIMENSIONS",
    "YELP_EFFECTS",
    "age_group_of",
    "assemble_database",
    "generate_entities",
    "generate_ratings",
    "ground_truth_insights",
    "hotels",
    "inject_irregular_groups",
    "insights_from_effects",
    "location_of",
    "movielens",
    "verify_insight",
    "yelp",
]
