"""Generic synthetic subjective-database generation.

The dataset-specific generators (movielens / yelp / hotels) are thin
configurations of the machinery here:

* :class:`CategoricalAttribute` / :class:`MultiValuedAttribute` — attribute
  declarations with Zipf-skewed value frequencies (real demographic and
  catalog attributes are heavy-tailed, which matters for pruning behaviour);
* :class:`GroupEffect` — a latent shift of one rating dimension for records
  touching a given attribute-value (the mechanism behind both the injected
  "insights" the user study looks for and plain dataset texture);
* :func:`generate_ratings` — the latent-factor rating model: score =
  round(base + user bias + item quality + Σ matching group effects + noise)
  clipped to the scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..db.schema import AttributeSpec, TableSchema
from ..db.table import Table
from ..db.types import ColumnType
from ..model.database import Side, SubjectiveDatabase

__all__ = [
    "CategoricalAttribute",
    "MultiValuedAttribute",
    "NumericAttribute",
    "GroupEffect",
    "generate_entities",
    "generate_ratings",
    "assemble_database",
]


@dataclass(frozen=True)
class CategoricalAttribute:
    """A categorical attribute with Zipf-skewed value draw."""

    name: str
    values: tuple[str, ...]
    zipf_s: float = 1.1
    explorable: bool = True

    def sample(self, n: int, rng: np.random.Generator) -> list[str]:
        ranks = np.arange(1, len(self.values) + 1, dtype=np.float64)
        weights = ranks**-self.zipf_s
        weights /= weights.sum()
        draws = rng.choice(len(self.values), size=n, p=weights)
        return [self.values[int(i)] for i in draws]


@dataclass(frozen=True)
class MultiValuedAttribute:
    """A set-valued attribute (e.g. cuisines): 1..max_members members/row."""

    name: str
    values: tuple[str, ...]
    max_members: int = 2
    zipf_s: float = 1.1
    explorable: bool = True

    def sample(self, n: int, rng: np.random.Generator) -> list[frozenset[str]]:
        ranks = np.arange(1, len(self.values) + 1, dtype=np.float64)
        weights = ranks**-self.zipf_s
        weights /= weights.sum()
        rows: list[frozenset[str]] = []
        for __ in range(n):
            size = int(rng.integers(1, self.max_members + 1))
            size = min(size, len(self.values))
            members = rng.choice(len(self.values), size=size, replace=False, p=weights)
            rows.append(frozenset(self.values[int(i)] for i in members))
        return rows


@dataclass(frozen=True)
class NumericAttribute:
    """A numeric attribute drawn uniformly over integer ``low..high``."""

    name: str
    low: int
    high: int
    explorable: bool = True

    def sample(self, n: int, rng: np.random.Generator) -> list[int]:
        return rng.integers(self.low, self.high + 1, size=n).tolist()


Attribute = CategoricalAttribute | MultiValuedAttribute | NumericAttribute


@dataclass(frozen=True)
class GroupEffect:
    """A latent rating shift for one attribute-value on one dimension.

    ``delta`` is added (pre-rounding) to every rating record whose entity
    carries ``value`` for ``attribute``.  These are the dataset's ground
    truth: a large negative delta is a findable "insight".
    """

    side: Side
    attribute: str
    value: str
    dimension: str
    delta: float

    def describe(self) -> str:
        direction = "lower" if self.delta < 0 else "higher"
        return (
            f"{self.side.value}s with {self.attribute}={self.value} give "
            f"{direction} {self.dimension} scores (Δ={self.delta:+.2f})"
        )


def _column_type(attribute: Attribute) -> ColumnType:
    if isinstance(attribute, MultiValuedAttribute):
        return ColumnType.MULTI_VALUED
    if isinstance(attribute, NumericAttribute):
        return ColumnType.NUMERIC
    return ColumnType.CATEGORICAL


def generate_entities(
    n: int,
    key: str,
    attributes: Sequence[Attribute],
    rng: np.random.Generator,
) -> Table:
    """An entity table with ids ``0..n-1`` and sampled attribute columns."""
    specs = [AttributeSpec(key, ColumnType.NUMERIC, explorable=False)]
    data: dict[str, list] = {key: list(range(n))}
    for attribute in attributes:
        specs.append(
            AttributeSpec(attribute.name, _column_type(attribute), attribute.explorable)
        )
        data[attribute.name] = attribute.sample(n, rng)
    return Table.from_columns(data, TableSchema(tuple(specs)))


def _effect_vector(
    table: Table, effects: Sequence[GroupEffect], side: Side, dimension: str
) -> np.ndarray:
    """Per-entity summed effect deltas for one side and dimension."""
    out = np.zeros(len(table), dtype=np.float64)
    for effect in effects:
        if effect.side is not side or effect.dimension != dimension:
            continue
        mask = table.column(effect.attribute).equals_mask(effect.value)
        out[mask] += effect.delta
    return out


def generate_ratings(
    reviewers: Table,
    items: Table,
    n_ratings: int,
    dimensions: Sequence[str],
    rng: np.random.Generator,
    effects: Sequence[GroupEffect] = (),
    scale: int = 5,
    base: float = 3.4,
    user_bias_sd: float = 0.45,
    item_quality_sd: float = 0.6,
    noise_sd: float = 0.9,
    user_key: str = "user_id",
    item_key: str = "item_id",
    user_activity_zipf: float = 0.8,
) -> Table:
    """The rating-record table of the latent-factor model.

    Reviewer activity is Zipf-skewed (a few prolific reviewers, a long
    tail), item popularity likewise; both match the shape of the public
    rating datasets the paper uses.
    """
    n_users, n_items = len(reviewers), len(items)
    user_ranks = np.arange(1, n_users + 1, dtype=np.float64)
    user_p = user_ranks**-user_activity_zipf
    user_p /= user_p.sum()
    item_ranks = np.arange(1, n_items + 1, dtype=np.float64)
    item_p = item_ranks**-0.9
    item_p /= item_p.sum()

    user_idx = rng.choice(n_users, size=n_ratings, p=user_p)
    item_idx = rng.choice(n_items, size=n_ratings, p=item_p)

    user_bias = rng.normal(0.0, user_bias_sd, size=n_users)
    data: dict[str, list] = {
        user_key: user_idx.tolist(),
        item_key: item_idx.tolist(),
    }
    specs = [
        AttributeSpec(user_key, ColumnType.NUMERIC, explorable=False),
        AttributeSpec(item_key, ColumnType.NUMERIC, explorable=False),
    ]
    for dimension in dimensions:
        item_quality = rng.normal(0.0, item_quality_sd, size=n_items)
        user_effect = _effect_vector(reviewers, effects, Side.REVIEWER, dimension)
        item_effect = _effect_vector(items, effects, Side.ITEM, dimension)
        raw = (
            base
            + user_bias[user_idx]
            + item_quality[item_idx]
            + user_effect[user_idx]
            + item_effect[item_idx]
            + rng.normal(0.0, noise_sd, size=n_ratings)
        )
        scores = np.clip(np.rint(raw), 1, scale).astype(np.int64)
        data[dimension] = scores.tolist()
        specs.append(AttributeSpec(dimension, ColumnType.NUMERIC, explorable=False))
    return Table.from_columns(data, TableSchema(tuple(specs)))


def assemble_database(
    name: str,
    reviewers: Table,
    items: Table,
    ratings: Table,
    dimensions: Sequence[str],
    scale: int = 5,
) -> SubjectiveDatabase:
    """Bundle generated tables into a :class:`SubjectiveDatabase`."""
    return SubjectiveDatabase(
        reviewers,
        items,
        ratings,
        tuple(dimensions),
        scale=scale,
        name=name,
    )
