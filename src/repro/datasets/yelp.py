"""Yelp-like restaurant dataset generator (paper §5.1, Table 2).

At ``scale_factor=1.0`` the statistics match the paper's Table 2 row:
150 318 reviewers, 93 restaurants, 200 500 rating records, 4 rating
dimensions (overall, food, service, ambiance), 24 explorable attributes
with ≤ 13 values each.

Two generation paths:

* the default draws per-dimension scores from the latent-factor model;
* ``via_text=True`` additionally synthesises a review text per record and
  *re-extracts* the food/service/ambiance scores through the sentiment
  pipeline (:mod:`repro.text`) exactly as the paper did with VADER over
  real Yelp reviews — slower, used by tests and examples at small scale.
"""

from __future__ import annotations

import numpy as np

from ..db.schema import AttributeSpec, TableSchema
from ..db.table import Table
from ..db.types import ColumnType
from ..model.database import Side, SubjectiveDatabase
from ..text.extraction import DimensionExtractor
from ..text.reviews import DIMENSION_KEYWORDS, ReviewGenerator
from .synthetic import (
    CategoricalAttribute,
    GroupEffect,
    MultiValuedAttribute,
    generate_entities,
    generate_ratings,
)

__all__ = ["yelp", "YELP_EFFECTS", "YELP_DIMENSIONS", "CUISINES", "NEIGHBORHOODS"]

YELP_DIMENSIONS: tuple[str, ...] = ("overall", "food", "service", "ambiance")

CUISINES: tuple[str, ...] = (
    "American",
    "Italian",
    "Mexican",
    "Japanese",
    "Chinese",
    "Thai",
    "Indian",
    "French",
    "Mediterranean",
    "Korean",
    "Vietnamese",
    "Barbeque",
    "Seafood",
)

NEIGHBORHOODS: tuple[str, ...] = (
    "Williamsburg",
    "SoHo",
    "Kips Bay",
    "Tribeca",
    "Chelsea",
    "Midtown",
    "Harlem",
    "Astoria",
    "Bushwick",
    "Park Slope",
    "Greenpoint",
    "East Village",
    "Financial District",
)

_REVIEWER_ATTRS = (
    CategoricalAttribute("gender", ("M", "F", "Unspecified"), zipf_s=0.4),
    CategoricalAttribute("age_group", ("young", "adult", "senior", "teen"), zipf_s=0.6),
    CategoricalAttribute(
        "occupation",
        (
            "student",
            "programmer",
            "teacher",
            "nurse",
            "chef",
            "artist",
            "lawyer",
            "accountant",
            "manager",
            "designer",
            "journalist",
            "musician",
            "retired",
        ),
        zipf_s=0.7,
    ),
    CategoricalAttribute(
        "state",
        ("NY", "NJ", "CT", "PA", "MA", "CA", "TX", "FL", "IL", "WA", "OH", "MI", "GA"),
        zipf_s=1.3,
    ),
    CategoricalAttribute(
        "home_city",
        (
            "NYC",
            "Jersey City",
            "Hoboken",
            "Stamford",
            "Philadelphia",
            "Boston",
            "Yonkers",
            "Newark",
            "White Plains",
            "New Haven",
            "Hartford",
            "Albany",
            "Princeton",
        ),
        zipf_s=1.4,
    ),
    CategoricalAttribute(
        "yelping_since",
        tuple(str(y) for y in range(2010, 2020)),
        zipf_s=0.5,
    ),
    CategoricalAttribute("elite", ("no", "yes"), zipf_s=1.5),
    CategoricalAttribute("fans_band", ("0", "1-10", "11-50", "50+"), zipf_s=1.2),
    CategoricalAttribute(
        "review_count_band", ("1-10", "11-50", "51-200", "200+"), zipf_s=1.0
    ),
    CategoricalAttribute(
        "avg_stars_band", ("1-2", "2-3", "3-4", "4-5"), zipf_s=0.6
    ),
)

_ITEM_ATTRS = (
    MultiValuedAttribute("cuisine", CUISINES, max_members=2, zipf_s=0.8),
    CategoricalAttribute("neighborhood", NEIGHBORHOODS, zipf_s=0.7),
    CategoricalAttribute(
        "city", ("NYC", "Brooklyn", "Queens", "Bronx", "Staten Island", "Hoboken"),
        zipf_s=1.1,
    ),
    CategoricalAttribute("state", ("NY", "NJ", "CT", "PA", "MA"), zipf_s=1.6),
    CategoricalAttribute("price_range", ("$", "$$", "$$$", "$$$$"), zipf_s=0.9),
    CategoricalAttribute("noise_level", ("quiet", "average", "loud"), zipf_s=0.5),
    CategoricalAttribute("parking", ("street", "lot"), zipf_s=0.5),
    CategoricalAttribute("wifi", ("no", "free"), zipf_s=0.4),
    CategoricalAttribute("alcohol", ("none", "beer_and_wine", "full_bar"), zipf_s=0.5),
    CategoricalAttribute("outdoor_seating", ("no", "yes"), zipf_s=0.4),
    CategoricalAttribute("good_for_groups", ("yes", "no"), zipf_s=0.4),
    CategoricalAttribute("reservations", ("no", "yes"), zipf_s=0.4),
    CategoricalAttribute("delivery", ("yes", "no"), zipf_s=0.4),
    CategoricalAttribute("credit_cards", ("yes", "no"), zipf_s=1.8),
)

#: latent structure (also the insight ground truth for the user study)
YELP_EFFECTS: tuple[GroupEffect, ...] = (
    GroupEffect(Side.ITEM, "neighborhood", "Williamsburg", "food", +0.60),
    GroupEffect(Side.ITEM, "neighborhood", "Midtown", "food", -0.40),
    GroupEffect(Side.ITEM, "cuisine", "Japanese", "service", +0.55),
    GroupEffect(Side.ITEM, "cuisine", "Barbeque", "ambiance", -0.35),
    GroupEffect(Side.ITEM, "price_range", "$$$$", "service", +0.40),
    GroupEffect(Side.ITEM, "noise_level", "loud", "ambiance", -0.60),
    GroupEffect(Side.REVIEWER, "gender", "F", "ambiance", -0.45),
    GroupEffect(Side.REVIEWER, "occupation", "programmer", "overall", -0.40),
    GroupEffect(Side.REVIEWER, "age_group", "young", "food", +0.30),
    GroupEffect(Side.REVIEWER, "elite", "yes", "overall", -0.25),
)


def _reextract_via_text(
    ratings: Table, seed: int
) -> Table:
    """Regenerate food/service/ambiance by synthesising + mining review text.

    For each record a review is generated from the latent scores, then the
    scores are *re-extracted* with the sentiment pipeline, replacing the
    latent values — so the stored ratings carry the extraction noise real
    VADER-mined ratings would.
    """
    text_dims = ("food", "service", "ambiance")
    generator = ReviewGenerator(text_dims, seed=seed)
    extractor = DimensionExtractor(
        {d: DIMENSION_KEYWORDS[d] for d in text_dims}
    )
    latent = {d: ratings.numeric(d).astype(np.int64) for d in text_dims}
    mined: dict[str, list[float | None]] = {d: [] for d in text_dims}
    for row in range(len(ratings)):
        review = generator.review(
            {d: int(latent[d][row]) for d in text_dims}
        )
        extracted = extractor.extract(review)
        for d in text_dims:
            mined[d].append(extracted[d])
    out = ratings
    for d in text_dims:
        from ..db.column import NumericColumn

        out = out.replace_column(d, NumericColumn.from_values(mined[d]))
    return out


def yelp(
    seed: int = 0,
    scale_factor: float = 1.0,
    via_text: bool = False,
) -> SubjectiveDatabase:
    """Generate the Yelp-like database (restaurants in and around NYC).

    ``scale_factor`` scales reviewers and rating records (restaurants stay
    at the paper's 93 until the factor drops below ~0.5).  ``via_text``
    routes the subjective dimensions through the review-text pipeline.
    """
    if scale_factor <= 0:
        raise ValueError(f"scale_factor must be positive, got {scale_factor}")
    rng = np.random.default_rng(seed)
    n_users = max(50, int(round(150_318 * scale_factor)))
    # the paper's 93 restaurants are kept at every scale: the item table is
    # tiny anyway, and irregular item groups (≥ 5 of 93 restaurants) only
    # stay "irregular" when the catalog keeps its full breadth
    n_items = 93
    n_ratings = max(500, int(round(200_500 * scale_factor)))
    reviewers = generate_entities(n_users, "user_id", _REVIEWER_ATTRS, rng)
    items = generate_entities(n_items, "item_id", _ITEM_ATTRS, rng)
    # restaurants are few (93 at full scale), so per-item quality noise is
    # kept below the planted group effects or it would drown them
    ratings = generate_ratings(
        reviewers,
        items,
        n_ratings,
        YELP_DIMENSIONS,
        rng,
        effects=YELP_EFFECTS,
        base=3.4,
        item_quality_sd=0.3,
    )
    if via_text:
        ratings = _reextract_via_text(ratings, seed)
    return SubjectiveDatabase(
        reviewers, items, ratings, YELP_DIMENSIONS, scale=5, name="yelp"
    )
