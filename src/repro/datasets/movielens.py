"""MovieLens-100K-like dataset generator (paper §5.1, Table 2).

At ``scale_factor=1.0`` the statistics match the paper's Table 2 row:
943 reviewers, 1682 movies, 100 000 ratings, 1 rating dimension.  The
reviewer table carries MovieLens' native attributes (age, gender,
occupation, zip code) plus the paper's enrichments (city / state from zip,
age group from age); the movie table carries genres plus the enriched
release year and decade.

``MOVIELENS_EFFECTS`` is the generator's latent ground truth — the
structural facts a competent explorer can rediscover; the user-study
insights (:mod:`repro.datasets.insights`) are drawn from it.
"""

from __future__ import annotations

import numpy as np

from ..db.schema import AttributeSpec, TableSchema
from ..db.table import Table
from ..db.types import ColumnType
from ..model.database import Side, SubjectiveDatabase
from .synthetic import GroupEffect, MultiValuedAttribute, generate_ratings
from .zipcodes import GAZETTEER, age_group_of, location_of

__all__ = ["movielens", "MOVIELENS_EFFECTS", "OCCUPATIONS", "GENRES"]

OCCUPATIONS: tuple[str, ...] = (
    "student",
    "educator",
    "engineer",
    "programmer",
    "administrator",
    "writer",
    "librarian",
    "technician",
    "executive",
    "scientist",
    "artist",
    "marketing",
    "healthcare",
    "entertainment",
    "retired",
    "lawyer",
    "salesman",
    "doctor",
    "homemaker",
    "none",
    "other",
)

GENRES: tuple[str, ...] = (
    "Drama",
    "Comedy",
    "Action",
    "Thriller",
    "Romance",
    "Adventure",
    "Children",
    "Crime",
    "Sci-Fi",
    "Horror",
    "War",
    "Mystery",
    "Musical",
    "Documentary",
    "Animation",
    "Western",
    "Film-Noir",
    "Fantasy",
)

#: latent structure of the generated data (also the insight ground truth)
MOVIELENS_EFFECTS: tuple[GroupEffect, ...] = (
    GroupEffect(Side.ITEM, "genre", "Horror", "rating", -0.55),
    GroupEffect(Side.ITEM, "genre", "Documentary", "rating", +0.45),
    GroupEffect(Side.ITEM, "genre", "Film-Noir", "rating", +0.50),
    GroupEffect(Side.ITEM, "release_decade", "1990s", "rating", -0.25),
    GroupEffect(Side.ITEM, "release_decade", "1940s", "rating", +0.40),
    GroupEffect(Side.REVIEWER, "occupation", "programmer", "rating", -0.35),
    GroupEffect(Side.REVIEWER, "occupation", "retired", "rating", +0.35),
    GroupEffect(Side.REVIEWER, "age_group", "teen", "rating", +0.25),
)


def _reviewers(n_users: int, rng: np.random.Generator) -> Table:
    ages = rng.integers(13, 74, size=n_users)
    genders = rng.choice(["M", "F"], size=n_users, p=[0.71, 0.29])
    occ_ranks = np.arange(1, len(OCCUPATIONS) + 1, dtype=np.float64) ** -0.8
    occ_p = occ_ranks / occ_ranks.sum()
    occupations = rng.choice(OCCUPATIONS, size=n_users, p=occ_p)
    prefixes = list(GAZETTEER)
    zips = [
        f"{prefixes[int(i)]}{rng.integers(0, 100):02d}"
        for i in rng.integers(0, len(prefixes), size=n_users)
    ]
    cities = [location_of(z)[0] for z in zips]
    states = [location_of(z)[1] for z in zips]
    schema = TableSchema.of(
        AttributeSpec("user_id", ColumnType.NUMERIC, explorable=False),
        AttributeSpec("age", ColumnType.NUMERIC, explorable=False),
        AttributeSpec("gender", ColumnType.CATEGORICAL),
        AttributeSpec("occupation", ColumnType.CATEGORICAL),
        AttributeSpec("zip_code", ColumnType.CATEGORICAL, explorable=False),
        AttributeSpec("city", ColumnType.CATEGORICAL),
        AttributeSpec("state", ColumnType.CATEGORICAL),
        AttributeSpec("age_group", ColumnType.CATEGORICAL),
    )
    return Table.from_columns(
        {
            "user_id": list(range(n_users)),
            "age": ages.tolist(),
            "gender": genders.tolist(),
            "occupation": occupations.tolist(),
            "zip_code": zips,
            "city": cities,
            "state": states,
            "age_group": [age_group_of(int(a)) for a in ages],
        },
        schema,
    )


def _items(n_items: int, rng: np.random.Generator) -> Table:
    genre_attr = MultiValuedAttribute("genre", GENRES, max_members=3, zipf_s=0.9)
    years = rng.integers(1940, 1999, size=n_items)
    # skew towards the 90s like MovieLens-100K
    recent = rng.random(size=n_items) < 0.6
    years[recent] = rng.integers(1990, 1999, size=int(recent.sum()))
    decades = [f"{(int(y) // 10) * 10}s" for y in years]
    schema = TableSchema.of(
        AttributeSpec("item_id", ColumnType.NUMERIC, explorable=False),
        AttributeSpec("genre", ColumnType.MULTI_VALUED),
        AttributeSpec("release_year", ColumnType.NUMERIC),
        AttributeSpec("release_decade", ColumnType.CATEGORICAL),
    )
    return Table.from_columns(
        {
            "item_id": list(range(n_items)),
            "genre": genre_attr.sample(n_items, rng),
            "release_year": years.tolist(),
            "release_decade": decades,
        },
        schema,
    )


def movielens(seed: int = 0, scale_factor: float = 1.0) -> SubjectiveDatabase:
    """Generate the MovieLens-like database.

    ``scale_factor`` scales reviewers, movies and ratings together (1.0 =
    the paper's Table 2 sizes; benches typically use 0.1–0.3 for speed).
    """
    if scale_factor <= 0:
        raise ValueError(f"scale_factor must be positive, got {scale_factor}")
    rng = np.random.default_rng(seed)
    n_users = max(20, int(round(943 * scale_factor)))
    n_items = max(30, int(round(1682 * scale_factor)))
    n_ratings = max(500, int(round(100_000 * scale_factor)))
    reviewers = _reviewers(n_users, rng)
    items = _items(n_items, rng)
    ratings = generate_ratings(
        reviewers,
        items,
        n_ratings,
        ("rating",),
        rng,
        effects=MOVIELENS_EFFECTS,
        base=3.5,
    )
    return SubjectiveDatabase(
        reviewers, items, ratings, ("rating",), scale=5, name="movielens"
    )
