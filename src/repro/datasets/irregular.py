"""Irregular-group injection (paper §5.2, Scenario I).

An *irregular group* is a reviewer (or item) group described by two or
three attribute-value pairs, containing at least five entities, whose
rating records for one dimension have all been set to the minimal score 1.
The user-study task is to find such groups; this module plants them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..db.column import NumericColumn
from ..exceptions import ConfigurationError
from ..model.database import Side, SubjectiveDatabase
from ..model.groups import AVPair

__all__ = ["IrregularGroup", "inject_irregular_groups"]


@dataclass(frozen=True)
class IrregularGroup:
    """Ground-truth record of one injected irregular group.

    ``record_rows`` indexes the forced rating records in the modified
    database's rating table (row order is preserved by injection), so
    exposure tests can measure how much of a displayed subgroup consists
    of the irregular block.
    """

    side: Side
    pairs: tuple[AVPair, ...]
    dimension: str
    entity_ids: tuple[int, ...]
    n_records: int
    record_rows: frozenset[int] = frozenset()

    def describe(self) -> str:
        desc = " ∧ ".join(f"{p.attribute}={p.value}" for p in self.pairs)
        return (
            f"irregular {self.side.value} group [{desc}] — all {self.dimension} "
            f"scores forced to 1 ({len(self.entity_ids)} entities, "
            f"{self.n_records} records)"
        )


def _sample_description(
    database: SubjectiveDatabase,
    side: Side,
    rng: np.random.Generator,
    n_pairs: int,
    min_entities: int,
    max_fraction: float,
    max_record_fraction: float,
    max_slice_fraction: float = 1.0,
    attempts: int = 1500,
) -> tuple[tuple[AVPair, ...], np.ndarray] | None:
    """Draw a random conjunctive description matching a small entity set.

    Besides the entity-count bounds, the group's rating records must stay
    below ``max_record_fraction`` of the database — an anomaly spanning a
    fifth of all records is not "irregular", it is the dataset.

    ``max_slice_fraction`` additionally caps how much of each *single-pair*
    slice the group's records may cover.  At 1.0 (the default) there is no
    constraint; below it, the anomaly is guaranteed to be diluted in every
    one-attribute aggregation — no rating map at the top level can give it
    away, so finding it genuinely requires multi-step exploration.
    """
    table = database.entity_table(side)
    attributes = list(database.explorable_attributes(side))
    if len(attributes) < n_pairs:
        return None
    catalog = database.catalog(side)
    for __ in range(attempts):
        chosen_attrs = rng.choice(len(attributes), size=n_pairs, replace=False)
        pairs = []
        pair_masks = []
        mask = np.ones(len(table), dtype=bool)
        for index in chosen_attrs:
            attribute = attributes[int(index)]
            domain = catalog.domain(attribute)
            if domain.cardinality == 0:
                break
            value = domain.values[int(rng.integers(0, domain.cardinality))]
            pairs.append(AVPair(side, attribute, value))
            pair_mask = table.column(attribute).equals_mask(value)
            pair_masks.append(pair_mask)
            mask &= pair_mask
        else:
            count = int(mask.sum())
            # on tiny tables the fraction cap can dip below the minimum
            # group size; always allow groups up to twice the minimum
            upper = max(2 * min_entities, int(max_fraction * len(table)))
            if not min_entities <= count <= upper:
                continue
            n_records = int(
                database.rating_rows_for_entities(side, mask).sum()
            )
            if not 0 < n_records <= max_record_fraction * database.n_ratings:
                continue
            if max_slice_fraction < 1.0:
                diluted = True
                for pair_mask in pair_masks:
                    slice_records = int(
                        database.rating_rows_for_entities(side, pair_mask).sum()
                    )
                    if n_records > max_slice_fraction * slice_records:
                        diluted = False
                        break
                if not diluted:
                    continue
            return tuple(sorted(pairs)), mask
    return None


def inject_irregular_groups(
    database: SubjectiveDatabase,
    n_reviewer_groups: int = 1,
    n_item_groups: int = 1,
    seed: int = 0,
    min_entities: int = 5,
    max_fraction: float = 0.1,
    max_record_fraction: float = 0.08,
    max_slice_fraction: float = 1.0,
    n_pairs_choices: tuple[int, ...] | dict[Side, tuple[int, ...]] = (2, 3),
) -> tuple[SubjectiveDatabase, list[IrregularGroup]]:
    """Plant irregular groups and return (new database, ground truth).

    Each group's description uses 2 or 3 attribute-value pairs (paper
    §5.2) drawn uniformly from ``n_pairs_choices`` (a dict gives per-side
    choices); every rating record of a member entity has its chosen
    dimension forced to 1.  The original database is not modified.
    """
    rng = np.random.default_rng(seed)
    if not isinstance(n_pairs_choices, dict):
        n_pairs_choices = {
            Side.REVIEWER: tuple(n_pairs_choices),
            Side.ITEM: tuple(n_pairs_choices),
        }
    scores = {
        dim: database.dimension_scores(dim).copy() for dim in database.dimensions
    }
    planted: list[IrregularGroup] = []
    plan = [(Side.REVIEWER, n_reviewer_groups), (Side.ITEM, n_item_groups)]
    for side, n_groups in plan:
        for __ in range(n_groups):
            side_choices = n_pairs_choices[side]
            n_pairs = int(side_choices[rng.integers(0, len(side_choices))])
            found = _sample_description(
                database,
                side,
                rng,
                n_pairs,
                min_entities,
                max_fraction,
                max_record_fraction,
                max_slice_fraction,
            )
            if found is None:
                raise ConfigurationError(
                    f"could not find an irregular {side.value} group with "
                    f"{min_entities}+ entities; relax min_entities/max_fraction"
                )
            pairs, entity_mask = found
            dimension = database.dimensions[
                int(rng.integers(0, len(database.dimensions)))
            ]
            record_mask = database.rating_rows_for_entities(side, entity_mask)
            scores[dimension][record_mask] = 1.0
            key = database.key(side)
            ids = database.entity_table(side).numeric(key)[entity_mask]
            planted.append(
                IrregularGroup(
                    side=side,
                    pairs=pairs,
                    dimension=dimension,
                    entity_ids=tuple(int(i) for i in ids),
                    n_records=int(record_mask.sum()),
                    record_rows=frozenset(
                        int(r) for r in np.flatnonzero(record_mask)
                    ),
                )
            )

    ratings = database.ratings
    for dimension in database.dimensions:
        ratings = ratings.replace_column(
            dimension, NumericColumn(scores[dimension])
        )
    modified = SubjectiveDatabase(
        database.reviewers,
        database.items,
        ratings,
        database.dimensions,
        scale=database.scale,
        user_key=database.key(Side.REVIEWER),
        item_key=database.key(Side.ITEM),
        name=f"{database.name}+irregular",
    )
    return modified, planted
