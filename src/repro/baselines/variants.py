"""Scalability baseline configurations (paper §5.1, items I–V).

Each factory returns a :class:`~repro.core.engine.SubDExConfig` that
restricts full SubDEx along one axis:

* **No-Pruning** — phased framework runs, nothing is ever discarded;
* **CI Pruning** — confidence-interval pruning only;
* **MAB Pruning** — multi-armed-bandit pruning only;
* **No Parallelism** — recommendations scored one rating group at a time;
* **Naive** — no pruning *and* no parallelism.

``all_variants`` maps the display names used in the paper's Figures 10–11
to their configurations.
"""

from __future__ import annotations

from dataclasses import replace

from ..core.engine import SubDExConfig
from ..core.generator import GeneratorConfig
from ..core.pruning import PruningStrategy
from ..core.recommend import RecommenderConfig

__all__ = [
    "subdex_config",
    "no_pruning_config",
    "ci_pruning_config",
    "mab_pruning_config",
    "no_parallelism_config",
    "naive_config",
    "all_variants",
]


def _base(**generator_overrides) -> SubDExConfig:
    return SubDExConfig(
        generator=replace(GeneratorConfig(), **generator_overrides),
        recommender=RecommenderConfig(),
    )


def subdex_config() -> SubDExConfig:
    """Full SubDEx: combined pruning + parallel recommendation scoring."""
    return _base(pruning=PruningStrategy.COMBINED)


def no_pruning_config() -> SubDExConfig:
    """Variant I: phased execution without any pruning."""
    return _base(pruning=PruningStrategy.NONE)


def ci_pruning_config() -> SubDExConfig:
    """Variant II: confidence-interval pruning only."""
    return _base(pruning=PruningStrategy.CONFIDENCE_INTERVAL)


def mab_pruning_config() -> SubDExConfig:
    """Variant III: multi-armed-bandit pruning only."""
    return _base(pruning=PruningStrategy.MAB)


def no_parallelism_config() -> SubDExConfig:
    """Variant IV: sequential Recommendation Builder."""
    config = subdex_config()
    return replace(
        config, recommender=replace(config.recommender, parallel=False)
    )


def naive_config() -> SubDExConfig:
    """Variant V: no pruning and no parallelism."""
    config = no_pruning_config()
    return replace(
        config, recommender=replace(config.recommender, parallel=False)
    )


def all_variants() -> dict[str, SubDExConfig]:
    """Paper-name → configuration, in the order Figures 10–11 plot them."""
    return {
        "SubDEx": subdex_config(),
        "No-Pruning": no_pruning_config(),
        "CI Pruning": ci_pruning_config(),
        "MAB Pruning": mab_pruning_config(),
        "No Parallelism": no_parallelism_config(),
        "Naive": naive_config(),
    }
