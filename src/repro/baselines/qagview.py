"""Qagview baseline — Wen et al. [58] (paper §5.1).

Qagview summarises a query result with k diverse clusters, each described
by a conjunctive pattern, such that (a) together the clusters cover at
least a coverage threshold of the records and (b) every two cluster
patterns differ in at least ``D`` attribute-values.

Paper settings (§5.1): record values all 1 (plain counting coverage),
threshold = |g_R| / 2, D = 2.  The greedy realisation repeatedly adds the
pattern with the largest marginal coverage among those at distance ≥ D from
all chosen patterns, until k clusters are chosen or the threshold is met
and no eligible pattern remains.  Each cluster becomes a drill-down
next-action operation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from ..model.groups import RatingGroup
from ..model.operations import Operation
from .patterns import JoinedView, Pattern, pattern_to_operation

__all__ = ["QagviewConfig", "Qagview"]


@dataclass(frozen=True)
class QagviewConfig:
    """Knobs of the Qagview baseline (defaults = the paper's settings)."""

    k: int = 3
    coverage_fraction: float = 0.5  # threshold |g_R| / 2
    min_distance: int = 2  # D
    max_pattern_size: int = 2
    pair_pool: int = 15
    min_support: int = 5
    max_values_per_attribute: int = 20


class Qagview:
    """Greedy diverse-cluster summary over a rating group."""

    def __init__(self, config: QagviewConfig | None = None) -> None:
        self._config = config or QagviewConfig()

    @property
    def config(self) -> QagviewConfig:
        return self._config

    def clusters(self, group: RatingGroup) -> list[tuple[Pattern, int]]:
        """The greedy cluster list: ``[(pattern, covered_records), ...]``."""
        config = self._config
        view = JoinedView(group, config.max_values_per_attribute)
        singles = list(view.single_patterns(config.min_support))
        candidates: list[tuple[Pattern, np.ndarray]] = list(singles)
        if config.max_pattern_size >= 2 and singles:
            top = sorted(singles, key=lambda c: -int(c[1].sum()))[: config.pair_pool]
            for (p1, m1), (p2, m2) in itertools.combinations(top, 2):
                slots1 = {(p.side, p.attribute) for p in p1.pairs}
                slots2 = {(p.side, p.attribute) for p in p2.pairs}
                if slots1 & slots2:
                    continue
                mask = m1 & m2
                if int(mask.sum()) >= config.min_support:
                    candidates.append((Pattern(p1.pairs + p2.pairs), mask))

        target = config.coverage_fraction * len(view)
        covered = np.zeros(len(view), dtype=bool)
        chosen: list[tuple[Pattern, int]] = []
        remaining = list(candidates)
        while len(chosen) < config.k:
            best_gain = 0
            best_index = -1
            for index, (pattern, mask) in enumerate(remaining):
                if any(
                    pattern.distance(existing) < config.min_distance
                    for existing, __ in chosen
                ):
                    continue
                gain = int((mask & ~covered).sum())
                if gain > best_gain:
                    best_gain = gain
                    best_index = index
            if best_index < 0:
                break
            pattern, mask = remaining.pop(best_index)
            covered |= mask
            chosen.append((pattern, int(mask.sum())))
            if int(covered.sum()) >= target and len(chosen) >= config.k:
                break
        return chosen

    def recommend(self, group: RatingGroup, k: int | None = None) -> list[Operation]:
        """Top-k next-action operations (all drill-downs, by construction)."""
        if k is not None and k != self._config.k:
            qv = Qagview(
                QagviewConfig(
                    k=k,
                    coverage_fraction=self._config.coverage_fraction,
                    min_distance=self._config.min_distance,
                    max_pattern_size=self._config.max_pattern_size,
                    pair_pool=self._config.pair_pool,
                    min_support=self._config.min_support,
                    max_values_per_attribute=self._config.max_values_per_attribute,
                )
            )
            return qv.recommend(group)
        return [
            pattern_to_operation(group, pattern)
            for pattern, __ in self.clusters(group)
        ]
