"""Shared pattern machinery for the SDD and Qagview baselines.

Both baselines operate on the *joined* view of a rating group — each rating
record is described by every explorable reviewer and item attribute (paper
§5.1: "we joined the item, reviewer and rating tables") — and both emit
conjunctive attribute-value *patterns* that translate into drill-down
operations over the current selection criteria.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..model.database import Side
from ..model.groups import AVPair, RatingGroup
from ..model.operations import Operation, OperationKind

__all__ = ["Pattern", "JoinedView", "pattern_to_operation"]


@dataclass(frozen=True)
class Pattern:
    """A conjunctive pattern over the joined view (wildcards elsewhere)."""

    pairs: tuple[AVPair, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "pairs", tuple(sorted(self.pairs)))

    @property
    def specificity(self) -> int:
        """Number of non-wildcard attributes (SDD's rule weight input)."""
        return len(self.pairs)

    def distance(self, other: "Pattern") -> int:
        """Number of (side, attribute) slots on which the patterns differ.

        This is Qagview's pattern distance: an attribute counts when the
        two patterns disagree on it (fixed in one but not the other, or
        fixed to different values).
        """
        mine = {(p.side, p.attribute): p.value for p in self.pairs}
        theirs = {(p.side, p.attribute): p.value for p in other.pairs}
        slots = set(mine) | set(theirs)
        return sum(1 for s in slots if mine.get(s) != theirs.get(s))

    def describe(self) -> str:
        if not self.pairs:
            return "⟨*⟩"
        return " ∧ ".join(
            f"{p.side.value}.{p.attribute}={p.value}" for p in self.pairs
        )


class JoinedView:
    """Vectorised access to a rating group's joined attribute columns."""

    def __init__(self, group: RatingGroup, max_values_per_attribute: int = 20) -> None:
        self._group = group
        database = group.database
        self._n = len(group)
        self._columns: dict[tuple[Side, str], tuple[np.ndarray, tuple]] = {}
        fixed = group.criteria.attributes()
        for side, attribute in database.grouping_attributes():
            if (side, attribute) in fixed:
                continue  # already pinned by the current selection
            codes = group.subgroup_codes(side, attribute)
            labels = group.subgroup_labels(side, attribute)
            self._columns[(side, attribute)] = (codes, labels)
        self._max_values = max_values_per_attribute

    def __len__(self) -> int:
        return self._n

    @property
    def group(self) -> RatingGroup:
        return self._group

    def single_patterns(self, min_support: int = 1) -> Iterator[tuple[Pattern, np.ndarray]]:
        """All one-pair patterns with their record masks (frequent values)."""
        for (side, attribute), (codes, labels) in self._columns.items():
            present = codes[codes >= 0]
            if present.size == 0:
                continue
            counts = np.bincount(present, minlength=len(labels))
            order = np.argsort(-counts)[: self._max_values]
            for code in order:
                if counts[code] < min_support:
                    continue
                pattern = Pattern((AVPair(side, attribute, labels[int(code)]),))
                yield pattern, codes == code

    def mask_of(self, pattern: Pattern) -> np.ndarray:
        """Record mask of an arbitrary pattern."""
        mask = np.ones(self._n, dtype=bool)
        for pair in pattern.pairs:
            codes, labels = self._columns[(pair.side, pair.attribute)]
            try:
                code = labels.index(pair.value)
            except ValueError:
                return np.zeros(self._n, dtype=bool)
            mask &= codes == code
        return mask


def pattern_to_operation(group: RatingGroup, pattern: Pattern) -> Operation:
    """Translate a pattern into a drill-down operation on the criteria.

    Both baselines only *refine* the current selection — this is precisely
    the limitation the paper's Table 4 exposes (no roll-ups).
    """
    target = group.criteria
    for pair in pattern.pairs:
        target = target.with_pair(pair)
    return Operation(target, OperationKind.FILTER, added=pattern.pairs)
