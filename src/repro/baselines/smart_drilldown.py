"""Smart Drill-Down (SDD) baseline — Joglekar et al. [35] (paper §5.1).

SDD summarises a table with a k-rule list of "interesting" conjunctive
rules.  Interestingness combines three factors (paper §5.1): coverage
(rules covering many records), specificity (rules fixing more attributes),
and diversity (rules covering *different* records).  The standard greedy
realisation scores a candidate rule by its *marginal* weighted coverage

    score(r) = |newly covered records of r| × W(|r|),  W(d) = d

and repeatedly appends the best rule, marking its records covered — which
yields both the coverage and the diversity factor; the weight rewards
specificity.  Each selected rule becomes a drill-down next-action.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from ..model.groups import RatingGroup
from ..model.operations import Operation
from .patterns import JoinedView, Pattern, pattern_to_operation

__all__ = ["SDDConfig", "SmartDrillDown"]


@dataclass(frozen=True)
class SDDConfig:
    """Knobs of the SDD baseline.

    ``max_rule_size`` bounds rule conjunctions (2 keeps parity with
    SubDEx's ≤-2-edit operations); ``pair_pool`` bounds how many top single
    rules are combined into two-pair candidates; ``min_support`` discards
    rules covering fewer records.
    """

    k: int = 3
    max_rule_size: int = 2
    pair_pool: int = 15
    min_support: int = 5
    max_values_per_attribute: int = 20


class SmartDrillDown:
    """Greedy k-rule-list construction over a rating group."""

    def __init__(self, config: SDDConfig | None = None) -> None:
        self._config = config or SDDConfig()

    @property
    def config(self) -> SDDConfig:
        return self._config

    def rule_list(self, group: RatingGroup) -> list[tuple[Pattern, int]]:
        """The greedy rule list: ``[(pattern, covered_records), ...]``."""
        config = self._config
        view = JoinedView(group, config.max_values_per_attribute)
        singles = list(view.single_patterns(config.min_support))
        candidates: list[tuple[Pattern, np.ndarray]] = list(singles)
        if config.max_rule_size >= 2 and singles:
            top = sorted(singles, key=lambda c: -int(c[1].sum()))[: config.pair_pool]
            for (p1, m1), (p2, m2) in itertools.combinations(top, 2):
                slots1 = {(p.side, p.attribute) for p in p1.pairs}
                slots2 = {(p.side, p.attribute) for p in p2.pairs}
                if slots1 & slots2:
                    continue
                mask = m1 & m2
                if int(mask.sum()) >= config.min_support:
                    candidates.append((Pattern(p1.pairs + p2.pairs), mask))

        covered = np.zeros(len(view), dtype=bool)
        rules: list[tuple[Pattern, int]] = []
        remaining = list(candidates)
        for __ in range(config.k):
            best_score = 0
            best_index = -1
            for index, (pattern, mask) in enumerate(remaining):
                marginal = int((mask & ~covered).sum())
                score = marginal * pattern.specificity
                if score > best_score:
                    best_score = score
                    best_index = index
            if best_index < 0:
                break
            pattern, mask = remaining.pop(best_index)
            covered |= mask
            rules.append((pattern, int(mask.sum())))
        return rules

    def recommend(self, group: RatingGroup, k: int | None = None) -> list[Operation]:
        """Top-k next-action operations (all drill-downs, by construction)."""
        if k is not None and k != self._config.k:
            sdd = SmartDrillDown(
                SDDConfig(
                    k=k,
                    max_rule_size=self._config.max_rule_size,
                    pair_pool=self._config.pair_pool,
                    min_support=self._config.min_support,
                    max_values_per_attribute=self._config.max_values_per_attribute,
                )
            )
            return sdd.recommend(group)
        return [
            pattern_to_operation(group, pattern)
            for pattern, __ in self.rule_list(group)
        ]
