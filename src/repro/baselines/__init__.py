"""Baseline recommenders and scalability variants (S12–S13)."""

from .patterns import JoinedView, Pattern, pattern_to_operation
from .qagview import Qagview, QagviewConfig
from .smart_drilldown import SDDConfig, SmartDrillDown
from .variants import (
    all_variants,
    ci_pruning_config,
    mab_pruning_config,
    naive_config,
    no_parallelism_config,
    no_pruning_config,
    subdex_config,
)

__all__ = [
    "JoinedView",
    "Pattern",
    "Qagview",
    "QagviewConfig",
    "SDDConfig",
    "SmartDrillDown",
    "all_variants",
    "ci_pruning_config",
    "mab_pruning_config",
    "naive_config",
    "no_parallelism_config",
    "no_pruning_config",
    "pattern_to_operation",
    "subdex_config",
]
