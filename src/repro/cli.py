"""Command-line interface — the terminal stand-in for the paper's UI (§4).

Four subcommands:

* ``summary`` — dataset statistics in the paper's Table 2 shape;
* ``explore`` — run a Fully-Automated exploration and print the path;
* ``interactive`` — the UI loop: each step shows the k rating maps and the
  top-o recommendations; the user applies a recommendation by number,
  edits the selection with ``add``/``drop`` commands or a SQL predicate
  (the "advanced screen" of the paper's UI), or quits;
* ``serve`` — run the concurrent multi-session exploration service
  (:mod:`repro.server`);
* ``profile`` — run any other subcommand in-process under the sampling
  profiler (:mod:`repro.perf.profiler`) and emit flamegraph-ready
  collapsed stacks or JSON.

Sessions can be exported as JSON exploration logs (``--log``), the input
for the personalisation extension.

Usage errors (unknown dataset, unwritable ``--log`` path) exit with code 2
and a one-line message on stderr.

Examples::

    python -m repro summary --dataset yelp --scale 0.05
    python -m repro explore --dataset movielens --steps 5 --log run.json
    python -m repro interactive --dataset yelp
    python -m repro serve --dataset yelp --port 8642
    python -m repro profile --output prof.txt -- explore --steps 3
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Sequence

from .core.engine import SubDEx, SubDExConfig
from .core.history import ExplorationLog
from .core.modes import ExplorationMode, ExplorationPath
from .core.recommend import RecommenderConfig
from .core.session import ExplorationSession
from .db.sql import parse_where
from .exceptions import ReproError
from .model.database import Side, SubjectiveDatabase
from .model.groups import AVPair, SelectionCriteria

__all__ = ["main", "build_parser", "CLIError"]

DATASETS = ("movielens", "yelp", "hotels")


class CLIError(Exception):
    """A usage error: ``main`` prints one line to stderr and exits 2."""


def _load_dataset(name: str, scale: float, seed: int) -> SubjectiveDatabase:
    from . import datasets

    factories: dict[str, Callable[..., SubjectiveDatabase]] = {
        "movielens": datasets.movielens,
        "yelp": datasets.yelp,
        "hotels": datasets.hotels,
    }
    if name not in factories:
        raise CLIError(
            f"unknown dataset {name!r} (choose from {', '.join(factories)})"
        )
    return factories[name](seed=seed, scale_factor=scale)


def _check_log_path(log: str | None) -> None:
    """Fail fast on a ``--log`` path that can never be written."""
    if log is None:
        return
    path = Path(log)
    if path.is_dir():
        raise CLIError(f"--log path {log!r} is a directory")
    parent = path.parent
    if not parent.is_dir():
        raise CLIError(f"--log directory {str(parent)!r} does not exist")


def _save_log(log: ExplorationLog, destination: str) -> None:
    try:
        log.save(destination)
    except OSError as error:
        raise CLIError(f"cannot write --log file {destination!r}: {error}")


def _engine(database: SubjectiveDatabase, o: int, k: int) -> SubDEx:
    config = SubDExConfig(
        recommender=RecommenderConfig(o=o, max_values_per_attribute=6)
    ).with_k(k)
    return SubDEx(database, config)


def _print_step(record, out) -> None:
    from .core.render import render_histogram

    print(f"\n━━ Step {record.index}: {record.criteria.describe()} "
          f"({record.group_size} records) ━━", file=out)
    for rating_map in record.result.selected:
        print(file=out)
        print(render_histogram(rating_map), file=out)
    if record.recommendations:
        print("\nRecommended next steps:", file=out)
        for i, reco in enumerate(record.recommendations, 1):
            print(f"  [{i}] {reco.describe()}", file=out)


# -- subcommands ---------------------------------------------------------------

def cmd_summary(args: argparse.Namespace, out=None) -> int:
    out = out or sys.stdout
    database = _load_dataset(args.dataset, args.scale, args.seed)
    summary = database.summary()
    width = max(len(k) for k in summary)
    for key, value in summary.items():
        print(f"{key:<{width}}  {value}", file=out)
    return 0


def cmd_explore(args: argparse.Namespace, out=None) -> int:
    out = out or sys.stdout
    _check_log_path(args.log)
    database = _load_dataset(args.dataset, args.scale, args.seed)
    engine = _engine(database, args.recommendations, args.maps)
    path = engine.explore_automated(args.steps)
    for record in path.steps:
        _print_step(record, out)
    if args.log:
        _save_log(
            ExplorationLog.from_path(path, dataset=database.name), args.log
        )
        print(f"\nexploration log written to {args.log}", file=out)
    return 0


def _parse_edit(
    command: str, session: ExplorationSession
) -> SelectionCriteria | None:
    """Parse an interactive edit command into new criteria.

    ``add reviewer.gender=F`` / ``drop item.city`` /
    ``sql reviewer gender = 'F' AND age_group = 'young'``.
    """
    parts = command.split(None, 2)
    verb = parts[0].lower()
    if verb == "add" and len(parts) >= 2:
        target, __, value = parts[1].partition("=")
        side_name, __, attribute = target.partition(".")
        side = Side(side_name)
        return session.criteria.with_pair(AVPair(side, attribute, value))
    if verb == "drop" and len(parts) >= 2:
        side_name, __, attribute = parts[1].partition(".")
        side = Side(side_name)
        for pair in session.criteria:
            if pair.side is side and pair.attribute == attribute:
                return session.criteria.without_pair(pair)
        raise ReproError(f"{parts[1]} is not part of the current selection")
    if verb == "sql" and len(parts) >= 3:
        side = Side(parts[1])
        predicate = parse_where(parts[2])
        # the advanced screen accepts conjunctions of equalities
        pairs = [p for p in session.criteria if p.side is not side]
        from .db.predicates import And, Eq

        leaves = (
            predicate.operands if isinstance(predicate, And) else (predicate,)
        )
        for leaf in leaves:
            if not isinstance(leaf, Eq):
                raise ReproError(
                    "the interactive screen accepts conjunctions of "
                    "attribute = value only"
                )
            pairs.append(AVPair(side, leaf.attribute, leaf.value))
        return SelectionCriteria(pairs)
    raise ReproError(f"unrecognised command: {command!r}")


def cmd_interactive(
    args: argparse.Namespace,
    out=None,
    input_fn: Callable[[str], str] = input,
) -> int:
    out = out or sys.stdout
    _check_log_path(args.log)
    database = _load_dataset(args.dataset, args.scale, args.seed)
    engine = _engine(database, args.recommendations, args.maps)
    session = engine.session()
    record = session.step(with_recommendations=True)
    _print_step(record, out)
    print(
        "\ncommands: 1..o apply recommendation · add side.attr=value · "
        "drop side.attr · sql side <predicate> · quit",
        file=out,
    )
    while True:
        try:
            command = input_fn("subdex> ").strip()
        except EOFError:
            break
        if not command:
            continue
        if command.lower() in ("quit", "exit", "q"):
            break
        try:
            if command.isdigit():
                index = int(command) - 1
                recommendations = record.recommendations
                if not 0 <= index < len(recommendations):
                    print(f"no recommendation [{command}]", file=out)
                    continue
                record = session.step(
                    recommendations[index].operation, with_recommendations=True
                )
            else:
                criteria = _parse_edit(command, session)
                record = session.apply_criteria(
                    criteria, with_recommendations=True
                )
            _print_step(record, out)
        except (ReproError, ValueError) as error:
            print(f"error: {error}", file=out)
    if args.log:
        path = ExplorationPath(ExplorationMode.USER_DRIVEN, session.steps)
        _save_log(
            ExplorationLog.from_path(path, dataset=database.name), args.log
        )
        print(f"exploration log written to {args.log}", file=out)
    return 0


def cmd_serve(args: argparse.Namespace, out=None) -> int:
    out = out or sys.stdout
    from .obs.logs import setup_logging
    from .server import ServerConfig, serve

    setup_logging(level=args.log_level, fmt=args.log_format)
    names = [name.strip() for name in args.dataset.split(",") if name.strip()]
    if not names:
        raise CLIError("--dataset must name at least one dataset")
    factories = {}
    for name in names:
        if name not in DATASETS:
            raise CLIError(
                f"unknown dataset {name!r} (choose from {', '.join(DATASETS)})"
            )
        factories[name] = (
            lambda n=name: _engine(
                _load_dataset(n, args.scale, args.seed),
                args.recommendations,
                args.maps,
            )
        )
    if args.workers < 0:
        raise CLIError(f"--workers must be >= 0, got {args.workers}")
    if args.slo_config is not None:
        from .slo import load_slo_config

        try:
            load_slo_config(args.slo_config)
        except (OSError, ValueError) as error:
            raise CLIError(f"--slo-config: {error}")
    if args.shards is not None and args.shards < 1:
        raise CLIError(f"--shards must be >= 1, got {args.shards}")
    if not 0.0 <= args.trace_sample_rate <= 1.0:
        raise CLIError(
            f"--trace-sample-rate must be in [0, 1], "
            f"got {args.trace_sample_rate}"
        )
    config = ServerConfig(
        max_sessions=args.max_sessions,
        session_ttl_seconds=args.session_ttl,
        default_deadline_ms=args.deadline_ms,
        max_inflight=args.max_inflight,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_interval_seconds=args.checkpoint_interval,
        drain_seconds=args.drain_seconds,
        tracing_enabled=not args.no_tracing,
        trace_file=args.trace_file,
        trace_file_max_mb=args.trace_file_max_mb,
        trace_ring_mb=args.trace_ring_mb,
        trace_sample_rate=args.trace_sample_rate,
        trace_max_spans=args.trace_max_spans,
        slow_request_ms=args.slow_request_ms,
        workers=args.workers,
        shards=args.shards,
        slo_enabled=not args.no_slo,
        slo_config_path=args.slo_config,
    )
    return serve(factories, host=args.host, port=args.port, config=config, out=out)


def cmd_profile(args: argparse.Namespace, out=None) -> int:
    """Run another subcommand in-process under the sampling profiler.

    Sampling only sees this process's threads, so the inner command runs
    in-process (same interpreter) rather than as a subprocess.  With
    ``--output`` the profile goes to a file in pure collapsed/JSON form
    (pipe it straight into ``flamegraph.pl`` or speedscope); without it,
    the profile is printed after the inner command's own output.
    """
    import json as json_module

    from .perf.profiler import SamplingProfiler

    out = out or sys.stdout
    inner = list(args.inner)
    if inner and inner[0] == "--":
        inner = inner[1:]
    if not inner:
        raise CLIError(
            "profile needs a command to run, e.g. "
            "repro profile -- explore --steps 3"
        )
    if inner[0] == "profile":
        raise CLIError("cannot nest profile inside profile")
    inner_args = build_parser().parse_args(inner)
    try:
        profiler = SamplingProfiler(interval=args.interval_ms / 1000.0)
    except ValueError as error:
        raise CLIError(str(error)) from None
    profiler.start()
    try:
        exit_code = inner_args.fn(inner_args)
    finally:
        profile = profiler.stop()
    if args.format == "collapsed":
        rendered = profile.render_collapsed()
    else:
        rendered = json_module.dumps(profile.to_dict(), indent=2) + "\n"
    if args.output:
        try:
            Path(args.output).write_text(rendered, encoding="utf-8")
        except OSError as error:
            raise CLIError(
                f"cannot write --output file {args.output!r}: {error}"
            ) from None
        print(
            f"profile written to {args.output} "
            f"({profile.n_samples} samples, {len(profile)} stacks, "
            f"{profile.duration_seconds:.2f}s)",
            file=out,
        )
    else:
        print(
            f"\n━━ profile: {profile.n_samples} samples, "
            f"{len(profile)} stacks, {profile.duration_seconds:.2f}s ━━",
            file=out,
        )
        out.write(rendered)
    return exit_code


# -- parser ---------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SubDEx — Subjective Data Exploration",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--dataset", default="yelp",
                       help="movielens | yelp | hotels (default: yelp)")
        p.add_argument("--scale", type=float, default=0.05,
                       help="dataset scale factor (1.0 = paper size)")
        p.add_argument("--seed", type=int, default=0)

    p_summary = sub.add_parser("summary", help="dataset statistics (Table 2)")
    common(p_summary)
    p_summary.set_defaults(fn=cmd_summary)

    p_explore = sub.add_parser("explore", help="Fully-Automated exploration")
    common(p_explore)
    p_explore.add_argument("--steps", type=int, default=5)
    p_explore.add_argument("--maps", type=int, default=3, help="k")
    p_explore.add_argument("--recommendations", type=int, default=3, help="o")
    p_explore.add_argument("--log", default=None,
                           help="write the exploration log to this JSON file")
    p_explore.set_defaults(fn=cmd_explore)

    p_inter = sub.add_parser("interactive", help="interactive exploration")
    common(p_inter)
    p_inter.add_argument("--maps", type=int, default=3, help="k")
    p_inter.add_argument("--recommendations", type=int, default=3, help="o")
    p_inter.add_argument("--log", default=None)
    p_inter.set_defaults(fn=cmd_interactive)

    p_serve = sub.add_parser(
        "serve", help="run the multi-session exploration service"
    )
    common(p_serve)
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8642)
    p_serve.add_argument("--maps", type=int, default=3, help="k")
    p_serve.add_argument("--recommendations", type=int, default=3, help="o")
    p_serve.add_argument("--workers", type=int, default=0,
                         help="sharded mode: spawn N worker processes with "
                              "shared-memory dataset partitions (0 = classic "
                              "single-process serving)")
    p_serve.add_argument("--shards", type=int, default=None,
                         help="partition count for scatter/gather scans "
                              "(default: 4 x workers)")
    p_serve.add_argument("--max-sessions", type=int, default=64,
                         help="live-session cap (further creates get 429; "
                              "per worker in sharded mode)")
    p_serve.add_argument("--session-ttl", type=float, default=1800.0,
                         help="idle seconds before a session is evicted")
    p_serve.add_argument("--deadline-ms", type=int, default=None,
                         help="default per-request deadline in milliseconds "
                              "(clients override with X-Deadline-Ms)")
    p_serve.add_argument("--max-inflight", type=int, default=32,
                         help="concurrent-request hard limit; past it, "
                              "sheddable requests get 503 + Retry-After")
    p_serve.add_argument("--checkpoint-dir", default=None,
                         help="directory for crash-safe session checkpoints "
                              "(restored on startup)")
    p_serve.add_argument("--checkpoint-interval", type=float, default=30.0,
                         help="seconds between periodic checkpoint flushes")
    p_serve.add_argument("--drain-seconds", type=float, default=10.0,
                         help="graceful-shutdown budget for in-flight requests")
    p_serve.add_argument("--log-level", default="info",
                         choices=("debug", "info", "warning", "error"),
                         help="stdlib logging level for repro.* loggers")
    p_serve.add_argument("--log-format", default="text",
                         choices=("text", "json"),
                         help="log line format; json includes trace ids")
    p_serve.add_argument("--no-tracing", action="store_true",
                         help="disable request tracing (spans, /debug/traces, "
                              "?debug=1 breakdowns)")
    p_serve.add_argument("--trace-file", default=None,
                         help="append every finished trace to this JSONL file")
    p_serve.add_argument("--trace-file-max-mb", type=float, default=None,
                         help="rotate --trace-file past this size "
                              "(trace.jsonl -> trace.jsonl.1, keeping 3 "
                              "generations; default: grow unbounded)")
    p_serve.add_argument("--trace-ring-mb", type=float, default=16.0,
                         help="byte budget (MiB) for each in-memory trace "
                              "store backing GET /debug/traces")
    p_serve.add_argument("--trace-sample-rate", type=float, default=1.0,
                         help="tail-sampling keep probability for unremarkable "
                              "traces; error/shed/degraded/slow/burn-window "
                              "traces are always kept")
    p_serve.add_argument("--trace-max-spans", type=int, default=512,
                         help="truncate pathological span trees past this "
                              "many spans per trace (marked truncated: true)")
    p_serve.add_argument("--slow-request-ms", type=float, default=1000.0,
                         help="log requests slower than this at WARNING with "
                              "their span tree (0 logs everything)")
    p_serve.add_argument("--slo-config", default=None,
                         help="JSON file overriding the shipped SLO "
                              "objectives/endpoint classes (GET /slo; see "
                              "docs/OBSERVABILITY.md)")
    p_serve.add_argument("--no-slo", action="store_true",
                         help="disable SLO tracking (GET /slo answers "
                              "enabled: false)")
    p_serve.set_defaults(fn=cmd_serve)

    p_profile = sub.add_parser(
        "profile",
        help="run another subcommand under the sampling profiler",
    )
    p_profile.add_argument("--interval-ms", type=float, default=5.0,
                           help="milliseconds between stack samples")
    p_profile.add_argument("--format", default="collapsed",
                           choices=("collapsed", "json"),
                           help="collapsed stacks (flamegraph.pl/speedscope) "
                                "or JSON with sampling metadata")
    p_profile.add_argument("--output", default=None,
                           help="write the profile to this file instead of "
                                "printing it after the command's output")
    p_profile.add_argument("inner", nargs=argparse.REMAINDER,
                           help="the repro subcommand to profile, after --")
    p_profile.set_defaults(fn=cmd_profile)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except CLIError as error:
        print(f"repro: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
