"""Personalised recommendations from exploration logs (paper §6 extension).

The paper's conclusion names personalised exploration as the next step and
§5.2.2 points at log-based recommenders [23, 42] as drop-in replacements for
the Recommendation Builder.  This module implements that extension:

* :class:`PreferenceModel` — per-user display/choice statistics mined from
  :class:`~repro.core.history.ExplorationLog` records: which grouping
  attributes and rating dimensions this user's sessions dwell on.
* :class:`PersonalizedRecommendationBuilder` — wraps the stock builder and
  re-ranks its candidates by blending Eq. (2) utility with the preference
  affinity of the maps each operation would show.

The blend is deliberately conservative (``alpha`` weights the personal
term): with no history the builder behaves exactly like stock SubDEx.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..core.history import ExplorationLog
from ..core.recommend import RecommendationBuilder, ScoredOperation
from ..core.utility import SeenMaps
from ..model.groups import SelectionCriteria

__all__ = ["PreferenceModel", "PersonalizedRecommendationBuilder"]


@dataclass
class PreferenceModel:
    """Per-user affinity over grouping attributes and rating dimensions.

    Affinities are smoothed log-frequencies normalised to [0, 1]; an
    attribute/dimension never seen in the user's logs scores the neutral
    prior 0.5.
    """

    attribute_counts: dict[tuple[str, str], int] = field(default_factory=dict)
    dimension_counts: dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_logs(cls, logs: Iterable[ExplorationLog]) -> "PreferenceModel":
        model = cls()
        for log in logs:
            for side, attribute, dimension in log.shown_specs():
                key = (side, attribute)
                model.attribute_counts[key] = (
                    model.attribute_counts.get(key, 0) + 1
                )
                model.dimension_counts[dimension] = (
                    model.dimension_counts.get(dimension, 0) + 1
                )
        return model

    @property
    def is_empty(self) -> bool:
        return not self.attribute_counts and not self.dimension_counts

    def _affinity(self, count: int, total: int) -> float:
        if total == 0:
            return 0.5
        # smoothed log-frequency mapped into [0, 1]; 0.5 = average interest
        expected = total / max(1, len(self.attribute_counts) or 1)
        ratio = (count + 1) / (expected + 1)
        return 1.0 / (1.0 + math.exp(-math.log(ratio)))

    def attribute_affinity(self, side: str, attribute: str) -> float:
        total = sum(self.attribute_counts.values())
        return self._affinity(
            self.attribute_counts.get((side, attribute), 0), total
        )

    def dimension_affinity(self, dimension: str) -> float:
        total = sum(self.dimension_counts.values())
        if total == 0:
            return 0.5
        expected = total / max(1, len(self.dimension_counts))
        ratio = (self.dimension_counts.get(dimension, 0) + 1) / (expected + 1)
        return 1.0 / (1.0 + math.exp(-math.log(ratio)))

    def operation_affinity(self, scored: ScoredOperation) -> float:
        """Mean affinity of the maps the operation would display."""
        maps = scored.preview.selected
        if not maps:
            return 0.5
        values = []
        for rating_map in maps:
            values.append(
                0.5 * self.attribute_affinity(
                    rating_map.spec.side.value, rating_map.spec.attribute
                )
                + 0.5 * self.dimension_affinity(rating_map.dimension)
            )
        return sum(values) / len(values)


class PersonalizedRecommendationBuilder:
    """Re-ranks stock recommendations by a user's logged preferences.

    Drop-in compatible with :class:`RecommendationBuilder.recommend` —
    exactly the modular replacement the paper describes.
    """

    def __init__(
        self,
        base: RecommendationBuilder,
        model: PreferenceModel,
        alpha: float = 0.3,
    ) -> None:
        if not 0 <= alpha <= 1:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        self._base = base
        self._model = model
        self._alpha = alpha

    @property
    def base(self) -> RecommendationBuilder:
        return self._base

    def candidate_operations(self, current: SelectionCriteria):
        return self._base.candidate_operations(current)

    def recommend(
        self,
        current: SelectionCriteria,
        seen: SeenMaps,
        o: int | None = None,
        candidates: Sequence | None = None,
    ) -> list[ScoredOperation]:
        """Top-o operations by ``(1-α)·utility + α·utility·affinity``."""
        o = self._base.config.o if o is None else o
        # over-fetch so the re-ranking has room to reorder
        pool = self._base.recommend(
            current, seen, o=max(o * 3, o), candidates=candidates
        )
        if self._model.is_empty or not pool:
            return pool[:o]
        max_utility = max(s.utility for s in pool) or 1.0

        def blended(scored: ScoredOperation) -> float:
            normalized = scored.utility / max_utility
            affinity = self._model.operation_affinity(scored)
            return (1 - self._alpha) * normalized + self._alpha * (
                normalized * affinity * 2
            )

        ranked = sorted(pool, key=blended, reverse=True)
        return ranked[:o]
