"""Extensions the paper names as future work (§6)."""

from .personalize import PersonalizedRecommendationBuilder, PreferenceModel

__all__ = ["PersonalizedRecommendationBuilder", "PreferenceModel"]
