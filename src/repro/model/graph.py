"""Bipartite-graph view of a subjective database (paper §1).

The paper models subjective data as a bipartite graph with reviewer nodes,
item nodes, and rating-record links.  This module exposes that view via
networkx for graph-style analyses (degree distributions, connectivity,
projections) that complement the exploration engine.
"""

from __future__ import annotations

from typing import Any

import networkx as nx
import numpy as np

from .database import Side, SubjectiveDatabase
from .groups import RatingGroup

__all__ = ["to_bipartite_graph", "reviewer_degrees", "item_degrees", "density"]


def to_bipartite_graph(
    database: SubjectiveDatabase,
    group: RatingGroup | None = None,
    dimension: str | None = None,
) -> nx.Graph:
    """Build the bipartite reviewer–item graph.

    Nodes are ``("reviewer", id)`` / ``("item", id)`` with a ``side``
    attribute; each rating record becomes an edge whose ``scores`` attribute
    maps dimension → score (or just the requested ``dimension``).
    Restricting to a :class:`RatingGroup` keeps only its records.
    """
    graph = nx.Graph()
    rows = group.rows if group is not None else np.arange(database.n_ratings)
    dims = (dimension,) if dimension else database.dimensions
    user_ids = database.ratings.numeric(database.key(Side.REVIEWER)).astype(np.int64)
    item_ids = database.ratings.numeric(database.key(Side.ITEM)).astype(np.int64)
    score_arrays = {d: database.dimension_scores(d) for d in dims}
    for row in rows:
        row = int(row)
        u = ("reviewer", int(user_ids[row]))
        i = ("item", int(item_ids[row]))
        if u not in graph:
            graph.add_node(u, side="reviewer")
        if i not in graph:
            graph.add_node(i, side="item")
        scores: dict[str, Any] = {}
        for dim in dims:
            value = float(score_arrays[dim][row])
            if np.isfinite(value):
                scores[dim] = value
        graph.add_edge(u, i, scores=scores)
    return graph


def _degrees(graph: nx.Graph, side: str) -> dict[int, int]:
    return {
        node[1]: degree
        for node, degree in graph.degree()
        if graph.nodes[node]["side"] == side
    }


def reviewer_degrees(graph: nx.Graph) -> dict[int, int]:
    """Number of rated items per reviewer id."""
    return _degrees(graph, "reviewer")


def item_degrees(graph: nx.Graph) -> dict[int, int]:
    """Number of reviewers per item id."""
    return _degrees(graph, "item")


def density(graph: nx.Graph) -> float:
    """Edge density of the bipartite graph (edges / (|U|·|I|))."""
    reviewers = sum(1 for __, d in graph.nodes(data=True) if d["side"] == "reviewer")
    items = graph.number_of_nodes() - reviewers
    if reviewers == 0 or items == 0:
        return 0.0
    return graph.number_of_edges() / (reviewers * items)
