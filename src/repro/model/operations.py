"""Exploration operations and their neighbourhood (paper §3.2.1, §4.3).

An operation moves the session from the current selection criteria q' to a
new criteria q.  Following §4.3, q differs from q' in at most two
attribute-value pairs: it may **add** one new pair, and may **remove** or
**change** one existing pair (compound add+remove / add+change edits are
supported behind a flag).
"""

from __future__ import annotations

import enum
import functools
from dataclasses import dataclass
from typing import Any, Iterator

from ..exceptions import OperationError
from .database import Side, SubjectiveDatabase
from .groups import AVPair, RatingGroup, SelectionCriteria

__all__ = ["OperationKind", "Operation", "enumerate_operations", "apply_operation"]


class OperationKind(str, enum.Enum):
    """How an operation edits the current criteria."""

    FILTER = "filter"  # adds a pair (drill-down)
    GENERALIZE = "generalize"  # removes a pair (roll-up)
    CHANGE = "change"  # replaces the value of a pair (sideways)
    COMPOUND = "compound"  # one add combined with one remove/change

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Operation:
    """A next-step operation: the target criteria plus its edit summary."""

    target: SelectionCriteria
    kind: OperationKind
    added: tuple[AVPair, ...] = ()
    removed: tuple[AVPair, ...] = ()

    def describe(self) -> str:
        parts = []
        if self.added:
            parts.append("add " + ", ".join(repr(p) for p in self.added))
        if self.removed:
            parts.append("drop " + ", ".join(repr(p) for p in self.removed))
        edit = "; ".join(parts) if parts else "no-op"
        return f"{self.kind.value}: {edit} → {self.target.describe()}"

    @functools.cached_property
    def describe_key(self) -> str:
        """The target's description, memoised for ranking tie-breaks.

        Recommendation ranking sorts by ``(-utility, target.describe())``;
        anytime snapshots re-rank after every chunk, so rebuilding the
        description string per sort adds up.  ``cached_property`` stores
        the string in the instance ``__dict__`` directly, which works on a
        frozen dataclass (no ``__setattr__`` involved) and stays out of
        field-based equality/hashing.
        """
        return self.target.describe()

    def __repr__(self) -> str:
        return f"Operation({self.describe()})"


def apply_operation(
    database: SubjectiveDatabase, operation: Operation
) -> RatingGroup:
    """Materialise the rating group the operation leads to.

    Raises :class:`~repro.exceptions.OperationError` if the resulting group
    is empty (the UI would never offer such an operation).
    """
    group = RatingGroup(database, operation.target)
    if group.is_empty:
        raise OperationError(
            f"operation yields an empty rating group: {operation.describe()}"
        )
    return group


def _candidate_values(
    database: SubjectiveDatabase,
    side: Side,
    attribute: str,
    max_values: int | None,
) -> tuple[Any, ...]:
    domain = database.catalog(side).domain(attribute)
    values = domain.frequent_values()
    if max_values is not None:
        values = values[:max_values]
    return values


def enumerate_operations(
    database: SubjectiveDatabase,
    current: SelectionCriteria,
    max_values_per_attribute: int | None = None,
    include_compound: bool = False,
) -> Iterator[Operation]:
    """Yield the candidate next-step operations from ``current``.

    Candidates (deduplicated, never equal to ``current``):

    * FILTER — add ⟨a, v⟩ for every explorable attribute a not in q' and
      every active-domain value v (most frequent first, optionally capped
      at ``max_values_per_attribute``);
    * GENERALIZE — remove any one existing pair;
    * CHANGE — replace the value of any one existing pair;
    * COMPOUND (only if ``include_compound``) — one FILTER add combined with
      one GENERALIZE remove or CHANGE replacement.

    Emptiness of the resulting rating group is *not* checked here — the
    Recommendation Builder checks it when scoring, so enumeration stays
    cheap.
    """
    seen: set[SelectionCriteria] = {current}

    def emit(operation: Operation) -> Iterator[Operation]:
        if operation.target not in seen:
            seen.add(operation.target)
            yield operation

    current_attrs = current.attributes()
    adds: list[AVPair] = []
    for side in (Side.REVIEWER, Side.ITEM):
        for attribute in database.explorable_attributes(side):
            if (side, attribute) in current_attrs:
                continue
            for value in _candidate_values(
                database, side, attribute, max_values_per_attribute
            ):
                adds.append(AVPair(side, attribute, value))

    removals = list(current)
    changes: list[tuple[AVPair, AVPair]] = []
    for pair in removals:
        for value in _candidate_values(
            database, pair.side, pair.attribute, max_values_per_attribute
        ):
            if value != pair.value:
                changes.append((pair, AVPair(pair.side, pair.attribute, value)))

    for pair in adds:
        yield from emit(
            Operation(current.with_pair(pair), OperationKind.FILTER, added=(pair,))
        )
    for pair in removals:
        yield from emit(
            Operation(
                current.without_pair(pair), OperationKind.GENERALIZE, removed=(pair,)
            )
        )
    for old, new in changes:
        yield from emit(
            Operation(
                current.with_pair(new),
                OperationKind.CHANGE,
                added=(new,),
                removed=(old,),
            )
        )

    if not include_compound:
        return
    for add in adds:
        base = current.with_pair(add)
        for pair in removals:
            yield from emit(
                Operation(
                    base.without_pair(pair),
                    OperationKind.COMPOUND,
                    added=(add,),
                    removed=(pair,),
                )
            )
        for old, new in changes:
            yield from emit(
                Operation(
                    base.with_pair(new),
                    OperationKind.COMPOUND,
                    added=(add, new),
                    removed=(old,),
                )
            )
