"""The subjective database ⟨I, U, R⟩ (paper §3.1).

A :class:`SubjectiveDatabase` bundles three tables — items, reviewers
(users) and rating records — plus the rating-dimension metadata.  It
precomputes the alignment between rating records and the reviewer/item rows
they reference, so that grouping rating records by *any* reviewer or item
attribute is a cached O(1) lookup of pre-built grouping codes (this is what
makes the phased generator fast).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Mapping

import numpy as np

from ..db.catalog import Catalog
from ..db.groupby import Grouping, build_grouping
from ..db.table import Table
from ..exceptions import SchemaError

__all__ = ["Side", "SubjectiveDatabase"]


class Side(str, Enum):
    """Which entity a group description / attribute refers to."""

    REVIEWER = "reviewer"
    ITEM = "item"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def _id_to_row(ids: np.ndarray, name: str) -> dict[int, int]:
    mapping: dict[int, int] = {}
    for row, value in enumerate(ids):
        key = int(value)
        if key in mapping:
            raise SchemaError(f"duplicate {name} id {key}")
        mapping[key] = row
    return mapping


@dataclass(frozen=True)
class _Alignment:
    """Per-rating-record row indices into the reviewer and item tables."""

    user_rows: np.ndarray
    item_rows: np.ndarray


class SubjectiveDatabase:
    """An immutable subjective database ⟨I, U, R⟩.

    Parameters
    ----------
    reviewers, items:
        Entity tables.  Each must contain the respective key column.
    ratings:
        The rating-record table: one key column per side plus one numeric
        column per rating dimension, scored on the integer scale ``1..scale``.
    dimensions:
        Ordered rating-dimension column names (``r_1 .. r_t``).
    scale:
        The rating scale ``m`` (default 5).
    user_key, item_key:
        Key column names (defaults ``"user_id"`` / ``"item_id"``).
    name:
        Optional dataset name for display.
    """

    def __init__(
        self,
        reviewers: Table,
        items: Table,
        ratings: Table,
        dimensions: tuple[str, ...] | list[str],
        scale: int = 5,
        user_key: str = "user_id",
        item_key: str = "item_id",
        name: str = "subjective-db",
        alignment: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> None:
        if not dimensions:
            raise SchemaError("at least one rating dimension is required")
        for dim in dimensions:
            if not ratings.has_column(dim):
                raise SchemaError(f"rating table lacks dimension column {dim!r}")
        for key, table, label in (
            (user_key, reviewers, "reviewer"),
            (item_key, items, "item"),
        ):
            if not table.has_column(key):
                raise SchemaError(f"{label} table lacks key column {key!r}")
            if not ratings.has_column(key):
                raise SchemaError(f"rating table lacks key column {key!r}")
        if scale < 2:
            raise SchemaError(f"rating scale must be >= 2, got {scale}")

        self._reviewers = reviewers
        self._items = items
        self._ratings = ratings
        self._dimensions = tuple(dimensions)
        self._scale = int(scale)
        self._user_key = user_key
        self._item_key = item_key
        self._name = name

        if alignment is not None:
            # Trusted precomputed alignment (e.g. a worker process attaching
            # shared-memory columns exported by an already-validated
            # database): skip the per-record id-resolution loops.
            user_rows = np.asarray(alignment[0], dtype=np.int64)
            item_rows = np.asarray(alignment[1], dtype=np.int64)
            n = len(ratings)
            if len(user_rows) != n or len(item_rows) != n:
                raise SchemaError(
                    f"alignment length mismatch: {len(user_rows)}/"
                    f"{len(item_rows)} rows for {n} rating records"
                )
        else:
            user_ids = reviewers.numeric(user_key).astype(np.int64)
            item_ids = items.numeric(item_key).astype(np.int64)
            user_map = _id_to_row(user_ids, "reviewer")
            item_map = _id_to_row(item_ids, "item")
            r_users = ratings.numeric(user_key).astype(np.int64)
            r_items = ratings.numeric(item_key).astype(np.int64)
            try:
                user_rows = np.fromiter(
                    (user_map[int(u)] for u in r_users),
                    dtype=np.int64,
                    count=len(r_users),
                )
                item_rows = np.fromiter(
                    (item_map[int(i)] for i in r_items),
                    dtype=np.int64,
                    count=len(r_items),
                )
            except KeyError as exc:
                raise SchemaError(
                    f"rating record references unknown id {exc}"
                ) from exc
        self._alignment = _Alignment(user_rows, item_rows)

        self._catalogs = {
            Side.REVIEWER: Catalog(reviewers),
            Side.ITEM: Catalog(items),
        }
        self._grouping_cache: dict[tuple[Side, str], Grouping] = {}
        self._score_cache: dict[str, np.ndarray] = {}

    # -- basic accessors ----------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def reviewers(self) -> Table:
        return self._reviewers

    @property
    def items(self) -> Table:
        return self._items

    @property
    def ratings(self) -> Table:
        return self._ratings

    @property
    def dimensions(self) -> tuple[str, ...]:
        return self._dimensions

    @property
    def scale(self) -> int:
        return self._scale

    @property
    def n_ratings(self) -> int:
        return len(self._ratings)

    def key(self, side: Side) -> str:
        return self._user_key if side is Side.REVIEWER else self._item_key

    def entity_table(self, side: Side) -> Table:
        return self._reviewers if side is Side.REVIEWER else self._items

    def catalog(self, side: Side) -> Catalog:
        return self._catalogs[side]

    def explorable_attributes(self, side: Side) -> tuple[str, ...]:
        """Attributes usable in selections / group-bys, key excluded."""
        key = self.key(side)
        return tuple(
            a for a in self.entity_table(side).explorable_attributes if a != key
        )

    # -- alignment ----------------------------------------------------------
    def entity_rows_for_ratings(self, side: Side) -> np.ndarray:
        """For each rating record, the row index of its reviewer/item."""
        return (
            self._alignment.user_rows
            if side is Side.REVIEWER
            else self._alignment.item_rows
        )

    def rating_rows_for_entities(self, side: Side, entity_mask: np.ndarray) -> np.ndarray:
        """Boolean rating-record mask: records whose entity is in ``entity_mask``."""
        return entity_mask[self.entity_rows_for_ratings(side)]

    def aligned_grouping(self, side: Side, attribute: str) -> Grouping:
        """Grouping of *all* rating records by an entity attribute (cached).

        The codes array has one entry per rating record; a rating group over
        a subset of records simply indexes into it.
        """
        cache_key = (side, attribute)
        grouping = self._grouping_cache.get(cache_key)
        if grouping is None:
            entity_grouping = build_grouping(self.entity_table(side), attribute)
            codes = entity_grouping.codes[self.entity_rows_for_ratings(side)]
            grouping = Grouping(attribute, codes, entity_grouping.labels)
            self._grouping_cache[cache_key] = grouping
        return grouping

    def dimension_scores(self, dimension: str) -> np.ndarray:
        """Float scores of ``dimension`` for all rating records (cached)."""
        if dimension not in self._dimensions:
            raise SchemaError(f"unknown rating dimension {dimension!r}")
        scores = self._score_cache.get(dimension)
        if scores is None:
            scores = self._ratings.numeric(dimension)
            self._score_cache[dimension] = scores
        return scores

    def grouping_attributes(self) -> tuple[tuple[Side, str], ...]:
        """All (side, attribute) pairs usable to partition a rating group."""
        pairs: list[tuple[Side, str]] = []
        for side in (Side.REVIEWER, Side.ITEM):
            for attribute in self.explorable_attributes(side):
                pairs.append((side, attribute))
        return tuple(pairs)

    def restrict(
        self,
        reviewer_attributes: tuple[str, ...] | None = None,
        item_attributes: tuple[str, ...] | None = None,
    ) -> "SubjectiveDatabase":
        """A copy keeping only the named explorable attributes.

        Keys are always retained.  Used by the scalability benchmarks that
        vary the number of attributes (paper Fig. 10b).
        """

        def restricted(table: Table, keep: tuple[str, ...] | None, key: str) -> Table:
            if keep is None:
                return table
            names = [key] + [a for a in table.attribute_names if a in keep and a != key]
            return table.select(names)

        return SubjectiveDatabase(
            restricted(self._reviewers, reviewer_attributes, self._user_key),
            restricted(self._items, item_attributes, self._item_key),
            self._ratings,
            self._dimensions,
            self._scale,
            self._user_key,
            self._item_key,
            self._name,
        )

    def sample_reviewers(self, fraction: float, seed: int = 0) -> "SubjectiveDatabase":
        """Sub-database keeping a random ``fraction`` of reviewers.

        This is the paper's database-size workload (Fig. 10a): sample
        reviewers, keep each sampled reviewer's rating records, and keep the
        item table intact.
        """
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        rng = np.random.default_rng(seed)
        n_users = len(self._reviewers)
        keep = max(1, int(round(fraction * n_users)))
        chosen = np.sort(rng.choice(n_users, size=keep, replace=False))
        user_mask = np.zeros(n_users, dtype=bool)
        user_mask[chosen] = True
        rating_mask = self.rating_rows_for_entities(Side.REVIEWER, user_mask)
        return SubjectiveDatabase(
            self._reviewers.take(chosen),
            self._items,
            self._ratings.take(np.flatnonzero(rating_mask)),
            self._dimensions,
            self._scale,
            self._user_key,
            self._item_key,
            f"{self._name}[{fraction:.0%} reviewers]",
        )

    def summary(self) -> Mapping[str, object]:
        """Dataset statistics in the shape of the paper's Table 2."""
        n_attrs = len(self.explorable_attributes(Side.REVIEWER)) + len(
            self.explorable_attributes(Side.ITEM)
        )
        max_vals = 0
        for side in (Side.REVIEWER, Side.ITEM):
            for attr in self.explorable_attributes(side):
                max_vals = max(max_vals, self.catalog(side).domain(attr).cardinality)
        return {
            "dataset": self._name,
            "n_attributes": n_attrs,
            "max_values": max_vals,
            "n_dimensions": len(self._dimensions),
            "n_ratings": len(self._ratings),
            "n_reviewers": len(self._reviewers),
            "n_items": len(self._items),
        }

    def __repr__(self) -> str:
        s = self.summary()
        return (
            f"SubjectiveDatabase({self._name}: |R|={s['n_ratings']}, "
            f"|U|={s['n_reviewers']}, |I|={s['n_items']}, "
            f"dims={list(self._dimensions)})"
        )
