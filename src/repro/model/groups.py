"""Group descriptions and rating groups (paper §3.1).

A *selection criteria* is a set of attribute-value pairs over the reviewer
and item tables; it induces a reviewer group g_U, an item group g_I and the
rating group g_R of all records linking them.  :class:`RatingGroup`
materialises g_R lazily as an index array into the database's rating table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator

import numpy as np

from ..db.predicates import Predicate, TruePredicate, conjunction
from ..exceptions import OperationError
from .database import Side, SubjectiveDatabase

__all__ = ["AVPair", "SelectionCriteria", "RatingGroup"]


@dataclass(frozen=True, order=True)
class AVPair:
    """One ⟨attribute, value⟩ pair scoped to a table side."""

    side: Side
    attribute: str
    value: Any

    def __repr__(self) -> str:
        return f"⟨{self.side.value}.{self.attribute}, {self.value}⟩"


class SelectionCriteria:
    """An immutable set of :class:`AVPair` with ≤ 1 pair per attribute.

    This is the paper's operation/selection representation: the union of the
    descriptions of g_U and g_I.  Criteria are hashable value objects.
    """

    def __init__(self, pairs: Iterable[AVPair] = ()) -> None:
        seen: dict[tuple[Side, str], AVPair] = {}
        for pair in pairs:
            key = (pair.side, pair.attribute)
            if key in seen and seen[key] != pair:
                raise OperationError(
                    f"conflicting values for {pair.side.value}.{pair.attribute}: "
                    f"{seen[key].value!r} vs {pair.value!r}"
                )
            seen[key] = pair
        self._pairs = frozenset(seen.values())

    # -- constructors -------------------------------------------------------
    @classmethod
    def root(cls) -> "SelectionCriteria":
        """The empty criteria (whole database)."""
        return cls()

    @classmethod
    def of(
        cls,
        reviewer: dict[str, Any] | None = None,
        item: dict[str, Any] | None = None,
    ) -> "SelectionCriteria":
        """Convenience constructor from per-side dicts."""
        pairs = [
            AVPair(Side.REVIEWER, attr, value)
            for attr, value in (reviewer or {}).items()
        ]
        pairs += [
            AVPair(Side.ITEM, attr, value) for attr, value in (item or {}).items()
        ]
        return cls(pairs)

    # -- accessors ------------------------------------------------------------
    @property
    def pairs(self) -> frozenset[AVPair]:
        return self._pairs

    def side_pairs(self, side: Side) -> dict[str, Any]:
        return {
            p.attribute: p.value for p in self._pairs if p.side is side
        }

    def attributes(self, side: Side | None = None) -> frozenset[tuple[Side, str]]:
        return frozenset(
            (p.side, p.attribute)
            for p in self._pairs
            if side is None or p.side is side
        )

    def predicate(self, side: Side) -> Predicate:
        """The conjunctive predicate this criteria imposes on ``side``."""
        pairs = self.side_pairs(side)
        if not pairs:
            return TruePredicate()
        return conjunction(sorted(pairs.items()))

    def __len__(self) -> int:
        return len(self._pairs)

    def __iter__(self) -> Iterator[AVPair]:
        return iter(sorted(self._pairs))

    def __contains__(self, pair: AVPair) -> bool:
        return pair in self._pairs

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SelectionCriteria) and self._pairs == other._pairs

    def __hash__(self) -> int:
        return hash(self._pairs)

    # -- edits ---------------------------------------------------------------
    def with_pair(self, pair: AVPair) -> "SelectionCriteria":
        """Add (or replace the value of) one pair."""
        kept = [
            p
            for p in self._pairs
            if (p.side, p.attribute) != (pair.side, pair.attribute)
        ]
        return SelectionCriteria(kept + [pair])

    def without_pair(self, pair: AVPair) -> "SelectionCriteria":
        """Remove one pair (no-op if absent)."""
        return SelectionCriteria(p for p in self._pairs if p != pair)

    def edit_distance(self, other: "SelectionCriteria") -> int:
        """Number of pairs by which the two criteria differ (symmetric)."""
        mine, theirs = self._pairs, other._pairs
        added = theirs - mine
        removed = mine - theirs
        # a changed attribute counts once, not as one add + one remove
        changed = {
            (p.side, p.attribute) for p in added
        } & {(p.side, p.attribute) for p in removed}
        return len(added) + len(removed) - len(changed)

    def describe(self) -> str:
        if not self._pairs:
            return "⟨entire database⟩"
        return " ∧ ".join(
            f"{p.side.value}.{p.attribute}={p.value}" for p in sorted(self._pairs)
        )

    def __repr__(self) -> str:
        return f"SelectionCriteria({self.describe()})"


class RatingGroup:
    """A materialised rating group g_R.

    Holds the originating database, the selection criteria, and the index
    array of matching rating records.  Materialisation is performed once at
    construction; everything downstream (rating maps, phases) indexes into
    ``rows``.
    """

    def __init__(self, database: SubjectiveDatabase, criteria: SelectionCriteria) -> None:
        self._database = database
        self._criteria = criteria
        reviewer_mask = database.reviewers.mask(criteria.predicate(Side.REVIEWER))
        item_mask = database.items.mask(criteria.predicate(Side.ITEM))
        record_mask = database.rating_rows_for_entities(
            Side.REVIEWER, reviewer_mask
        ) & database.rating_rows_for_entities(Side.ITEM, item_mask)
        self._rows = np.flatnonzero(record_mask)
        self._n_reviewers = int(reviewer_mask.sum())
        self._n_items = int(item_mask.sum())

    @classmethod
    def from_rows(
        cls,
        database: SubjectiveDatabase,
        criteria: SelectionCriteria,
        rows: np.ndarray,
        n_reviewers: int,
        n_items: int,
    ) -> "RatingGroup":
        """Wrap pre-materialised rows without re-scanning the tables.

        ``rows`` must be exactly the sorted record indices the criteria
        selects (as an index layer computes them); callers are trusted on
        this — the class behaves identically to a scanned group afterwards.
        """
        group = cls.__new__(cls)
        group._database = database
        group._criteria = criteria
        group._rows = np.asarray(rows, dtype=np.int64)
        group._n_reviewers = int(n_reviewers)
        group._n_items = int(n_items)
        return group

    @property
    def database(self) -> SubjectiveDatabase:
        return self._database

    @property
    def criteria(self) -> SelectionCriteria:
        return self._criteria

    @property
    def rows(self) -> np.ndarray:
        """Indices of this group's records in the database rating table."""
        return self._rows

    def __len__(self) -> int:
        return int(self._rows.size)

    @property
    def is_empty(self) -> bool:
        return self._rows.size == 0

    @property
    def n_reviewers(self) -> int:
        """Size of the reviewer group g_U."""
        return self._n_reviewers

    @property
    def n_items(self) -> int:
        """Size of the item group g_I."""
        return self._n_items

    def scores(self, dimension: str) -> np.ndarray:
        """Scores of ``dimension`` for this group's records."""
        return self._database.dimension_scores(dimension)[self._rows]

    def subgroup_codes(self, side: Side, attribute: str) -> np.ndarray:
        """Subgroup codes of this group's records under a grouping attribute."""
        return self._database.aligned_grouping(side, attribute).codes[self._rows]

    def subgroup_labels(self, side: Side, attribute: str) -> tuple[Any, ...]:
        return self._database.aligned_grouping(side, attribute).labels

    def __repr__(self) -> str:
        return (
            f"RatingGroup({self._criteria.describe()}: {len(self)} records, "
            f"{self._n_reviewers} reviewers × {self._n_items} items)"
        )
