"""Subjective data model ⟨I, U, R⟩ (substrates S2–S3)."""

from .database import Side, SubjectiveDatabase
from .graph import density, item_degrees, reviewer_degrees, to_bipartite_graph
from .groups import AVPair, RatingGroup, SelectionCriteria
from .operations import (
    Operation,
    OperationKind,
    apply_operation,
    enumerate_operations,
)

__all__ = [
    "AVPair",
    "Operation",
    "OperationKind",
    "RatingGroup",
    "SelectionCriteria",
    "Side",
    "SubjectiveDatabase",
    "apply_operation",
    "density",
    "enumerate_operations",
    "item_degrees",
    "reviewer_degrees",
    "to_bipartite_graph",
]
