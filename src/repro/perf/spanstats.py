"""Span cost accounting: finished traces → per-operation cost tables.

Tracing (PR 4) answers "where did *this* request's time go"; this module
answers the aggregate question — across every traced request, which
operations dominate, how often do they run, and what do their latency
tails look like.  It is the span-level analogue of a database's EXPLAIN
summary: per span name,

* **count** and **errors**;
* **inclusive** time — the span's own duration (children included);
* **exclusive** time — inclusive minus the time spent in direct child
  spans, i.e. the cost attributable to the operation itself.  Exclusive
  times over a trace sum to the root's inclusive time, so the table's
  exclusive column is a true cost breakdown;
* **p50/p95** of inclusive duration, from a bounded per-operation
  reservoir of the most recent observations.

:class:`SpanStatsSink` is a plain trace sink (``sink(trace)``) — attach it
to a :class:`~repro.obs.tracing.Tracer` next to the ring buffer.  The
aggregation is one dict update per span behind one lock, far cheaper than
anything traced.  ``summary()`` renders the table for
``GET /debug/spans/summary``; ``collect()`` produces
:class:`~repro.obs.metrics.MetricFamily` values for the metrics registry.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from collections import deque
from typing import Any, Mapping

from ..obs.metrics import DEFAULT_LATENCY_BUCKETS, Exemplar, MetricFamily
from ..obs.tracing import Trace

__all__ = ["SpanStatsSink", "percentile", "tree_costs"]

#: Inclusive-duration observations kept per span name for percentiles.
DEFAULT_RESERVOIR = 512

#: Histogram bounds (seconds) for the inclusive-duration export.
BUCKET_BOUNDS: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS


def percentile(samples: list[float], q: float) -> float | None:
    """The ``q``-th percentile (0–100), linear interpolation, stdlib-only.

    Returns ``None`` for an empty sample set (JSON ``null``; never NaN).
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    if not samples:
        return None
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


class _OpStats:
    """Accumulated cost of one span name."""

    __slots__ = (
        "count",
        "errors",
        "inclusive",
        "exclusive",
        "reservoir",
        "buckets",
        "exemplars",
    )

    def __init__(self, reservoir_size: int) -> None:
        self.count = 0
        self.errors = 0
        self.inclusive = 0.0  # seconds
        self.exclusive = 0.0  # seconds
        self.reservoir: deque[float] = deque(maxlen=reservoir_size)
        # per-bound observation counts (+1 overflow slot); cumulated only
        # at collect() time so the hot path is a single increment
        self.buckets = [0] * (len(BUCKET_BOUNDS) + 1)
        # per-bucket last observed (trace_id, seconds, wall_time) — the
        # OpenMetrics exemplar linking each bucket to a concrete trace
        self.exemplars: list[tuple[str, float, float] | None] = [None] * (
            len(BUCKET_BOUNDS) + 1
        )

    def snapshot(self, name: str) -> dict[str, Any]:
        samples = list(self.reservoir)
        p50 = percentile(samples, 50.0)
        p95 = percentile(samples, 95.0)
        return {
            "name": name,
            "count": self.count,
            "errors": self.errors,
            "inclusive_ms": self.inclusive * 1000.0,
            "exclusive_ms": self.exclusive * 1000.0,
            "mean_inclusive_ms": (
                self.inclusive / self.count * 1000.0 if self.count else None
            ),
            "p50_ms": p50 * 1000.0 if p50 is not None else None,
            "p95_ms": p95 * 1000.0 if p95 is not None else None,
        }


class SpanStatsSink:
    """Aggregate finished traces into per-operation cost accounting."""

    def __init__(self, reservoir_size: int = DEFAULT_RESERVOIR) -> None:
        if reservoir_size < 1:
            raise ValueError(
                f"reservoir_size must be >= 1, got {reservoir_size}"
            )
        self._reservoir_size = reservoir_size
        self._lock = threading.Lock()
        self._ops: dict[str, _OpStats] = {}
        self.traces_seen = 0

    def __call__(self, trace: Trace) -> None:
        # time in direct children, keyed by parent span id — subtracting it
        # from each span's own duration yields exclusive (self) time
        child_seconds: dict[str, float] = {}
        for span in trace.spans:
            if span.parent_id is not None:
                child_seconds[span.parent_id] = (
                    child_seconds.get(span.parent_id, 0.0)
                    + span.duration_seconds
                )
        with self._lock:
            self.traces_seen += 1
            for span in trace.spans:
                stats = self._ops.get(span.name)
                if stats is None:
                    stats = self._ops[span.name] = _OpStats(
                        self._reservoir_size
                    )
                inclusive = span.duration_seconds
                stats.count += 1
                if span.status != "ok":
                    stats.errors += 1
                stats.inclusive += inclusive
                # clamp: a child that outlives its parent (pooled work
                # joined after the span closed) must not go negative
                stats.exclusive += max(
                    0.0, inclusive - child_seconds.get(span.span_id, 0.0)
                )
                stats.reservoir.append(inclusive)
                index = bisect_left(BUCKET_BOUNDS, inclusive)
                stats.buckets[index] += 1
                stats.exemplars[index] = (
                    trace.trace_id,
                    inclusive,
                    span.started_at,
                )

    def reset(self) -> None:
        with self._lock:
            self._ops.clear()
            self.traces_seen = 0

    def summary(self, limit: int | None = None) -> dict[str, Any]:
        """The ``/debug/spans/summary`` payload, heaviest-exclusive first."""
        with self._lock:
            rows = [
                stats.snapshot(name) for name, stats in self._ops.items()
            ]
            traces_seen = self.traces_seen
        rows.sort(key=lambda row: -row["exclusive_ms"])
        if limit is not None:
            rows = rows[: max(0, limit)]
        return {"traces_seen": traces_seen, "operations": rows}

    def collect(self) -> list[MetricFamily]:
        """Registry collector: span cost counters and a true histogram.

        ``subdex_span_seconds`` is exported as a cumulative Prometheus
        histogram (``_bucket``/``_sum``/``_count``) so tails can be
        aggregated across processes and over time; the reservoir-derived
        p50/p95 remain available as ``subdex_span_quantile_seconds``
        gauges for quick eyeballing, clearly separated from the
        aggregatable series.
        """
        with self._lock:
            snapshots = [
                (
                    stats.snapshot(name),
                    list(stats.buckets),
                    list(stats.exemplars),
                )
                for name, stats in sorted(self._ops.items())
            ]
        counts = MetricFamily(
            "subdex_span_count_total",
            "counter",
            "Finished spans by operation name.",
        )
        errors = MetricFamily(
            "subdex_span_errors_total",
            "counter",
            "Spans finishing in error status by operation name.",
        )
        inclusive = MetricFamily(
            "subdex_span_inclusive_seconds_total",
            "counter",
            "Total inclusive (children included) span time by operation.",
        )
        exclusive = MetricFamily(
            "subdex_span_exclusive_seconds_total",
            "counter",
            "Total exclusive (self) span time by operation.",
        )
        histogram = MetricFamily(
            "subdex_span_seconds",
            "histogram",
            "Inclusive span duration histogram by operation.",
        )
        quantiles = MetricFamily(
            "subdex_span_quantile_seconds",
            "gauge",
            "Recent inclusive span duration quantiles by operation.",
        )
        for row, buckets, exemplars in snapshots:
            name = row["name"]
            counts.add(row["count"], name=name)
            errors.add(row["errors"], name=name)
            inclusive.add(row["inclusive_ms"] / 1000.0, name=name)
            exclusive.add(row["exclusive_ms"] / 1000.0, name=name)
            cumulative = 0
            for index, (bound, bucket_count) in enumerate(
                zip(BUCKET_BOUNDS, buckets)
            ):
                cumulative += bucket_count
                histogram.add(
                    cumulative,
                    suffix="_bucket",
                    exemplar=_exemplar(exemplars[index]),
                    name=name,
                    le=f"{bound:g}",
                )
            histogram.add(
                row["count"],
                suffix="_bucket",
                exemplar=_exemplar(exemplars[-1]),
                name=name,
                le="+Inf",
            )
            histogram.add(
                row["inclusive_ms"] / 1000.0, suffix="_sum", name=name
            )
            histogram.add(row["count"], suffix="_count", name=name)
            for q in ("p50", "p95"):
                value = row[f"{q}_ms"]
                if value is not None:
                    quantiles.add(value / 1000.0, name=name, quantile=q)
        return [counts, errors, inclusive, exclusive, histogram, quantiles]


def _exemplar(
    entry: tuple[str, float, float] | None,
) -> Exemplar | None:
    if entry is None:
        return None
    trace_id, seconds, wall_time = entry
    return Exemplar({"trace_id": trace_id}, seconds, wall_time)


def tree_costs(tree: Mapping[str, Any]) -> list[dict[str, Any]]:
    """Flatten one ``?debug=1`` span tree into per-operation costs.

    The client-side analogue of :class:`SpanStatsSink` for a single
    request: walks the nested ``{name, duration_ms, children}`` tree and
    returns per-name rows with inclusive/exclusive milliseconds and call
    counts, heaviest-exclusive first.  Used by
    :meth:`repro.server.client.SubDExClient.explain`.
    """
    totals: dict[str, dict[str, float]] = {}

    def visit(node: Mapping[str, Any]) -> None:
        children = node.get("children") or ()
        inclusive = float(node.get("duration_ms", 0.0))
        child_ms = sum(float(c.get("duration_ms", 0.0)) for c in children)
        row = totals.setdefault(
            str(node.get("name", "?")),
            {"count": 0.0, "inclusive_ms": 0.0, "exclusive_ms": 0.0},
        )
        row["count"] += 1
        row["inclusive_ms"] += inclusive
        row["exclusive_ms"] += max(0.0, inclusive - child_ms)
        for child in children:
            visit(child)

    if tree:
        visit(tree)
    rows = [
        {
            "name": name,
            "count": int(row["count"]),
            "inclusive_ms": row["inclusive_ms"],
            "exclusive_ms": row["exclusive_ms"],
        }
        for name, row in totals.items()
    ]
    rows.sort(key=lambda row: -row["exclusive_ms"])
    return rows
