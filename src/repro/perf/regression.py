"""The regression gate: compare a results directory against a baseline.

``scripts/check_regression.py`` is a thin wrapper over
:func:`compare_dirs`; the logic lives here so tests exercise it directly
and future tooling (dashboards, bisect drivers) can reuse it.

Comparison rules, per benchmark present in the baseline:

* a benchmark missing from the current results is a **failure** — a
  silently dropped bench would otherwise read as "no regression";
* per metric with a direction (``higher_is_better`` true/false), the
  current value may be worse than baseline by at most ``threshold``
  (relative) before it counts as a regression.  Tiny absolute wall-clock
  noise is forgiven by ``min_seconds`` for second-valued metrics — a
  3 ms → 5 ms jump is a 66% "regression" that means nothing;
* informational metrics (direction ``None``) and, under
  ``portable_only``, machine-dependent metrics are reported but never
  gated;
* improvements are recorded (the trajectory's good news) and never fail.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field
from pathlib import Path

from .benchjson import BENCH_FILE_PREFIX, BenchResult, load_results_dir

__all__ = ["Comparison", "RegressionReport", "compare_dirs", "compare_results"]

#: Default relative tolerance before a worse value counts as a regression.
DEFAULT_THRESHOLD = 0.25
#: Second-valued metrics below this absolute delta never regress (noise).
DEFAULT_MIN_SECONDS = 0.02

_SECOND_UNITS = frozenset({"s", "sec", "seconds"})


@dataclass(frozen=True)
class Comparison:
    """One metric's baseline-vs-current verdict."""

    bench: str
    metric: str
    baseline: float
    current: float
    unit: str
    higher_is_better: bool | None
    portable: bool
    #: "ok" | "regression" | "improvement" | "informational" | "skipped"
    status: str
    #: Signed relative change, positive = worse (direction-aware).
    relative_change: float | None = None

    def describe(self) -> str:
        arrow = f"{self.baseline:.4g} -> {self.current:.4g} {self.unit}".strip()
        change = (
            f" ({self.relative_change:+.1%} worse)"
            if self.relative_change is not None and self.relative_change > 0
            else (
                f" ({-self.relative_change:.1%} better)"
                if self.relative_change is not None and self.relative_change < 0
                else ""
            )
        )
        return f"{self.bench}.{self.metric}: {arrow}{change} [{self.status}]"


@dataclass
class RegressionReport:
    """Everything :func:`compare_dirs` found, ready for printing/exiting."""

    comparisons: list[Comparison] = field(default_factory=list)
    missing_benches: list[str] = field(default_factory=list)
    new_benches: list[str] = field(default_factory=list)
    invalid_files: dict[str, list[str]] = field(default_factory=dict)

    @property
    def regressions(self) -> list[Comparison]:
        return [c for c in self.comparisons if c.status == "regression"]

    @property
    def improvements(self) -> list[Comparison]:
        return [c for c in self.comparisons if c.status == "improvement"]

    @property
    def failed(self) -> bool:
        return bool(
            self.regressions or self.missing_benches or self.invalid_files
        )

    def render(self) -> str:
        lines: list[str] = []
        for name, errors in sorted(self.invalid_files.items()):
            lines.append(f"INVALID  {name}: {'; '.join(errors)}")
        for name in self.missing_benches:
            lines.append(f"MISSING  {name}: in baseline but not in current run")
        for comparison in self.comparisons:
            if comparison.status == "regression":
                lines.append(f"WORSE    {comparison.describe()}")
        for comparison in self.comparisons:
            if comparison.status == "improvement":
                lines.append(f"BETTER   {comparison.describe()}")
        ok = sum(1 for c in self.comparisons if c.status == "ok")
        info = sum(
            1
            for c in self.comparisons
            if c.status in ("informational", "skipped")
        )
        for name in self.new_benches:
            lines.append(f"NEW      {name}: no baseline yet")
        lines.append(
            f"checked {len(self.comparisons)} metrics: "
            f"{len(self.regressions)} regressed, "
            f"{len(self.improvements)} improved, {ok} within tolerance, "
            f"{info} informational/skipped"
        )
        return "\n".join(lines)


def _relative_worseness(
    baseline: float, current: float, higher_is_better: bool
) -> float:
    """Positive = worse, negative = better, scaled by the baseline."""
    scale = max(abs(baseline), 1e-12)
    delta = (current - baseline) / scale
    return -delta if higher_is_better else delta


def compare_results(
    baseline: BenchResult,
    current: BenchResult,
    threshold: float = DEFAULT_THRESHOLD,
    min_seconds: float = DEFAULT_MIN_SECONDS,
    portable_only: bool = False,
) -> list[Comparison]:
    """Compare one benchmark's current metrics against its baseline."""
    comparisons: list[Comparison] = []
    for key, base_metric in sorted(baseline.metrics.items()):
        cur_metric = current.metrics.get(key)
        if cur_metric is None:
            # a vanished metric is suspicious but not a regression: bench
            # configs evolve; the baseline refresh workflow covers it
            continue
        common = {
            "bench": baseline.name,
            "metric": key,
            "baseline": base_metric.value,
            "current": cur_metric.value,
            "unit": cur_metric.unit,
            "higher_is_better": base_metric.higher_is_better,
            "portable": base_metric.portable,
        }
        if base_metric.higher_is_better is None:
            comparisons.append(Comparison(**common, status="informational"))
            continue
        if portable_only and not base_metric.portable:
            comparisons.append(Comparison(**common, status="skipped"))
            continue
        worseness = _relative_worseness(
            base_metric.value, cur_metric.value, base_metric.higher_is_better
        )
        status = "ok"
        if worseness > threshold:
            status = "regression"
            if (
                base_metric.unit in _SECOND_UNITS
                and abs(cur_metric.value - base_metric.value) < min_seconds
            ):
                status = "ok"  # sub-noise absolute delta on a timing metric
        elif worseness < -threshold:
            status = "improvement"
        comparisons.append(
            Comparison(**common, status=status, relative_change=worseness)
        )
    return comparisons


def _bench_name(filename: str) -> str:
    """``BENCH_<name>.json`` -> ``<name>`` (best effort, for filtering)."""
    stem = Path(filename).stem
    if stem.startswith(BENCH_FILE_PREFIX):
        return stem[len(BENCH_FILE_PREFIX):]
    return stem


def compare_dirs(
    baseline_dir: str | Path,
    current_dir: str | Path,
    threshold: float = DEFAULT_THRESHOLD,
    min_seconds: float = DEFAULT_MIN_SECONDS,
    portable_only: bool = False,
    only: Iterable[str] | None = None,
) -> RegressionReport:
    """Compare every baseline ``BENCH_*.json`` against the current run.

    ``only`` restricts the gate to the named benchmarks — the escape
    hatch for focused CI jobs that run a single bench file into an
    otherwise-empty results directory, where every other baseline bench
    would falsely count as "missing".
    """
    baseline, baseline_problems = load_results_dir(baseline_dir)
    current, current_problems = load_results_dir(current_dir)
    selected = None if only is None else set(only)
    if selected is not None:
        baseline = {n: r for n, r in baseline.items() if n in selected}
        current = {n: r for n, r in current.items() if n in selected}
    report = RegressionReport()
    # a malformed file on either side fails the gate: the baseline must
    # stay trustworthy and the current run must be schema-valid
    for name, errors in {**baseline_problems, **current_problems}.items():
        if selected is not None and _bench_name(name) not in selected:
            continue
        report.invalid_files[name] = errors
    for name, base_result in sorted(baseline.items()):
        cur_result = current.get(name)
        if cur_result is None:
            report.missing_benches.append(name)
            continue
        report.comparisons.extend(
            compare_results(
                base_result,
                cur_result,
                threshold=threshold,
                min_seconds=min_seconds,
                portable_only=portable_only,
            )
        )
    report.new_benches = sorted(set(current) - set(baseline))
    return report
