"""A stdlib sampling wall-clock profiler.

A background thread periodically snapshots every thread's Python stack via
``sys._current_frames()`` and counts identical stacks.  Sampling answers
the fleet-level question tracing cannot: *where does aggregate time go*,
across every request and maintenance thread at once, with no
instrumentation on any hot path — the profiled code runs unmodified, and
when no profile is being taken the profiler costs nothing at all (no
thread, no hooks).

The result renders two ways:

* **collapsed** — one ``frame;frame;...;leaf count`` line per distinct
  stack, the flamegraph-ready format of Brendan Gregg's ``flamegraph.pl``
  and speedscope's "collapsed stacks" importer;
* **json** — a machine-readable dict with per-stack counts plus sampling
  metadata (duration, interval, sample/stack counts).

Accuracy notes: this is a *wall-clock* profiler — a thread blocked on a
lock or socket is sampled right where it waits, which is exactly what a
latency investigation wants.  The sampler holds the GIL while it walks
frames, so the overhead scales with thread count × sampling rate; the
default 5 ms interval keeps it well under the observability layer's 5%
budget (``benchmarks/bench_obs_overhead.py`` enforces this).
"""

from __future__ import annotations

import sys
import threading
import time
from collections import Counter
from typing import Any, Iterable, Mapping

__all__ = [
    "Profile",
    "SamplingProfiler",
    "filter_stacks",
    "merge_profiles",
    "profile_for",
]

#: Default seconds between stack snapshots (5 ms ≈ 200 Hz).
DEFAULT_INTERVAL = 0.005

_PROFILER_THREAD_NAME = "subdex-profiler"


def _frame_label(frame) -> str:
    """``module:function`` — compact, aggregatable across processes."""
    module = frame.f_globals.get("__name__", "?")
    return f"{module}:{frame.f_code.co_name}"


def _walk_stack(frame, label_cache: dict) -> tuple[str, ...]:
    """Root-first labels of one thread's stack.

    ``label_cache`` maps code objects to their rendered labels: the same
    functions appear in every sample, so label formatting (a globals
    lookup plus an f-string) happens once per function per run instead of
    once per frame per sample.  Keys are the code objects themselves —
    keeping them alive for the run's duration makes id-reuse impossible.
    """
    labels: list[str] = []
    while frame is not None:
        code = frame.f_code
        label = label_cache.get(code)
        if label is None:
            label = _frame_label(frame)
            label_cache[code] = label
        labels.append(label)
        frame = frame.f_back
    labels.reverse()
    return tuple(labels)


class Profile:
    """A finished sampling run: stack → sample count, plus metadata."""

    def __init__(
        self,
        stacks: Mapping[tuple[str, ...], int],
        n_samples: int,
        duration_seconds: float,
        interval_seconds: float,
    ) -> None:
        self.stacks = dict(stacks)
        self.n_samples = n_samples
        self.duration_seconds = duration_seconds
        self.interval_seconds = interval_seconds

    def __len__(self) -> int:
        return len(self.stacks)

    def total_samples(self) -> int:
        """Thread-stack observations (≥ ``n_samples`` with many threads)."""
        return sum(self.stacks.values())

    def render_collapsed(self) -> str:
        """Flamegraph-ready collapsed stacks, heaviest first."""
        lines = [
            ";".join(stack) + f" {count}"
            for stack, count in sorted(
                self.stacks.items(), key=lambda item: (-item[1], item[0])
            )
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def to_dict(self) -> dict[str, Any]:
        return {
            "duration_seconds": self.duration_seconds,
            "interval_seconds": self.interval_seconds,
            "n_samples": self.n_samples,
            "n_stacks": len(self.stacks),
            "total_stack_samples": self.total_samples(),
            "stacks": [
                {"frames": list(stack), "count": count}
                for stack, count in sorted(
                    self.stacks.items(), key=lambda item: (-item[1], item[0])
                )
            ],
        }

    def top_functions(self, limit: int = 20) -> list[tuple[str, int]]:
        """Leaf-frame sample counts — the "where is time spent" headline."""
        leaves: Counter[str] = Counter()
        for stack, count in self.stacks.items():
            if stack:
                leaves[stack[-1]] += count
        return leaves.most_common(limit)


class SamplingProfiler:
    """Samples all thread stacks on a background thread.

    .. code-block:: python

        profiler = SamplingProfiler(interval=0.005)
        profiler.start()
        ...  # workload
        profile = profiler.stop()
        print(profile.render_collapsed())

    Also usable as a context manager (the profile is on ``.profile``
    afterwards).  ``start`` after ``start`` raises; ``stop`` without
    ``start`` raises — the profiler is one-shot by design, so a finished
    run's data can never be mixed into a later one.
    """

    def __init__(self, interval: float = DEFAULT_INTERVAL) -> None:
        if not 0.0001 <= interval <= 1.0:
            raise ValueError(
                f"interval must be in [0.0001, 1.0] seconds, got {interval}"
            )
        self.interval = float(interval)
        self._samples: Counter[tuple[str, ...]] = Counter()
        self._n_samples = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._started_at: float | None = None
        self.profile: Profile | None = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started (one-shot)")
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name=_PROFILER_THREAD_NAME, daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> Profile:
        if self._thread is None:
            raise RuntimeError("profiler was never started")
        self._stop.set()
        # the sampling loop wakes at most one interval later; join with a
        # generous bound so a wedged interpreter surfaces as a test failure
        # rather than a hang
        self._thread.join(timeout=max(1.0, self.interval * 20))
        assert not self._thread.is_alive(), "profiler thread failed to stop"
        duration = time.perf_counter() - (self._started_at or 0.0)
        self.profile = Profile(
            self._samples, self._n_samples, duration, self.interval
        )
        return self.profile

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _run(self) -> None:
        own_id = threading.get_ident()
        label_cache: dict = {}
        while not self._stop.wait(self.interval):
            frames = sys._current_frames()
            self._n_samples += 1
            for thread_id, frame in frames.items():
                if thread_id == own_id:
                    continue
                self._samples[_walk_stack(frame, label_cache)] += 1
            del frames  # drop the frame references promptly


def profile_for(seconds: float, interval: float = DEFAULT_INTERVAL) -> Profile:
    """Block for ``seconds`` while sampling every other thread.

    The serving layer's ``GET /debug/profile`` body: the handler thread
    sleeps (and is sampled doing so — an honest picture of an idle server)
    while the sampler watches the rest of the process.
    """
    if seconds <= 0:
        raise ValueError(f"seconds must be > 0, got {seconds}")
    profiler = SamplingProfiler(interval=interval)
    profiler.start()
    try:
        time.sleep(seconds)
    finally:
        profile = profiler.stop()
    return profile


def filter_stacks(
    profile: Profile, substring: str
) -> dict[tuple[str, ...], int]:
    """Stacks containing a frame whose label contains ``substring``."""
    return {
        stack: count
        for stack, count in profile.stacks.items()
        if any(substring in label for label in stack)
    }


def merge_profiles(profiles: Iterable[Profile]) -> Profile:
    """Sum several runs (e.g. per-round benchmark profiles) into one."""
    stacks: Counter[tuple[str, ...]] = Counter()
    n_samples = 0
    duration = 0.0
    interval = DEFAULT_INTERVAL
    for profile in profiles:
        stacks.update(profile.stacks)
        n_samples += profile.n_samples
        duration += profile.duration_seconds
        interval = profile.interval_seconds
    return Profile(stacks, n_samples, duration, interval)
