"""The unified benchmark result schema: ``BENCH_<name>.json``.

Every ``benchmarks/bench_*.py`` script reports a human-readable ``.txt``
table *and* a machine-readable JSON result with a fixed schema, so the
repository accumulates a comparable perf trajectory instead of free-form
prints (IDEBench's argument: interactive-system results must be
standardized and machine-comparable to mean anything across runs).

Schema (version 1)::

    {
      "schema_version": 1,
      "name": "index_speedup",              # bench identifier
      "created_at": 1754500000.0,           # unix seconds
      "git_sha": "db20b33..." | null,
      "env": {"python": ..., "platform": ..., "machine": ...,
              "cpu_count": ..., "hostname": ...},
      "config": {...},                      # bench-specific knobs
      "metrics": {
        "<metric>": {
          "value": 3.91,
          "unit": "x",
          "higher_is_better": true | false | null,
          "portable": true | false
        }, ...
      }
    }

``higher_is_better`` drives the regression gate's direction; ``null``
marks an informational metric the gate never compares.  ``portable``
marks machine-independent metrics (speedup ratios, accuracy scores,
counts) that remain comparable across hosts — CI gates on those only,
since absolute wall-clock times from different machines are not
comparable.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

__all__ = [
    "BENCH_FILE_PREFIX",
    "SCHEMA_VERSION",
    "BenchResult",
    "Metric",
    "bench_json_path",
    "env_fingerprint",
    "git_sha",
    "load_results_dir",
    "merge_best",
    "validate_bench_result",
    "write_bench_json",
]

SCHEMA_VERSION = 1
BENCH_FILE_PREFIX = "BENCH_"


@dataclass(frozen=True)
class Metric:
    """One measured quantity of a benchmark run.

    ``higher_is_better=None`` marks an informational metric: recorded for
    the trajectory, never gated (e.g. a paper-reproduction score whose
    drift in *either* direction needs a human eye).  ``portable=True``
    marks values comparable across machines (ratios, rates, counts);
    absolute wall-clock metrics should leave it ``False``.
    """

    value: float
    unit: str = "s"
    higher_is_better: bool | None = False
    portable: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {
            "value": float(self.value),
            "unit": self.unit,
            "higher_is_better": self.higher_is_better,
            "portable": self.portable,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Metric":
        return cls(
            value=float(payload["value"]),
            unit=str(payload.get("unit", "")),
            higher_is_better=payload.get("higher_is_better", False),
            portable=bool(payload.get("portable", False)),
        )


def git_sha(repo_dir: str | Path | None = None) -> str | None:
    """The current commit sha, or ``None`` outside a git checkout."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(repo_dir) if repo_dir else None,
            capture_output=True,
            text=True,
            timeout=5.0,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if completed.returncode != 0:
        return None
    sha = completed.stdout.strip()
    return sha or None


def env_fingerprint() -> dict[str, Any]:
    """Enough environment to interpret (and distrust) absolute timings."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "hostname": socket.gethostname(),
    }


@dataclass
class BenchResult:
    """One benchmark run's machine-readable result."""

    name: str
    metrics: dict[str, Metric]
    config: dict[str, Any]
    git_sha: str | None = None
    created_at: float | None = None
    env: dict[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "name": self.name,
            "created_at": (
                self.created_at if self.created_at is not None else time.time()
            ),
            "git_sha": self.git_sha,
            "env": self.env if self.env is not None else env_fingerprint(),
            "config": dict(self.config),
            "metrics": {
                key: metric.to_dict() for key, metric in self.metrics.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "BenchResult":
        errors = validate_bench_result(payload)
        if errors:
            raise ValueError(
                f"invalid bench result: {'; '.join(errors)}"
            )
        return cls(
            name=str(payload["name"]),
            metrics={
                key: Metric.from_dict(value)
                for key, value in payload["metrics"].items()
            },
            config=dict(payload["config"]),
            git_sha=payload.get("git_sha"),
            created_at=payload.get("created_at"),
            env=dict(payload.get("env") or {}),
        )


def validate_bench_result(payload: Any) -> list[str]:
    """Schema-check one ``BENCH_*.json`` payload; returns problem strings.

    An empty list means the payload is valid.  Used by the schema tests,
    ``scripts/check_regression.py`` (a malformed current result is itself
    a failure) and :func:`load_results_dir`.
    """
    errors: list[str] = []
    if not isinstance(payload, Mapping):
        return ["payload is not a JSON object"]
    if payload.get("schema_version") != SCHEMA_VERSION:
        errors.append(
            f"schema_version must be {SCHEMA_VERSION}, "
            f"got {payload.get('schema_version')!r}"
        )
    name = payload.get("name")
    if not isinstance(name, str) or not name:
        errors.append(f"name must be a non-empty string, got {name!r}")
    created = payload.get("created_at")
    if not isinstance(created, (int, float)):
        errors.append(f"created_at must be a number, got {created!r}")
    sha = payload.get("git_sha")
    if sha is not None and not isinstance(sha, str):
        errors.append(f"git_sha must be a string or null, got {sha!r}")
    env = payload.get("env")
    if not isinstance(env, Mapping):
        errors.append("env must be an object")
    elif "python" not in env or "platform" not in env:
        errors.append("env must record at least python and platform")
    if not isinstance(payload.get("config"), Mapping):
        errors.append("config must be an object")
    metrics = payload.get("metrics")
    if not isinstance(metrics, Mapping) or not metrics:
        errors.append("metrics must be a non-empty object")
    else:
        for key, entry in metrics.items():
            where = f"metrics[{key!r}]"
            if not isinstance(entry, Mapping):
                errors.append(f"{where} is not an object")
                continue
            value = entry.get("value")
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                errors.append(f"{where}.value must be a number, got {value!r}")
            elif value != value:  # NaN — strict JSON parsers reject it
                errors.append(f"{where}.value is NaN")
            if not isinstance(entry.get("unit", ""), str):
                errors.append(f"{where}.unit must be a string")
            direction = entry.get("higher_is_better", False)
            if direction not in (True, False, None):
                errors.append(
                    f"{where}.higher_is_better must be true/false/null, "
                    f"got {direction!r}"
                )
            if not isinstance(entry.get("portable", False), bool):
                errors.append(f"{where}.portable must be a boolean")
    return errors


def bench_json_path(directory: str | Path, name: str) -> Path:
    return Path(directory) / f"{BENCH_FILE_PREFIX}{name}.json"


def write_bench_json(
    name: str,
    metrics: Mapping[str, Metric | float],
    config: Mapping[str, Any] | None = None,
    directory: str | Path = "benchmarks/results",
) -> Path:
    """Write ``BENCH_<name>.json``; plain floats become seconds metrics."""
    normalised = {
        key: value if isinstance(value, Metric) else Metric(float(value))
        for key, value in metrics.items()
    }
    result = BenchResult(
        name=name,
        metrics=normalised,
        config=dict(config or {}),
        git_sha=git_sha(),
    )
    payload = result.to_dict()
    errors = validate_bench_result(payload)
    if errors:  # a writer bug must fail the bench, not poison the trajectory
        raise ValueError(f"refusing to write invalid result: {errors}")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = bench_json_path(directory, name)
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True, allow_nan=False) + "\n",
        encoding="utf-8",
    )
    return path


def load_results_dir(
    directory: str | Path,
) -> tuple[dict[str, BenchResult], dict[str, list[str]]]:
    """Read every ``BENCH_*.json`` under ``directory``.

    Returns ``(results_by_name, problems_by_filename)`` — unparseable or
    schema-invalid files land in the second map instead of raising, so a
    regression check can report *all* broken files at once.
    """
    results: dict[str, BenchResult] = {}
    problems: dict[str, list[str]] = {}
    directory = Path(directory)
    for path in sorted(directory.glob(f"{BENCH_FILE_PREFIX}*.json")):
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            problems[path.name] = [f"unreadable: {error}"]
            continue
        errors = validate_bench_result(payload)
        if errors:
            problems[path.name] = errors
            continue
        result = BenchResult.from_dict(payload)
        results[result.name] = result
    return results, problems


def merge_best(runs: list[BenchResult]) -> BenchResult:
    """Best-of-k merge of repeated runs of ONE benchmark.

    Per metric: the minimum for lower-is-better, the maximum for
    higher-is-better, the **last** observation for informational metrics
    (direction ``None`` means "best" is undefined).  Best-of-k is the
    standard noise defence for wall-clock benchmarks: the minimum of k
    runs estimates the noise floor, which is what a regression gate
    should compare.
    """
    if not runs:
        raise ValueError("merge_best needs at least one run")
    merged = dict(runs[-1].metrics)
    for run in runs[:-1]:
        for key, metric in run.metrics.items():
            current = merged.get(key)
            if current is None:
                merged[key] = metric
            elif metric.higher_is_better is True:
                if metric.value > current.value:
                    merged[key] = metric
            elif metric.higher_is_better is False:
                if metric.value < current.value:
                    merged[key] = metric
            # informational (None): keep the last run's value
    last = runs[-1]
    return BenchResult(
        name=last.name,
        metrics=merged,
        config=dict(last.config, best_of=len(runs)),
        git_sha=last.git_sha,
        created_at=last.created_at,
        env=last.env,
    )
