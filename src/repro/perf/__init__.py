"""``repro.perf`` — performance observability.

Three pillars, layered on :mod:`repro.obs` (ISSUE 5):

* :mod:`repro.perf.profiler` — a stdlib sampling wall-clock profiler
  (``sys._current_frames()`` on a background thread) with
  flamegraph-ready collapsed-stack output; behind ``GET /debug/profile``
  and ``python -m repro profile``;
* :mod:`repro.perf.spanstats` — span cost accounting: a trace sink that
  aggregates finished spans into per-operation inclusive/exclusive time,
  call counts and p50/p95 tables; behind ``GET /debug/spans/summary``
  and span-cost families on the metrics registry;
* :mod:`repro.perf.benchjson` + :mod:`repro.perf.regression` — the
  unified ``BENCH_<name>.json`` benchmark result schema, the best-of-k
  merge, and the baseline regression gate behind
  ``scripts/check_regression.py``.

See ``docs/PERFORMANCE.md`` for the schema and the regression-gate
workflow, ``docs/OBSERVABILITY.md`` for the profiling endpoints.
"""

from .benchjson import (
    SCHEMA_VERSION,
    BenchResult,
    Metric,
    env_fingerprint,
    git_sha,
    load_results_dir,
    merge_best,
    validate_bench_result,
    write_bench_json,
)
from .profiler import (
    Profile,
    SamplingProfiler,
    filter_stacks,
    merge_profiles,
    profile_for,
)
from .regression import (
    Comparison,
    RegressionReport,
    compare_dirs,
    compare_results,
)
from .spanstats import SpanStatsSink, tree_costs

__all__ = [
    "BenchResult",
    "Comparison",
    "Metric",
    "Profile",
    "RegressionReport",
    "SCHEMA_VERSION",
    "SamplingProfiler",
    "SpanStatsSink",
    "compare_dirs",
    "compare_results",
    "env_fingerprint",
    "filter_stacks",
    "git_sha",
    "load_results_dir",
    "merge_best",
    "merge_profiles",
    "profile_for",
    "tree_costs",
    "validate_bench_result",
    "write_bench_json",
]
