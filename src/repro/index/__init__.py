"""Sufficient-statistic index layer (see `docs/PERFORMANCE.md`).

Turns the Recommendation Builder's per-candidate full scans into posting
list intersections, fused candidate-cube slices and delta-maintained
histograms — same integers, computed along cheaper routes.
"""

from .cubes import CandidateCube, FilterAxis, StepSlices, axis_for, cube_cells
from .delta import delta_counts, direct_counts, prefer_delta, split_rows
from .facade import IndexedDatabase, NeighborhoodContext
from .postings import PostingList, PostingListStore

__all__ = [
    "CandidateCube",
    "FilterAxis",
    "IndexedDatabase",
    "NeighborhoodContext",
    "PostingList",
    "PostingListStore",
    "StepSlices",
    "axis_for",
    "cube_cells",
    "delta_counts",
    "direct_counts",
    "prefer_delta",
    "split_rows",
]
