"""Posting lists: precomputed row sets per ⟨side, attribute, value⟩.

The naive :class:`~repro.model.groups.RatingGroup` materialisation
evaluates every selection pair as a fresh full-table mask — O(|U| + |I| +
|R|) per candidate even when siblings share almost all of their rows.  A
*posting list* stores, per attribute-value pair, the sorted row indices it
selects — once — so a criteria's rating group becomes an intersection of
small sorted arrays (paper §2's precomputed in-memory statistics, after
Data Canopy [57]).

Two arrays are kept per pair: the **rating-record rows** (what group
materialisation needs) and the **entity rows** (what the group's
reviewer/item cardinalities need).  Lists are built lazily on first use,
guarded by per-key single-flight locks so concurrent scoring threads build
each list once, and evicted LRU-first when the configured memory budget is
exceeded.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..concurrency import KeyedSingleFlight
from ..model.database import Side, SubjectiveDatabase
from ..model.groups import AVPair, SelectionCriteria
from ..obs import span as obs_span

__all__ = ["PostingList", "PostingListStore"]


@dataclass(frozen=True)
class PostingList:
    """The precomputed row sets of one attribute-value pair."""

    pair: AVPair
    rating_rows: np.ndarray
    entity_rows: np.ndarray

    @property
    def nbytes(self) -> int:
        return int(self.rating_rows.nbytes + self.entity_rows.nbytes)


class PostingListStore:
    """Lazily-built, memory-budgeted, thread-safe posting lists.

    ``memory_budget_bytes`` bounds the resident posting bytes; when an
    insertion pushes the store past the budget, least-recently-used lists
    are dropped (they rebuild on demand, so eviction only costs time).
    """

    def __init__(
        self,
        database: SubjectiveDatabase,
        memory_budget_bytes: int = 64 * 1024 * 1024,
    ) -> None:
        if memory_budget_bytes < 1:
            raise ValueError(
                f"memory budget must be positive, got {memory_budget_bytes}"
            )
        self._db = database
        self._budget = int(memory_budget_bytes)
        self._lock = threading.Lock()
        self._flight = KeyedSingleFlight()
        self._store: OrderedDict[AVPair, PostingList] = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.builds = 0
        self.evictions = 0

    # -- bookkeeping --------------------------------------------------------
    @property
    def database(self) -> SubjectiveDatabase:
        return self._db

    @property
    def memory_budget_bytes(self) -> int:
        return self._budget

    @property
    def resident_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def stats(self) -> dict[str, int | float]:
        with self._lock:
            requests = self.hits + self.misses
            return {
                "entries": len(self._store),
                "bytes": self._bytes,
                "budget_bytes": self._budget,
                "hits": self.hits,
                "misses": self.misses,
                "builds": self.builds,
                "evictions": self.evictions,
                "hit_rate": self.hits / requests if requests else 0.0,
            }

    # -- the store ----------------------------------------------------------
    def _build(self, pair: AVPair) -> PostingList:
        table = self._db.entity_table(pair.side)
        entity_mask = table.column(pair.attribute).equals_mask(pair.value)
        rating_mask = self._db.rating_rows_for_entities(pair.side, entity_mask)
        return PostingList(
            pair,
            np.flatnonzero(rating_mask).astype(np.int64, copy=False),
            np.flatnonzero(entity_mask).astype(np.int64, copy=False),
        )

    def get(self, pair: AVPair) -> PostingList:
        """The (building if necessary) posting list of ``pair``."""
        with self._lock:
            cached = self._store.get(pair)
            if cached is not None:
                self._store.move_to_end(pair)
                self.hits += 1
                return cached
            self.misses += 1
        with self._flight.lock(pair):
            with self._lock:
                cached = self._store.get(pair)
                if cached is not None:
                    self._store.move_to_end(pair)
                    return cached
            with obs_span(
                "index.postings.build",
                side=pair.side.value,
                attribute=pair.attribute,
                value=str(pair.value),
            ):
                posting = self._build(pair)
            with self._lock:
                self.builds += 1
                self._store[pair] = posting
                self._bytes += posting.nbytes
                while self._bytes > self._budget and len(self._store) > 1:
                    __, evicted = self._store.popitem(last=False)
                    self._bytes -= evicted.nbytes
                    self.evictions += 1
            return posting

    def rating_rows(self, pair: AVPair) -> np.ndarray:
        return self.get(pair).rating_rows

    def entity_rows(self, pair: AVPair) -> np.ndarray:
        return self.get(pair).entity_rows

    def clear(self) -> None:
        with self._lock:
            self._store.clear()
            self._bytes = 0

    # -- composition --------------------------------------------------------
    def rows_for(self, criteria: SelectionCriteria) -> np.ndarray:
        """Sorted rating-row indices of the criteria's rating group.

        Identical (bit-for-bit) to the naive
        ``np.flatnonzero``-of-record-masks materialisation: an intersection
        of sorted unique arrays, smallest first, is the same ascending row
        set.
        """
        pairs = sorted(criteria.pairs)
        if not pairs:
            return np.arange(self._db.n_ratings, dtype=np.int64)
        postings = sorted(
            (self.rating_rows(pair) for pair in pairs), key=len
        )
        out = postings[0]
        for posting in postings[1:]:
            if out.size == 0:
                break
            out = np.intersect1d(out, posting, assume_unique=True)
        return out

    def entity_count(self, side: Side, criteria: SelectionCriteria) -> int:
        """|g_U| or |g_I|: entities matching the criteria's ``side`` pairs."""
        pairs = sorted(
            pair for pair in criteria.pairs if pair.side is side
        )
        if not pairs:
            return len(self._db.entity_table(side))
        postings = sorted(
            (self.entity_rows(pair) for pair in pairs), key=len
        )
        out = postings[0]
        for posting in postings[1:]:
            if out.size == 0:
                break
            out = np.intersect1d(out, posting, assume_unique=True)
        return int(out.size)
