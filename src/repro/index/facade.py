"""`IndexedDatabase`: the sufficient-statistic index behind the engine.

The facade owns the posting-list store and hands the Recommendation
Builder a per-step :class:`NeighborhoodContext` that serves every
candidate operation's sufficient statistics by the cheapest exact route:

* clean FILTER on a categorical/numeric attribute → one slice of a fused
  :class:`~repro.index.cubes.CandidateCube` (built once per attribute per
  step, shared by all of that attribute's values);
* everything else (GENERALIZE, CHANGE, multi-valued FILTER, compounds) →
  rows from posting-list intersections, histograms either delta-maintained
  from the parent's cached counts or scanned directly, whichever touches
  fewer rows.

All routes produce the integer count matrices a naive full scan would, so
the indexed engine is byte-identical to the oracle — `use_index` merely
chooses how the same numbers are computed.
"""

from __future__ import annotations

import threading
from typing import Any

import numpy as np

from ..concurrency import KeyedSingleFlight
from ..core.rating_maps import RatingMapSpec, enumerate_map_specs
from ..model.database import Side, SubjectiveDatabase
from ..obs import span as obs_span
from ..model.groups import RatingGroup, SelectionCriteria
from ..model.operations import Operation
from .cubes import CandidateCube, FilterAxis, StepSlices, axis_for, cube_cells
from .delta import delta_counts, direct_counts, prefer_delta, split_rows
from .postings import PostingListStore

__all__ = ["IndexedDatabase", "NeighborhoodContext"]


class IndexedDatabase:
    """Index layer over one :class:`SubjectiveDatabase`.

    ``memory_budget_bytes`` bounds the posting-list store;
    ``max_cube_cells`` caps the histogram cells of any one candidate cube
    (an attribute whose cube would exceed it falls back to the posting
    path — correctness never depends on the budget).
    """

    def __init__(
        self,
        database: SubjectiveDatabase,
        memory_budget_bytes: int = 64 * 1024 * 1024,
        max_cube_cells: int = 4_000_000,
    ) -> None:
        self._db = database
        self._postings = PostingListStore(database, memory_budget_bytes)
        self._max_cube_cells = int(max_cube_cells)
        self._axes: dict[tuple[Side, str], FilterAxis | None] = {}
        self._axes_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self._counters = {
            "cube_builds": 0,
            "cube_bytes": 0,
            "candidates_cube": 0,
            "candidates_delta": 0,
            "candidates_direct": 0,
        }

    # -- plumbing -----------------------------------------------------------
    @property
    def database(self) -> SubjectiveDatabase:
        return self._db

    @property
    def postings(self) -> PostingListStore:
        return self._postings

    @property
    def max_cube_cells(self) -> int:
        return self._max_cube_cells

    def _bump(self, counter: str, by: int = 1) -> None:
        with self._counter_lock:
            self._counters[counter] += by

    def stats(self) -> dict[str, Any]:
        """Hit/bytes counters for `/metrics`."""
        with self._counter_lock:
            counters = dict(self._counters)
        return {"postings": self._postings.stats(), **counters}

    # -- group materialisation ---------------------------------------------
    def rows_for(self, criteria: SelectionCriteria) -> np.ndarray:
        return self._postings.rows_for(criteria)

    def group(self, criteria: SelectionCriteria) -> RatingGroup:
        """Materialise a rating group from postings (no table scans)."""
        return RatingGroup.from_rows(
            self._db,
            criteria,
            self.rows_for(criteria),
            self._postings.entity_count(Side.REVIEWER, criteria),
            self._postings.entity_count(Side.ITEM, criteria),
        )

    def axis(self, side: Side, attribute: str) -> FilterAxis | None:
        key = (side, attribute)
        with self._axes_lock:
            if key in self._axes:
                return self._axes[key]
        built = axis_for(self._db, side, attribute)
        with self._axes_lock:
            return self._axes.setdefault(key, built)

    def neighborhood(self, parent: RatingGroup) -> "NeighborhoodContext":
        """Per-step context for scoring ``parent``'s operation neighbourhood."""
        return NeighborhoodContext(self, parent)


class NeighborhoodContext:
    """Candidate statistics for one recommendation step.

    Cubes and the parent's own histograms are built lazily, once, under
    per-key single-flight locks — the Recommendation Builder scores
    candidates from many threads at once.
    """

    def __init__(self, index: IndexedDatabase, parent: RatingGroup) -> None:
        self._index = index
        self._db = index.database
        self._parent = parent
        self._parent_rows = parent.rows
        self._parent_size = len(parent)
        self._specs = tuple(
            enumerate_map_specs(self._db, parent.criteria)
        )
        self._spec_set = frozenset(self._specs)
        self._lock = threading.Lock()
        self._flight = KeyedSingleFlight()
        self._slices = StepSlices(
            self._db,
            self._parent_rows,
            on_pair_build=lambda nbytes: index._bump("cube_bytes", nbytes),
        )
        self._cubes: dict[tuple[Side, str], CandidateCube | None] = {}
        self._parent_counts: dict[RatingMapSpec, np.ndarray] = {}

    @property
    def parent_size(self) -> int:
        return self._parent_size

    @property
    def parent_rows(self) -> np.ndarray:
        return self._parent_rows

    def parent_counts(self, spec: RatingMapSpec) -> np.ndarray:
        """The parent group's histogram matrix for ``spec`` (cached)."""
        with self._lock:
            counts = self._parent_counts.get(spec)
            if counts is not None:
                return counts
        with self._flight.lock(("parent", spec)):
            with self._lock:
                counts = self._parent_counts.get(spec)
                if counts is not None:
                    return counts
            counts = self._slices.group_hist(spec)
            with self._lock:
                self._parent_counts[spec] = counts
            return counts

    def _child_specs(self, side: Side, attribute: str) -> tuple[RatingMapSpec, ...]:
        """Specs of a FILTER child on ``attribute`` — the parent's minus it.

        Matches ``enumerate_map_specs(db, parent.with_pair(...))`` exactly:
        enumeration iterates the database's grouping attributes in a fixed
        order and skips fixed ones, so filtering the parent's sequence
        preserves both the set and the order.
        """
        return tuple(
            s
            for s in self._specs
            if not (s.side is side and s.attribute == attribute)
        )

    def cube(self, side: Side, attribute: str) -> CandidateCube | None:
        key = (side, attribute)
        with self._lock:
            if key in self._cubes:
                return self._cubes[key]
        with self._flight.lock(("cube", key)):
            with self._lock:
                if key in self._cubes:
                    return self._cubes[key]
            cube: CandidateCube | None = None
            axis = self._index.axis(side, attribute)
            if axis is not None:
                specs = self._child_specs(side, attribute)
                cells = cube_cells(self._db, axis, specs) if specs else 0
                if specs and cells <= self._index.max_cube_cells:
                    with obs_span(
                        "index.cube.build",
                        side=side.value,
                        attribute=attribute,
                        cells=cells,
                    ):
                        cube = CandidateCube(self._slices, axis, specs)
                    self._index._bump("cube_builds")
            with self._lock:
                self._cubes[key] = cube
            return cube

    def filter_route(
        self, operation: Operation
    ) -> "tuple[CandidateCube, int | None] | None":
        """The fused-cube route of a clean single-added-pair FILTER.

        Returns the family cube and the added value's code (``None`` code =
        out-of-domain value, an empty candidate), or ``None`` when the
        operation is not cube-servable (GENERALIZE/CHANGE/compound edits,
        multi-valued attributes, over-budget cubes) and must take the
        posting-list path.  The batched family scorer groups candidates by
        this route.
        """
        target = operation.target
        parent_pairs = self._parent.criteria.pairs
        added = tuple(target.pairs - parent_pairs)
        removed = tuple(parent_pairs - target.pairs)
        if len(added) == 1 and not removed:
            pair = added[0]
            cube = self.cube(pair.side, pair.attribute)
            if cube is not None:
                return cube, cube.axis.code_of(pair.value)
        return None

    def count_cube_candidates(self, n: int) -> None:
        """Attribute ``n`` cube-served candidates to the index counters."""
        self._index._bump("candidates_cube", n)

    def candidate(self, operation: Operation) -> "_CubeCandidate | _RowsCandidate":
        """The cheapest exact statistics view of one candidate operation."""
        route = self.filter_route(operation)
        if route is not None:
            cube, code = route
            self._index._bump("candidates_cube")
            return _CubeCandidate(cube, code, operation.target)
        return _RowsCandidate(self, operation.target)


class _CubeCandidate:
    """A clean FILTER candidate served from a fused cube slice."""

    def __init__(
        self,
        cube: CandidateCube,
        code: int | None,
        target: SelectionCriteria,
    ) -> None:
        self._cube = cube
        self._code = code
        self.criteria = target

    @property
    def size(self) -> int:
        return 0 if self._code is None else self._cube.candidate_size(self._code)

    def matches_parent(self, parent_size: int) -> bool:
        # a FILTER child is a subset of the parent, so equal size ⇒ equal rows
        return self.size == parent_size

    @property
    def specs(self) -> tuple[RatingMapSpec, ...]:
        return self._cube.specs

    def counts_of(self, spec: RatingMapSpec) -> np.ndarray:
        if self._code is None:
            return self._cube.zero_counts(spec)
        return self._cube.candidate_counts(self._code, spec)

    def labels_of(self, spec: RatingMapSpec) -> tuple[Any, ...]:
        return self._cube.labels_of(spec)


class _RowsCandidate:
    """A candidate served from posting intersections + delta maintenance."""

    def __init__(self, ctx: NeighborhoodContext, target: SelectionCriteria) -> None:
        self._ctx = ctx
        self._db = ctx._db
        self.criteria = target
        self._rows = ctx._index.rows_for(target)
        self._diff: tuple[np.ndarray, np.ndarray] | None = None
        self._specs: tuple[RatingMapSpec, ...] | None = None

    @property
    def size(self) -> int:
        return int(self._rows.size)

    def matches_parent(self, parent_size: int) -> bool:
        return self._rows.size == parent_size and bool(
            np.array_equal(self._rows, self._ctx.parent_rows)
        )

    @property
    def specs(self) -> tuple[RatingMapSpec, ...]:
        if self._specs is None:
            self._specs = tuple(
                enumerate_map_specs(self._db, self.criteria)
            )
        return self._specs

    def counts_of(self, spec: RatingMapSpec) -> np.ndarray:
        # |removed| ≥ parent − child, so when parent − child ≥ child the
        # delta can never touch fewer rows than a direct scan — skip even
        # computing the set differences
        delta_possible = (
            spec in self._ctx._spec_set
            and self._ctx.parent_size - self._rows.size < self._rows.size
        )
        if delta_possible:
            if self._diff is None:
                self._diff = split_rows(self._ctx.parent_rows, self._rows)
            removed, added = self._diff
            if prefer_delta(removed, added, self._rows.size):
                self._ctx._index._bump("candidates_delta")
                return delta_counts(
                    self._db, spec, self._ctx.parent_counts(spec), removed, added
                )
        self._ctx._index._bump("candidates_direct")
        return direct_counts(self._db, spec, self._rows)

    def labels_of(self, spec: RatingMapSpec) -> tuple[Any, ...]:
        return self._db.aligned_grouping(spec.side, spec.attribute).labels
