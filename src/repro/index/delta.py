"""Delta-maintained histograms: score a candidate by what changed.

A candidate group usually shares almost all of its rows with the current
selection.  Since per-subgroup score histograms are additive over disjoint
row sets,

    counts(child) = counts(parent) − counts(parent ∖ child)
                                   + counts(child ∖ parent)

holds exactly in integers, so a candidate whose symmetric difference with
the parent is small is scored by bincounting only the difference rows.
Both sides of the decision — delta versus a direct scan of the child's
rows — produce identical matrices; the choice is purely a cost call.
"""

from __future__ import annotations

import numpy as np

from ..core.rating_maps import RatingMapSpec
from ..db.groupby import group_histograms
from ..model.database import SubjectiveDatabase

__all__ = ["split_rows", "delta_counts", "direct_counts", "prefer_delta"]


def split_rows(
    parent_rows: np.ndarray, child_rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """(parent ∖ child, child ∖ parent) for sorted unique row arrays."""
    removed = np.setdiff1d(parent_rows, child_rows, assume_unique=True)
    added = np.setdiff1d(child_rows, parent_rows, assume_unique=True)
    return removed, added


def prefer_delta(
    removed: np.ndarray, added: np.ndarray, child_size: int
) -> bool:
    """Delta wins when the difference is smaller than the child itself."""
    return removed.size + added.size < child_size


def direct_counts(
    database: SubjectiveDatabase, spec: RatingMapSpec, rows: np.ndarray
) -> np.ndarray:
    """Full-scan histogram matrix of ``rows`` for one spec."""
    grouping = database.aligned_grouping(spec.side, spec.attribute)
    return group_histograms(
        grouping.codes,
        grouping.n_groups,
        database.dimension_scores(spec.dimension),
        database.scale,
        rows=rows,
    )


def delta_counts(
    database: SubjectiveDatabase,
    spec: RatingMapSpec,
    parent_counts: np.ndarray,
    removed: np.ndarray,
    added: np.ndarray,
) -> np.ndarray:
    """``parent_counts`` adjusted by the removed/added rows."""
    counts = parent_counts.copy()
    if removed.size:
        counts -= direct_counts(database, spec, removed)
    if added.size:
        counts += direct_counts(database, spec, added)
    return counts
