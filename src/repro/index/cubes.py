"""Fused candidate cubes: every FILTER value's histograms in one pass.

The paper's §4.2.1 sharing computes all *aggregates* of one grouping in a
single scan.  FILTER candidates admit two further sharing axes:

* **across candidate operations** — all FILTER values of one attribute
  partition the parent's rows by that attribute, so one 3-way ``bincount``
  keyed by (filter value, subgroup, score bucket) yields the candidate
  rating-map histograms of *every* value at once;
* **across attribute roles** — the joint histogram of (attribute a,
  attribute b, bucket) is symmetric in a↔b, so the pass that builds
  attribute a's cube slice grouped by b also provides, transposed,
  attribute b's cube slice grouped by a.

:class:`StepSlices` owns the per-recommendation-step state: the parent
rows' attribute codes and score buckets (sliced once, shared by every
cube) and the joint pair histograms (built once per unordered attribute
pair per dimension, under single-flight locks).  Missing codes and
out-of-scale scores are routed to trash cells (row/column/bucket 0 or
``scale``) instead of being masked out, so each pass is a single
streaming ``bincount`` with no boolean fancy-indexing; the trash cells
are sliced away afterwards, leaving exactly the counts a masked scan
produces.

A :class:`FilterAxis` exists only for categorical and numeric attributes:
multi-valued FILTER semantics are *containment*, while the aligned
grouping keys rows by their full value set, so a cube slice would not
equal the candidate's rows — those candidates take the posting-list path
instead.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from ..concurrency import KeyedSingleFlight
from ..core.rating_maps import RatingMapSpec
from ..db.types import ColumnType
from ..model.database import Side, SubjectiveDatabase

__all__ = [
    "FilterAxis",
    "CandidateCube",
    "StepSlices",
    "axis_for",
    "cube_cells",
]

_AttrKey = tuple[Side, str]


@dataclass(frozen=True)
class FilterAxis:
    """Dictionary encoding of one FILTER-able attribute over rating rows."""

    side: Side
    attribute: str
    #: per-rating-record value code (-1 = missing), from the aligned grouping
    codes: np.ndarray
    labels: tuple[Any, ...]
    kind: ColumnType
    _index: dict[Any, int] = field(repr=False)

    @property
    def n_values(self) -> int:
        return len(self.labels)

    def code_of(self, value: Any) -> int | None:
        """The value's code, or ``None`` if outside the active domain."""
        if self.kind is ColumnType.CATEGORICAL:
            return self._index.get(str(value))
        try:
            return self._index.get(float(value))
        except (TypeError, ValueError):
            return None


def axis_for(
    database: SubjectiveDatabase, side: Side, attribute: str
) -> FilterAxis | None:
    """Build the filter axis of an attribute (``None`` if not cube-able)."""
    kind = database.entity_table(side).column(attribute).type
    if kind is ColumnType.MULTI_VALUED:
        return None
    grouping = database.aligned_grouping(side, attribute)
    if kind is ColumnType.CATEGORICAL:
        index: dict[Any, int] = {
            str(label): code for code, label in enumerate(grouping.labels)
        }
    else:
        index = {float(label): code for code, label in enumerate(grouping.labels)}
    return FilterAxis(side, attribute, grouping.codes, grouping.labels, kind, index)


def cube_cells(
    database: SubjectiveDatabase,
    axis: FilterAxis,
    specs: Sequence[RatingMapSpec],
) -> int:
    """Histogram cells the cube would hold (the budget admission check)."""
    total = 0
    for spec in specs:
        n_groups = database.aligned_grouping(spec.side, spec.attribute).n_groups
        total += axis.n_values * n_groups * database.scale
    return total


class StepSlices:
    """Shared per-step scan state over one parent row set.

    Attribute codes are stored shifted by one (missing ``-1`` → trash
    code ``0``) and score buckets extended by one (invalid → trash bucket
    ``scale``); the joint bincounts then run over every parent row with
    no masking, and real counts live in cells ``[1:, 1:, :scale]``.
    """

    def __init__(
        self,
        database: SubjectiveDatabase,
        parent_rows: np.ndarray,
        on_pair_build: Callable[[int], None] | None = None,
    ) -> None:
        self._db = database
        self._rows = parent_rows
        self._scale = database.scale
        self._on_pair_build = on_pair_build
        self._lock = threading.Lock()
        self._flight = KeyedSingleFlight()
        #: attr key → (codes+1 sliced, n_groups, labels)
        self._codes1: dict[_AttrKey, tuple[np.ndarray, int, tuple]] = {}
        #: dim → extended buckets sliced (0..scale-1 real, scale = trash)
        self._buckets: dict[str, np.ndarray] = {}
        #: (attr key a, attr key b, dim) → (n_a+1, n_b+1, scale+1) joint
        self._pairs: dict[tuple[_AttrKey, _AttrKey, str], np.ndarray] = {}
        self.nbytes = 0
        self.pair_builds = 0

    # -- shared slices ------------------------------------------------------
    def codes1(self, side: Side, attribute: str) -> tuple[np.ndarray, int, tuple]:
        key = (side, attribute)
        with self._lock:
            cached = self._codes1.get(key)
        if cached is not None:
            return cached
        grouping = self._db.aligned_grouping(side, attribute)
        built = (
            grouping.codes[self._rows] + 1,
            grouping.n_groups,
            grouping.labels,
        )
        with self._lock:
            return self._codes1.setdefault(key, built)

    def buckets(self, dimension: str) -> np.ndarray:
        with self._lock:
            cached = self._buckets.get(dimension)
        if cached is not None:
            return cached
        scores = self._db.dimension_scores(dimension)[self._rows]
        scale = self._scale
        with np.errstate(invalid="ignore"):
            valid = np.isfinite(scores) & (scores >= 1) & (scores <= scale)
        built = np.where(valid, scores, scale + 1.0).astype(np.int64) - 1
        with self._lock:
            return self._buckets.setdefault(dimension, built)

    def labels(self, side: Side, attribute: str) -> tuple:
        return self.codes1(side, attribute)[2]

    def sizes(self, side: Side, attribute: str) -> np.ndarray:
        """Per-value parent-row counts of one attribute (FILTER group sizes)."""
        codes1, n_values, __ = self.codes1(side, attribute)
        return np.bincount(codes1, minlength=n_values + 1)[1:]

    # -- histograms ---------------------------------------------------------
    def group_hist(self, spec: RatingMapSpec) -> np.ndarray:
        """The parent's own ``(n_groups, scale)`` histogram for one spec."""
        codes1, n_groups, __ = self.codes1(spec.side, spec.attribute)
        buckets = self.buckets(spec.dimension)
        scale = self._scale
        flat = np.bincount(
            codes1 * (scale + 1) + buckets,
            minlength=(n_groups + 1) * (scale + 1),
        )
        return flat.reshape(n_groups + 1, scale + 1)[1:, :scale]

    def pair_hist(self, a: _AttrKey, b: _AttrKey, dimension: str) -> np.ndarray:
        """Joint ``(n_a+1, n_b+1, scale+1)`` histogram, oriented a-first.

        Built once per unordered (a, b) pair per dimension; the reversed
        orientation is the transpose of the same array (a view).
        """
        first, second = (a, b) if _attr_order(a) <= _attr_order(b) else (b, a)
        key = (first, second, dimension)
        with self._lock:
            hist = self._pairs.get(key)
        if hist is None:
            with self._flight.lock(key):
                with self._lock:
                    hist = self._pairs.get(key)
                if hist is None:
                    f1, nf, __ = self.codes1(*first)
                    g1, ng, __ = self.codes1(*second)
                    buckets = self.buckets(dimension)
                    scale = self._scale
                    flat = np.bincount(
                        (f1 * (ng + 1) + g1) * (scale + 1) + buckets,
                        minlength=(nf + 1) * (ng + 1) * (scale + 1),
                    )
                    hist = flat.reshape(nf + 1, ng + 1, scale + 1)
                    with self._lock:
                        self._pairs[key] = hist
                        self.nbytes += hist.nbytes
                        self.pair_builds += 1
                    if self._on_pair_build is not None:
                        self._on_pair_build(hist.nbytes)
        if (a, b) == (first, second):
            return hist
        return hist.transpose(1, 0, 2)

    def cube_slice(self, axis_key: _AttrKey, spec: RatingMapSpec) -> np.ndarray:
        """``(n_values, n_groups, scale)`` candidate histograms of one spec."""
        joint = self.pair_hist(axis_key, (spec.side, spec.attribute), spec.dimension)
        return joint[1:, 1:, : self._scale]


def _attr_order(key: _AttrKey) -> tuple[str, str]:
    return (key[0].value, key[1])


class CandidateCube:
    """All FILTER candidates of one axis, as sufficient statistics.

    ``counts_of`` slices, per spec, the ``(n_groups, scale)`` histogram
    matrix of the candidate filtering the axis to one value code — exactly
    what a full scan of that candidate's rows would produce, since both
    are integer bincounts over the same record set.
    """

    def __init__(
        self,
        slices: StepSlices,
        axis: FilterAxis,
        specs: tuple[RatingMapSpec, ...],
    ) -> None:
        self._slices = slices
        self.axis = axis
        self.specs = specs
        self._key = (axis.side, axis.attribute)
        self.sizes = slices.sizes(axis.side, axis.attribute)

    def candidate_size(self, code: int) -> int:
        return int(self.sizes[code])

    def candidate_counts(self, code: int, spec: RatingMapSpec) -> np.ndarray:
        return self._slices.cube_slice(self._key, spec)[code]

    def zero_counts(self, spec: RatingMapSpec) -> np.ndarray:
        """The all-zero matrix of an out-of-domain FILTER value."""
        n_groups = self._slices.codes1(spec.side, spec.attribute)[1]
        return np.zeros((n_groups, self._slices._scale), dtype=np.int64)

    def labels_of(self, spec: RatingMapSpec) -> tuple:
        return self._slices.labels(spec.side, spec.attribute)
