"""Fused candidate cubes: every FILTER value's histograms in one pass.

The paper's §4.2.1 sharing computes all *aggregates* of one grouping in a
single scan.  FILTER candidates admit two further sharing axes:

* **across candidate operations** — all FILTER values of one attribute
  partition the parent's rows by that attribute, so one 3-way ``bincount``
  keyed by (filter value, subgroup, score bucket) yields the candidate
  rating-map histograms of *every* value at once;
* **across attribute roles** — the joint histogram of (attribute a,
  attribute b, bucket) is symmetric in a↔b, so the pass that builds
  attribute a's cube slice grouped by b also provides, transposed,
  attribute b's cube slice grouped by a.

:class:`StepSlices` owns the per-recommendation-step state: the parent
rows' attribute codes and score buckets (sliced once, shared by every
cube) and the joint pair histograms (built once per unordered attribute
pair per dimension, under single-flight locks).  Missing codes and
out-of-scale scores are routed to trash cells (row/column/bucket 0 or
``scale``) instead of being masked out, so each pass is a single
streaming ``bincount`` with no boolean fancy-indexing; the trash cells
are sliced away afterwards, leaving exactly the counts a masked scan
produces.

A :class:`FilterAxis` exists only for categorical and numeric attributes:
multi-valued FILTER semantics are *containment*, while the aligned
grouping keys rows by their full value set, so a cube slice would not
equal the candidate's rows — those candidates take the posting-list path
instead.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from ..concurrency import KeyedSingleFlight
from ..core.rating_maps import RatingMapSpec
from ..db.groupby import build_grouping
from ..db.types import ColumnType
from ..model.database import Side, SubjectiveDatabase

__all__ = [
    "FilterAxis",
    "CandidateCube",
    "StepSlices",
    "axis_for",
    "cube_cells",
]

_AttrKey = tuple[Side, str]


@dataclass(frozen=True)
class FilterAxis:
    """Dictionary encoding of one FILTER-able attribute over rating rows."""

    side: Side
    attribute: str
    #: per-rating-record value code (-1 = missing), from the aligned grouping
    codes: np.ndarray
    labels: tuple[Any, ...]
    kind: ColumnType
    _index: dict[Any, int] = field(repr=False)

    @property
    def n_values(self) -> int:
        return len(self.labels)

    def code_of(self, value: Any) -> int | None:
        """The value's code, or ``None`` if outside the active domain."""
        if self.kind is ColumnType.CATEGORICAL:
            return self._index.get(str(value))
        try:
            return self._index.get(float(value))
        except (TypeError, ValueError):
            return None


def axis_for(
    database: SubjectiveDatabase, side: Side, attribute: str
) -> FilterAxis | None:
    """Build the filter axis of an attribute (``None`` if not cube-able)."""
    kind = database.entity_table(side).column(attribute).type
    if kind is ColumnType.MULTI_VALUED:
        return None
    grouping = database.aligned_grouping(side, attribute)
    if kind is ColumnType.CATEGORICAL:
        index: dict[Any, int] = {
            str(label): code for code, label in enumerate(grouping.labels)
        }
    else:
        index = {float(label): code for code, label in enumerate(grouping.labels)}
    return FilterAxis(side, attribute, grouping.codes, grouping.labels, kind, index)


def cube_cells(
    database: SubjectiveDatabase,
    axis: FilterAxis,
    specs: Sequence[RatingMapSpec],
) -> int:
    """Histogram cells the cube would hold (the budget admission check)."""
    total = 0
    for spec in specs:
        n_groups = database.aligned_grouping(spec.side, spec.attribute).n_groups
        total += axis.n_values * n_groups * database.scale
    return total


class StepSlices:
    """Shared per-step scan state over one parent row set.

    Attribute codes are stored shifted by one (missing ``-1`` → trash
    code ``0``) and score buckets extended by one (invalid → trash bucket
    ``scale``); the joint bincounts then run over every parent row with
    no masking, and real counts live in cells ``[1:, 1:, :scale]``.
    """

    def __init__(
        self,
        database: SubjectiveDatabase,
        parent_rows: np.ndarray,
        on_pair_build: Callable[[int], None] | None = None,
    ) -> None:
        self._db = database
        self._rows = parent_rows
        self._scale = database.scale
        self._on_pair_build = on_pair_build
        self._lock = threading.Lock()
        self._flight = KeyedSingleFlight()
        #: attr key → (codes+1 sliced, n_groups, labels)
        self._codes1: dict[_AttrKey, tuple[np.ndarray, int, tuple]] = {}
        #: dim → extended buckets sliced (0..scale-1 real, scale = trash)
        self._buckets: dict[str, np.ndarray] = {}
        #: (attr key a, attr key b, dim) → (n_a+1, n_b+1, scale+1) joint
        self._pairs: dict[tuple[_AttrKey, _AttrKey, str], np.ndarray] = {}
        #: entity-aggregation state (see :meth:`_entity_side`): per-side
        #: entity counts/rows, per-attr entity codes, per-(side, dim)
        #: entity histograms and per-(big attr, small side, dim) cross
        #: intermediates
        self._n_ent: dict[Side, int] = {}
        self._ent_rows: dict[Side, np.ndarray] = {}
        self._ent_codes1: dict[_AttrKey, tuple[np.ndarray, int]] = {}
        self._ent_hist: dict[tuple[Side, str], np.ndarray] = {}
        self._cross_m: dict[tuple[_AttrKey, Side, str], np.ndarray] = {}
        self.nbytes = 0
        self.pair_builds = 0

    # -- shared slices ------------------------------------------------------
    def codes1(self, side: Side, attribute: str) -> tuple[np.ndarray, int, tuple]:
        key = (side, attribute)
        with self._lock:
            cached = self._codes1.get(key)
        if cached is not None:
            return cached
        grouping = self._db.aligned_grouping(side, attribute)
        built = (
            grouping.codes[self._rows] + 1,
            grouping.n_groups,
            grouping.labels,
        )
        with self._lock:
            return self._codes1.setdefault(key, built)

    def buckets(self, dimension: str) -> np.ndarray:
        with self._lock:
            cached = self._buckets.get(dimension)
        if cached is not None:
            return cached
        scores = self._db.dimension_scores(dimension)[self._rows]
        scale = self._scale
        with np.errstate(invalid="ignore"):
            valid = np.isfinite(scores) & (scores >= 1) & (scores <= scale)
        built = np.where(valid, scores, scale + 1.0).astype(np.int64) - 1
        with self._lock:
            return self._buckets.setdefault(dimension, built)

    def labels(self, side: Side, attribute: str) -> tuple:
        return self.codes1(side, attribute)[2]

    # -- entity aggregation --------------------------------------------------
    # A rating row's attribute codes are functions of its reviewer/item
    # entity, so a pair histogram can be accumulated per *entity* instead
    # of per row: counts are integers, and a float64 bincount of integer
    # weights is exact below 2^53, so the aggregated build is bit-identical
    # to the row-level one.  This pays off when a side has far fewer
    # entities than the parent has rows (e.g. tens of restaurants under
    # hundreds of thousands of reviews).

    def _entities(self, side: Side) -> int:
        """Entity rows of one side (alignment-indexed upper bound)."""
        n = self._n_ent.get(side)
        if n is None:
            n = int(self._db.entity_rows_for_ratings(side).max()) + 1
            self._n_ent[side] = n  # idempotent — benign if raced
        return n

    def _entity_cheap(self, side: Side) -> bool:
        """Whether entity aggregation beats a row-level pass for a side."""
        return self._entities(side) * (self._scale + 1) <= len(self._rows)

    def entity_rows(self, side: Side) -> np.ndarray:
        """Per-parent-row entity index of one side (cached gather)."""
        with self._lock:
            cached = self._ent_rows.get(side)
        if cached is not None:
            return cached
        built = self._db.entity_rows_for_ratings(side)[self._rows]
        with self._lock:
            return self._ent_rows.setdefault(side, built)

    def entity_codes1(self, side: Side, attribute: str) -> tuple[np.ndarray, int]:
        """Entity-level attribute codes, shifted by one (missing → 0).

        The same dictionary encoding ``aligned_grouping`` gathers through
        the alignment, so code ``c`` here names the same label there.
        """
        attr_key = (side, attribute)
        with self._lock:
            cached = self._ent_codes1.get(attr_key)
        if cached is not None:
            return cached
        grouping = build_grouping(self._db.entity_table(side), attribute)
        built = (
            grouping.codes[: self._entities(side)] + 1,
            grouping.n_groups,
        )
        with self._lock:
            return self._ent_codes1.setdefault(attr_key, built)

    def entity_hist(self, side: Side, dimension: str) -> np.ndarray:
        """``(n_entities, scale+1)`` score histogram per entity.

        One row-level pass per (side, dimension) — after it, every
        same-side pair histogram of that side is an entity-sized bincount.
        """
        key = (side, dimension)
        with self._lock:
            hist = self._ent_hist.get(key)
        if hist is not None:
            return hist
        with self._flight.lock(("ehist", side)):
            with self._lock:
                hist = self._ent_hist.get(key)
            if hist is not None:
                return hist
            scale = self._scale
            n_ent = self._entities(side)
            eb = self.entity_rows(side) * (scale + 1)
            for dim in self._db.dimensions:
                dim_key = (side, dim)
                with self._lock:
                    if dim_key in self._ent_hist:
                        continue
                flat = np.bincount(
                    eb + self.buckets(dim), minlength=n_ent * (scale + 1)
                )
                with self._lock:
                    self._ent_hist[dim_key] = flat.reshape(n_ent, scale + 1)
            with self._lock:
                return self._ent_hist[key]

    def cross_hist(
        self, big: _AttrKey, small_side: Side, dimension: str
    ) -> np.ndarray:
        """``(n_big+1, n_entities, scale+1)`` cross-side intermediate.

        Groups one row-level pass by (big-side attribute code, small-side
        entity, bucket); every cross pair of ``big`` with a small-side
        attribute then aggregates entities by their attribute code without
        touching the rows again.
        """
        key = (big, small_side, dimension)
        with self._lock:
            hist = self._cross_m.get(key)
        if hist is not None:
            return hist
        with self._flight.lock(("cross", big, small_side)):
            with self._lock:
                hist = self._cross_m.get(key)
            if hist is not None:
                return hist
            scale = self._scale
            n_ent = self._entities(small_side)
            f1, nf, __ = self.codes1(*big)
            fe = f1 * n_ent
            fe += self.entity_rows(small_side)
            fe *= scale + 1
            cells = (nf + 1) * n_ent * (scale + 1)
            for dim in self._db.dimensions:
                dim_key = (big, small_side, dim)
                with self._lock:
                    if dim_key in self._cross_m:
                        continue
                flat = np.bincount(fe + self.buckets(dim), minlength=cells)
                with self._lock:
                    self._cross_m[dim_key] = flat.reshape(
                        nf + 1, n_ent, scale + 1
                    )
            with self._lock:
                return self._cross_m[key]

    def _pair_builder(self, first: _AttrKey, second: _AttrKey):
        """The cheapest exact per-dimension builder for one attribute pair."""
        scale = self._scale
        side_a, side_b = first[0], second[0]
        if side_a == side_b and self._entity_cheap(side_a):
            # same side: both codes are functions of the entity
            f1e, nf = self.entity_codes1(*first)
            g1e, ng = self.entity_codes1(*second)
            fg_e = f1e * (ng + 1) + g1e
            keys = (fg_e[:, None] * (scale + 1) + np.arange(scale + 1)).ravel()
            cells = (nf + 1) * (ng + 1) * (scale + 1)

            def build_same(dim: str) -> np.ndarray:
                weights = self.entity_hist(side_a, dim).ravel()
                flat = np.bincount(keys, weights=weights, minlength=cells)
                return flat.astype(np.int64).reshape(nf + 1, ng + 1, scale + 1)

            return build_same
        if side_a is not side_b:
            small_side = (
                side_a
                if self._entities(side_a) <= self._entities(side_b)
                else side_b
            )
            if self._entity_cheap(small_side):
                big, small = (
                    (second, first) if small_side is side_a else (first, second)
                )
                s1e, ns = self.entity_codes1(*small)
                nf = self.codes1(*big)[1]
                keys = (
                    np.arange(nf + 1)[:, None, None]
                    * ((ns + 1) * (scale + 1))
                    + (s1e * (scale + 1))[None, :, None]
                    + np.arange(scale + 1)[None, None, :]
                ).ravel()
                cells = (nf + 1) * (ns + 1) * (scale + 1)

                def build_cross(dim: str) -> np.ndarray:
                    weights = self.cross_hist(big, small_side, dim).ravel()
                    flat = np.bincount(keys, weights=weights, minlength=cells)
                    built = flat.astype(np.int64).reshape(
                        nf + 1, ns + 1, scale + 1
                    )
                    # built is (big, small); reorient to (first, second)
                    return built if big == first else built.transpose(1, 0, 2)

                return build_cross
        # row-level fallback: one streaming bincount over the parent rows.
        # (f1 * (ng+1) + g1) * (scale+1), without temporaries — the
        # per-dimension key is then one add away
        f1, nf, __ = self.codes1(*first)
        g1, ng, __ = self.codes1(*second)
        fg = f1 * (ng + 1)
        fg += g1
        fg *= scale + 1
        cells = (nf + 1) * (ng + 1) * (scale + 1)

        def build_rows(dim: str) -> np.ndarray:
            flat = np.bincount(fg + self.buckets(dim), minlength=cells)
            return flat.reshape(nf + 1, ng + 1, scale + 1)

        return build_rows

    def sizes(self, side: Side, attribute: str) -> np.ndarray:
        """Per-value parent-row counts of one attribute (FILTER group sizes)."""
        codes1, n_values, __ = self.codes1(side, attribute)
        return np.bincount(codes1, minlength=n_values + 1)[1:]

    # -- histograms ---------------------------------------------------------
    def group_hist(self, spec: RatingMapSpec) -> np.ndarray:
        """The parent's own ``(n_groups, scale)`` histogram for one spec."""
        codes1, n_groups, __ = self.codes1(spec.side, spec.attribute)
        buckets = self.buckets(spec.dimension)
        scale = self._scale
        flat = np.bincount(
            codes1 * (scale + 1) + buckets,
            minlength=(n_groups + 1) * (scale + 1),
        )
        return flat.reshape(n_groups + 1, scale + 1)[1:, :scale]

    def pair_hist(self, a: _AttrKey, b: _AttrKey, dimension: str) -> np.ndarray:
        """Joint ``(n_a+1, n_b+1, scale+1)`` histogram, oriented a-first.

        Built once per unordered (a, b) pair per dimension; the reversed
        orientation is the transpose of the same array (a view).  A build
        covers *every* rating dimension of the pair at once: the shared
        key (the fused pair code, or the entity-aggregated intermediate —
        see :meth:`_pair_builder`) is the expensive part, and
        recommendation scoring always ends up asking for all dimensions of
        a pair anyway, so it is computed once and only the per-dimension
        accumulation runs per dimension.
        """
        first, second = (a, b) if _attr_order(a) <= _attr_order(b) else (b, a)
        key = (first, second, dimension)
        with self._lock:
            hist = self._pairs.get(key)
        if hist is None:
            with self._flight.lock((first, second)):
                with self._lock:
                    hist = self._pairs.get(key)
                if hist is None:
                    build = self._pair_builder(first, second)
                    built_bytes = 0
                    for dim in self._db.dimensions:
                        dim_key = (first, second, dim)
                        with self._lock:
                            if dim_key in self._pairs:
                                continue
                        built = build(dim)
                        with self._lock:
                            self._pairs[dim_key] = built
                            self.nbytes += built.nbytes
                        built_bytes += built.nbytes
                    with self._lock:
                        hist = self._pairs[key]
                        if built_bytes:
                            self.pair_builds += 1
                    if self._on_pair_build is not None and built_bytes:
                        self._on_pair_build(built_bytes)
        if (a, b) == (first, second):
            return hist
        return hist.transpose(1, 0, 2)

    def cube_slice(self, axis_key: _AttrKey, spec: RatingMapSpec) -> np.ndarray:
        """``(n_values, n_groups, scale)`` candidate histograms of one spec."""
        joint = self.pair_hist(axis_key, (spec.side, spec.attribute), spec.dimension)
        return joint[1:, 1:, : self._scale]


def _attr_order(key: _AttrKey) -> tuple[str, str]:
    return (key[0].value, key[1])


class CandidateCube:
    """All FILTER candidates of one axis, as sufficient statistics.

    ``counts_of`` slices, per spec, the ``(n_groups, scale)`` histogram
    matrix of the candidate filtering the axis to one value code — exactly
    what a full scan of that candidate's rows would produce, since both
    are integer bincounts over the same record set.
    """

    def __init__(
        self,
        slices: StepSlices,
        axis: FilterAxis,
        specs: tuple[RatingMapSpec, ...],
    ) -> None:
        self._slices = slices
        self.axis = axis
        self.specs = specs
        self._key = (axis.side, axis.attribute)
        self.sizes = slices.sizes(axis.side, axis.attribute)

    def candidate_size(self, code: int) -> int:
        return int(self.sizes[code])

    def candidate_counts(self, code: int, spec: RatingMapSpec) -> np.ndarray:
        return self._slices.cube_slice(self._key, spec)[code]

    def stacked_counts(self, codes: np.ndarray, spec: RatingMapSpec) -> np.ndarray:
        """The ``(len(codes), n_groups, scale)`` count tensor of one spec.

        One fancy-indexed gather over the fused cube slice — the batched
        scoring path's input.  Row ``i`` equals ``candidate_counts(codes[i],
        spec)`` exactly (both read the same joint histogram).
        """
        return self._slices.cube_slice(self._key, spec)[codes]

    def zero_counts(self, spec: RatingMapSpec) -> np.ndarray:
        """The all-zero matrix of an out-of-domain FILTER value."""
        n_groups = self._slices.codes1(spec.side, spec.attribute)[1]
        return np.zeros((n_groups, self._slices._scale), dtype=np.int64)

    def labels_of(self, spec: RatingMapSpec) -> tuple:
        return self._slices.labels(spec.side, spec.attribute)
