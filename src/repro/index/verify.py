"""Structural equivalence checks between indexed and naive results.

`RatingMap`/`RMSetResult` deliberately have no ``__eq__`` (they hold numpy
state), so the equivalence suite and the speedup benchmark both compare
*fingerprints*: plain tuples of everything user-visible — specs, subgroup
labels and count vectors, utilities, ranks.  Identical fingerprints mean
the indexed path reproduced the oracle bit for bit.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..core.generator import RMSetResult
from ..core.rating_maps import RatingMap
from ..core.recommend import ScoredOperation

__all__ = [
    "map_fingerprint",
    "result_fingerprint",
    "recommendation_fingerprint",
    "diff_results",
    "diff_recommendations",
]


def map_fingerprint(rating_map: RatingMap) -> tuple:
    """Everything observable about one rating map, as a comparable tuple."""
    return (
        rating_map.spec,
        rating_map.criteria.describe(),
        rating_map.group_size,
        tuple(
            (sg.label, tuple(int(c) for c in sg.distribution.counts))
            for sg in rating_map.subgroups
        ),
    )


def result_fingerprint(result: RMSetResult) -> tuple:
    """Everything observable about one RM-Set result."""
    return (
        tuple(map_fingerprint(rm) for rm in result.selected),
        tuple(map_fingerprint(rm) for rm in result.pool),
        tuple(
            (spec, result.scores[spec].dw_utility)
            for spec in sorted(result.scores)
        ),
        result.diversity,
        result.degraded,
    )


def recommendation_fingerprint(scored: Sequence[ScoredOperation]) -> tuple:
    """Everything observable about one recommend() answer."""
    return tuple(
        (
            s.operation.kind.value,
            s.operation.target.describe(),
            s.utility,
            result_fingerprint(s.preview),
        )
        for s in scored
    )


def _diff(label: str, a: Any, b: Any) -> list[str]:
    if a == b:
        return []
    return [f"{label}: {a!r} != {b!r}"]


def diff_results(naive: RMSetResult, indexed: RMSetResult) -> list[str]:
    """Human-readable differences between two RM-Set results ([] if none)."""
    out: list[str] = []
    out += _diff(
        "selected specs",
        [rm.spec for rm in naive.selected],
        [rm.spec for rm in indexed.selected],
    )
    out += _diff(
        "pool specs",
        [rm.spec for rm in naive.pool],
        [rm.spec for rm in indexed.pool],
    )
    for which, n_maps, i_maps in (
        ("selected", naive.selected, indexed.selected),
        ("pool", naive.pool, indexed.pool),
    ):
        for n_rm, i_rm in zip(n_maps, i_maps):
            if map_fingerprint(n_rm) != map_fingerprint(i_rm):
                out.append(f"{which} map {n_rm.spec} differs")
    out += _diff("score keys", sorted(naive.scores), sorted(indexed.scores))
    for spec in sorted(set(naive.scores) & set(indexed.scores)):
        out += _diff(
            f"dw_utility[{spec}]",
            naive.scores[spec].dw_utility,
            indexed.scores[spec].dw_utility,
        )
    out += _diff("diversity", naive.diversity, indexed.diversity)
    return out


def diff_recommendations(
    naive: Sequence[ScoredOperation], indexed: Sequence[ScoredOperation]
) -> list[str]:
    """Differences between two recommend() answers ([] if identical)."""
    out: list[str] = []
    out += _diff(
        "targets",
        [s.operation.target.describe() for s in naive],
        [s.operation.target.describe() for s in indexed],
    )
    for n_s, i_s in zip(naive, indexed):
        label = n_s.operation.target.describe()
        out += _diff(f"utility[{label}]", n_s.utility, i_s.utility)
        for line in diff_results(n_s.preview, i_s.preview):
            out.append(f"preview[{label}] {line}")
    return out
