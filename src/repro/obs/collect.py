"""Fleet-wide trace collection: tail sampling, cross-process stitching, search.

A sharded deployment (PR 6) traces every request on both sides of the
IPC boundary, but each process keeps its own ring buffer — the fleet's
traces are fragmented.  This module closes that gap in the front process:

* :class:`ThreadLocalTraceCapture` — a worker-side tracer sink that holds
  the finished trace of *this thread's* request just long enough for the
  IPC reply to carry it back to the front as a **fragment** (span dicts +
  worker/pid attribution);
* :class:`TailSampler` — the keep/drop decision, made at trace
  completion ("tail-based") when the outcome is known: error, shed,
  degraded, slow and SLO-burn-window traces are always kept, the
  unremarkable rest is sampled by a deterministic hash of the trace id;
* :class:`TraceCollector` — the front-side assembly point.  Fragments
  arrive (via :meth:`add_fragment`) *before* the front's root span
  closes and wait in a bounded pending buffer; when the tracer delivers
  the finished front trace, the worker span trees are re-parented under
  their matching ``worker.rpc`` spans (matched by the ``worker``
  attribute) and the stitched record is stored behind count **and** byte
  budgets.  A fragment that never arrives (a worker died mid-call) makes
  the stitched record ``partial: true`` instead of blocking anything —
  reassembly is clock-skew-tolerant because parenting is id-based; the
  wall-clock delta is merely *reported* as ``clock_skew_ms``.

``GET /debug/traces`` (search) and ``GET /debug/traces/<id>`` (full
tree) are served from the collector, so the endpoints behave identically
in 0-worker deployments — there are simply no fragments to wait for.
"""

from __future__ import annotations

import json
import threading
import zlib
from collections import OrderedDict
from typing import Any, Callable, Iterable, Mapping

from .tracing import Trace

__all__ = [
    "TailSampler",
    "ThreadLocalTraceCapture",
    "TraceCollector",
    "dict_span_tree",
    "fragment_from_trace",
]

#: Span attributes that mark a trace as always-keep for the tail sampler.
_KEEP_ATTRS = ("shed", "degraded")


def dict_span_tree(spans: Iterable[Mapping[str, Any]]) -> dict[str, Any]:
    """Nest flat span *dicts* into a ``{name, children}`` tree.

    The dict analogue of :func:`repro.obs.tracing.span_tree` for stitched
    cross-process spans (which only exist in ``to_dict`` form).  The root
    is the span without a parent among the given spans — ordering falls
    back to wall-clock ``started_at``, which is only used for sibling
    order, never for parenting, so clock skew cannot corrupt the tree.
    """
    ordered = sorted(spans, key=lambda s: s.get("started_at", 0.0))
    if not ordered:
        return {}
    nodes: dict[str, dict[str, Any]] = {}
    for s in ordered:
        nodes[s["span_id"]] = {
            "name": s.get("name"),
            "duration_ms": s.get("duration_ms"),
            "status": s.get("status", "ok"),
            "attributes": dict(s.get("attributes") or {}),
            "children": [],
        }
    ids = set(nodes)
    root = next(
        (s for s in ordered if s.get("parent_id") not in ids), ordered[0]
    )
    for s in ordered:
        if s["span_id"] == root["span_id"]:
            continue
        parent = nodes.get(s.get("parent_id") or "")
        if parent is None:
            parent = nodes[root["span_id"]]
        parent["children"].append(nodes[s["span_id"]])
    return nodes[root["span_id"]]


def fragment_from_trace(
    trace: Trace, worker: int, pid: int, max_spans: int | None = None
) -> dict[str, Any]:
    """One worker's shippable span-tree fragment of a finished trace.

    Spans are start-ordered (the worker root first), so truncating a
    pathological tree keeps the shallow structure and drops leaf detail.
    """
    spans = [s.to_dict() for s in trace.spans]
    truncated = False
    if max_spans is not None and len(spans) > max_spans:
        spans = spans[:max_spans]
        truncated = True
    return {
        "trace_id": trace.trace_id,
        "worker": worker,
        "pid": pid,
        "truncated": truncated,
        "spans": spans,
    }


class ThreadLocalTraceCapture:
    """A tracer sink that parks each thread's finished trace for pickup.

    The worker's request root span closes (delivering the trace to sinks
    on the handling thread) *before* the IPC reply dict is built, so the
    handler can :meth:`take` the trace and attach it to the reply.  Being
    thread-local, concurrent requests on different worker threads never
    see each other's traces.
    """

    def __init__(self) -> None:
        self._local = threading.local()
        self.captured = 0

    def __call__(self, trace: Trace) -> None:
        self._local.trace = trace
        self.captured += 1

    def take(self) -> Trace | None:
        """The current thread's last finished trace, consumed."""
        trace = getattr(self._local, "trace", None)
        self._local.trace = None
        return trace


class TailSampler:
    """Keep/drop decisions made at trace completion, outcome in hand.

    Always keep: any error span, shed or degraded requests, traces at or
    over ``slow_ms``, and every trace finishing while an SLO burn window
    is pinned (:meth:`pin_burn`).  Everything else is kept with
    probability ``sample_rate`` via a deterministic hash of the trace id,
    so the same request stream yields the same keep set on every run.
    """

    def __init__(
        self, sample_rate: float = 1.0, slow_ms: float | None = None
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in [0, 1], got {sample_rate}"
            )
        self.sample_rate = float(sample_rate)
        self.slow_ms = slow_ms
        self._lock = threading.Lock()
        self._burning: set[str] = set()
        self.kept = 0
        self.dropped = 0
        self.kept_by_reason: dict[str, int] = {}

    # -- SLO burn windows ----------------------------------------------------
    def pin_burn(self, slo_class: str) -> None:
        """An SLO class entered a burn state: keep everything until unpinned."""
        with self._lock:
            self._burning.add(slo_class)

    def unpin_burn(self, slo_class: str) -> None:
        with self._lock:
            self._burning.discard(slo_class)

    @property
    def burn_active(self) -> bool:
        with self._lock:
            return bool(self._burning)

    # -- the decision --------------------------------------------------------
    def reason_to_keep(
        self,
        trace_id: str,
        duration_ms: float,
        error: bool,
        attributes: Mapping[str, Any],
    ) -> str | None:
        """Why this trace is kept, or ``None`` to drop it."""
        if error:
            return "error"
        status = attributes.get("status")
        if isinstance(status, int) and status >= 500:
            return "error"
        for attr in _KEEP_ATTRS:
            if attributes.get(attr):
                return attr
        if self.slow_ms is not None and duration_ms >= self.slow_ms:
            return "slow"
        if self.burn_active:
            return "burn"
        if self.sample_rate >= 1.0:
            return "sampled"
        if self.sample_rate <= 0.0:
            return None
        # deterministic: crc32 of the id maps to [0, 1); independent of
        # arrival order, stable across processes and reruns
        score = zlib.crc32(trace_id.encode("utf-8", "replace")) / 2**32
        return "sampled" if score < self.sample_rate else None

    def record(self, reason: str | None) -> None:
        with self._lock:
            if reason is None:
                self.dropped += 1
            else:
                self.kept += 1
                self.kept_by_reason[reason] = (
                    self.kept_by_reason.get(reason, 0) + 1
                )

    def counters(self) -> dict[str, Any]:
        with self._lock:
            return {
                "kept": self.kept,
                "dropped": self.dropped,
                "sample_rate": self.sample_rate,
                "kept_by_reason": dict(self.kept_by_reason),
                "burning_classes": sorted(self._burning),
            }


class TraceCollector:
    """Stitch front + worker spans into searchable cross-process records.

    A plain tracer sink on the front tracer (finished front traces) plus
    :meth:`add_fragment` for worker fragments extracted from IPC replies.
    Thread-safe; every operation is lock-bounded dict work, no I/O.
    """

    def __init__(
        self,
        sampler: TailSampler | None = None,
        max_traces: int = 256,
        max_bytes: int | None = None,
        max_spans_per_trace: int | None = 512,
        pending_capacity: int = 128,
    ) -> None:
        if max_traces < 1:
            raise ValueError(f"max_traces must be >= 1, got {max_traces}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.sampler = sampler or TailSampler()
        self.max_traces = max_traces
        self.max_bytes = max_bytes
        self.max_spans_per_trace = max_spans_per_trace
        self.pending_capacity = pending_capacity
        self._lock = threading.Lock()
        #: trace id → stitched record, oldest first (eviction order)
        self._records: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self._sizes: dict[str, int] = {}
        self._bytes = 0
        #: trace id → fragments that arrived before their front trace
        self._pending: OrderedDict[str, list[dict[str, Any]]] = OrderedDict()
        self.total_recorded = 0
        self.fragments_received = 0
        self.fragments_unmatched = 0
        self.fragments_evicted = 0
        self.traces_truncated = 0
        self.traces_partial = 0

    # -- ingestion -----------------------------------------------------------
    def add_fragment(self, fragment: Mapping[str, Any]) -> None:
        """Buffer one worker fragment until its front trace finishes.

        Called from the RPC path *before* the front root span closes; a
        fragment arriving after assembly (retried RPCs racing the root's
        close) merges into the stored record instead.
        """
        trace_id = fragment.get("trace_id")
        if not trace_id or not fragment.get("spans"):
            return
        frag = dict(fragment)
        with self._lock:
            self.fragments_received += 1
            record = self._records.get(trace_id)
            if record is not None:
                self._merge_fragments(record, [frag])
                self._resize(trace_id, record)
                return
            bucket = self._pending.get(trace_id)
            if bucket is None:
                while len(self._pending) >= self.pending_capacity:
                    self._pending.popitem(last=False)
                    self.fragments_evicted += 1
                bucket = self._pending[trace_id] = []
            bucket.append(frag)

    def __call__(self, trace: Trace) -> None:
        """Tracer sink: the front trace finished — decide, stitch, store."""
        with self._lock:
            fragments = self._pending.pop(trace.trace_id, [])
        error = any(s.status != "ok" for s in trace.spans) or any(
            s.get("status", "ok") != "ok"
            for frag in fragments
            for s in frag.get("spans", ())
        )
        reason = self.sampler.reason_to_keep(
            trace.trace_id,
            trace.duration_ms,
            error,
            trace.root.attributes,
        )
        self.sampler.record(reason)
        if reason is None:
            return
        record = self._assemble(trace, fragments, reason)
        with self._lock:
            self.total_recorded += 1
            if record["truncated"]:
                self.traces_truncated += 1
            if record["partial"]:
                self.traces_partial += 1
            previous = self._records.pop(trace.trace_id, None)
            if previous is not None:
                self._bytes -= self._sizes.pop(trace.trace_id, 0)
            self._records[trace.trace_id] = record
            self._sizes[trace.trace_id] = size = _approx_bytes(record)
            self._bytes += size
            self._evict()

    # -- assembly ------------------------------------------------------------
    def _assemble(
        self,
        trace: Trace,
        fragments: list[dict[str, Any]],
        reason: str,
    ) -> dict[str, Any]:
        spans = [s.to_dict() for s in trace.spans]
        truncated = False
        if (
            self.max_spans_per_trace is not None
            and len(spans) > self.max_spans_per_trace
        ):
            spans = spans[: self.max_spans_per_trace]
            truncated = True
        root = spans[0]
        record: dict[str, Any] = {
            "trace_id": trace.trace_id,
            "name": root["name"],
            "route": root["attributes"].get("route"),
            "started_at": root["started_at"],
            "duration_ms": root["duration_ms"],
            "status": root["status"],
            "sampled": reason,
            "partial": False,
            "truncated": truncated,
            "workers": [],
            "spans": spans,
        }
        self._merge_fragments(record, fragments)
        record["n_spans"] = len(record["spans"])
        return record

    def _merge_fragments(
        self, record: dict[str, Any], fragments: list[dict[str, Any]]
    ) -> None:
        """Re-parent fragment roots under their ``worker.rpc`` spans."""
        spans: list[dict[str, Any]] = record["spans"]
        front_root_id = spans[0]["span_id"]
        rpc_spans = [s for s in spans if s["name"] == "worker.rpc"]
        claimed = {
            w["rpc_span_id"]
            for w in record["workers"]
            if w.get("rpc_span_id")
        }
        for frag in fragments:
            frag_spans = [dict(s) for s in frag.get("spans", ())]
            if not frag_spans:
                continue
            frag_truncated = bool(frag.get("truncated"))
            if (
                self.max_spans_per_trace is not None
                and len(frag_spans) > self.max_spans_per_trace
            ):
                frag_spans = frag_spans[: self.max_spans_per_trace]
                frag_truncated = True
            worker = frag.get("worker")
            rpc = next(
                (
                    s
                    for s in rpc_spans
                    if s["span_id"] not in claimed
                    and s["attributes"].get("worker") == worker
                ),
                None,
            )
            frag_ids = {s["span_id"] for s in frag_spans}
            roots = [
                s
                for s in frag_spans
                if (s.get("parent_id") or "") not in frag_ids
            ]
            skew_ms: float | None = None
            if rpc is not None:
                claimed.add(rpc["span_id"])
                if roots:
                    skew_ms = (
                        roots[0]["started_at"] - rpc["started_at"]
                    ) * 1000.0
                for r in roots:
                    r["parent_id"] = rpc["span_id"]
            else:
                self.fragments_unmatched += 1
                for r in roots:
                    r["parent_id"] = front_root_id
                    r["attributes"]["fleet_unmatched"] = True
            for r in roots:
                r["attributes"].setdefault("worker", worker)
                if frag.get("pid") is not None:
                    r["attributes"]["pid"] = frag["pid"]
                if skew_ms is not None:
                    r["attributes"]["clock_skew_ms"] = skew_ms
            spans.extend(frag_spans)
            record["workers"].append(
                {
                    "worker": worker,
                    "pid": frag.get("pid"),
                    "n_spans": len(frag_spans),
                    "clock_skew_ms": skew_ms,
                    "matched": rpc is not None,
                    "rpc_span_id": rpc["span_id"] if rpc is not None else None,
                    "truncated": frag_truncated,
                }
            )
            if frag_truncated:
                record["truncated"] = True
        record["partial"] = len(claimed) < len(rpc_spans)
        record["n_spans"] = len(spans)

    def _resize(self, trace_id: str, record: dict[str, Any]) -> None:
        self._bytes -= self._sizes.get(trace_id, 0)
        self._sizes[trace_id] = size = _approx_bytes(record)
        self._bytes += size
        self._evict()

    def _evict(self) -> None:
        while len(self._records) > self.max_traces or (
            self.max_bytes is not None
            and self._bytes > self.max_bytes
            and len(self._records) > 1
        ):
            evicted_id, _ = self._records.popitem(last=False)
            self._bytes -= self._sizes.pop(evicted_id, 0)

    # -- read side -----------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def get(self, trace_id: str) -> dict[str, Any] | None:
        """The stitched record for ``trace_id`` plus its rendered tree."""
        with self._lock:
            record = self._records.get(trace_id)
            if record is None:
                return None
            record = json.loads(json.dumps(record, default=str))
        record["tree"] = dict_span_tree(record["spans"])
        return record

    def search(
        self,
        op: str | None = None,
        dataset: str | None = None,
        min_ms: float = 0.0,
        status: str | None = None,
        limit: int | None = None,
    ) -> list[dict[str, Any]]:
        """Most-recent-first stitched records matching every given filter.

        ``op`` substring-matches the root's route label (or name);
        ``dataset`` matches any span's ``dataset`` attribute; ``status``
        is ``"ok"``/``"error"`` or a numeric HTTP status.
        """
        with self._lock:
            records = list(self._records.values())
        out: list[dict[str, Any]] = []
        for record in reversed(records):
            if record["duration_ms"] < min_ms:
                continue
            if op is not None:
                haystack = f"{record.get('route') or ''} {record['name']}"
                if op not in haystack:
                    continue
            if dataset is not None and not any(
                s["attributes"].get("dataset") == dataset
                for s in record["spans"]
            ):
                continue
            if status is not None and not _status_matches(record, status):
                continue
            out.append(json.loads(json.dumps(record, default=str)))
            if limit is not None and len(out) >= limit:
                break
        return out

    def counters(self) -> dict[str, Any]:
        with self._lock:
            stored = len(self._records)
            stored_bytes = self._bytes
            pending = len(self._pending)
        return {
            **self.sampler.counters(),
            "stored": stored,
            "stored_bytes": stored_bytes,
            "max_bytes": self.max_bytes,
            "pending_fragments": pending,
            "fragments_received": self.fragments_received,
            "fragments_unmatched": self.fragments_unmatched,
            "fragments_evicted": self.fragments_evicted,
            "truncated": self.traces_truncated,
            "partial": self.traces_partial,
        }

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self._sizes.clear()
            self._pending.clear()
            self._bytes = 0


def _status_matches(record: Mapping[str, Any], status: str) -> bool:
    if status in ("ok", "error"):
        if status == "error":
            return record["status"] != "ok" or any(
                s.get("status", "ok") != "ok" for s in record["spans"]
            )
        return record["status"] == "ok"
    root_status = record["spans"][0]["attributes"].get("status")
    return str(root_status) == status


def _approx_bytes(record: Mapping[str, Any]) -> int:
    """The record's JSON footprint — what the byte budget accounts in."""
    try:
        return len(json.dumps(record, default=str))
    except (TypeError, ValueError):  # pragma: no cover - defensive
        return 1024
