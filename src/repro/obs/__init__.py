"""``repro.obs`` — observability: tracing, metrics registry, log plumbing.

The three performance-critical layers stacked on the recommendation hot
path (phased execution → index → caching engine → server) report into
this subsystem:

* :mod:`repro.obs.tracing` — contextvar-propagated trace/span IDs with
  ``with span("phase.scan", rows=n):`` instrumentation, near-zero-cost
  when disabled;
* :mod:`repro.obs.metrics` — a generic registry of labelled counters,
  gauges and bounded histograms, rendered as JSON or Prometheus text;
* :mod:`repro.obs.sinks` — trace destinations: in-memory ring buffer
  (``GET /debug/traces``), JSONL file, slow-request WARNING log;
* :mod:`repro.obs.process` — process-level health gauges (RSS, GC
  collections, thread count, uptime) as a scrape-time collector;
* :mod:`repro.obs.logs` — stdlib ``logging`` formatters (text/JSON) that
  stamp the active trace id on every line.

See ``docs/OBSERVABILITY.md`` for the span taxonomy and metric reference.
"""

from .collect import (
    TailSampler,
    ThreadLocalTraceCapture,
    TraceCollector,
    dict_span_tree,
    fragment_from_trace,
)
from .logs import JsonLogFormatter, TextLogFormatter, setup_logging
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Exemplar,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from .process import ProcessCollector, rss_bytes
from .sinks import JsonlTraceSink, SlowTraceLog, TraceRingBuffer, render_tree
from .tracing import (
    Span,
    Trace,
    Tracer,
    activate,
    annotate,
    configure,
    current_context,
    current_trace_id,
    current_trace_partial,
    get_tracer,
    span,
    span_tree,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Exemplar",
    "Gauge",
    "Histogram",
    "JsonLogFormatter",
    "JsonlTraceSink",
    "MetricFamily",
    "MetricsRegistry",
    "ProcessCollector",
    "SlowTraceLog",
    "Span",
    "TailSampler",
    "TextLogFormatter",
    "ThreadLocalTraceCapture",
    "Trace",
    "TraceCollector",
    "TraceRingBuffer",
    "Tracer",
    "activate",
    "annotate",
    "configure",
    "current_context",
    "current_trace_id",
    "current_trace_partial",
    "dict_span_tree",
    "fragment_from_trace",
    "get_tracer",
    "render_tree",
    "rss_bytes",
    "setup_logging",
    "span",
    "span_tree",
]
