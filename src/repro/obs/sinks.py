"""Trace sinks: where finished traces go.

* :class:`TraceRingBuffer` — the last N traces in memory, filterable by
  duration; backs ``GET /debug/traces``;
* :class:`JsonlTraceSink` — one JSON line per trace appended to a file
  (``--trace-file``), for offline analysis;
* :class:`SlowTraceLog` — root spans over a threshold are logged at
  WARNING with their rendered span tree, so slow requests self-report
  without anyone polling the debug endpoint.

Sinks are plain callables ``sink(trace)``; the tracer swallows sink
exceptions (observability must not take requests down), so each sink is
also individually defensive about I/O.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
from collections import deque
from typing import Any

from .tracing import Trace

__all__ = ["JsonlTraceSink", "SlowTraceLog", "TraceRingBuffer", "render_tree"]


class TraceRingBuffer:
    """A bounded in-memory buffer of the most recent finished traces.

    Bounded by *count* (``capacity``) and optionally by *bytes*
    (``max_bytes``, the JSON footprint of the stored traces — what
    ``--trace-ring-mb`` configures), so a few pathological span trees
    cannot pin hundreds of megabytes.  ``max_spans_per_trace`` truncates
    such trees on ingest; truncated traces carry ``truncated: true`` in
    their snapshot dicts so the cut is explicit, never silent.
    """

    def __init__(
        self,
        capacity: int = 256,
        max_bytes: int | None = None,
        max_spans_per_trace: int | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        if max_spans_per_trace is not None and max_spans_per_trace < 1:
            raise ValueError(
                f"max_spans_per_trace must be >= 1, got {max_spans_per_trace}"
            )
        self.capacity = capacity
        self.max_bytes = max_bytes
        self.max_spans_per_trace = max_spans_per_trace
        self._lock = threading.Lock()
        #: entries are (trace, approx_bytes, truncated)
        self._traces: deque[tuple[Trace, int, bool]] = deque()
        self._bytes = 0
        self.total_recorded = 0
        self.traces_truncated = 0
        self.traces_evicted_bytes = 0

    def __call__(self, trace: Trace) -> None:
        truncated = False
        if (
            self.max_spans_per_trace is not None
            and len(trace.spans) > self.max_spans_per_trace
        ):
            # spans are start-ordered (root first): keep the shallow
            # structure, drop leaf detail
            trace = Trace(
                trace.trace_id, trace.spans[: self.max_spans_per_trace]
            )
            truncated = True
        size = 0
        if self.max_bytes is not None:
            try:
                size = len(json.dumps(trace.to_dict(), default=str))
            except (TypeError, ValueError):  # pragma: no cover - defensive
                size = 1024
        with self._lock:
            self._traces.append((trace, size, truncated))
            self._bytes += size
            self.total_recorded += 1
            if truncated:
                self.traces_truncated += 1
            while len(self._traces) > self.capacity:
                _, evicted, _ = self._traces.popleft()
                self._bytes -= evicted
            while (
                self.max_bytes is not None
                and self._bytes > self.max_bytes
                and len(self._traces) > 1
            ):
                _, evicted, _ = self._traces.popleft()
                self._bytes -= evicted
                self.traces_evicted_bytes += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    @property
    def stored_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()
            self._bytes = 0

    def snapshot(
        self, min_ms: float = 0.0, limit: int | None = None
    ) -> list[dict[str, Any]]:
        """Most-recent-first trace dicts, at least ``min_ms`` long."""
        with self._lock:
            traces = list(self._traces)
        selected = [
            (t, truncated)
            for t, _, truncated in reversed(traces)
            if t.duration_ms >= min_ms
        ]
        if limit is not None:
            selected = selected[: max(0, limit)]
        out = []
        for t, truncated in selected:
            d = t.to_dict()
            if truncated:
                d["truncated"] = True
            out.append(d)
        return out


class JsonlTraceSink:
    """Append one JSON line per finished trace to ``path``.

    The file handle is opened lazily and kept open; writes are serialised
    behind a lock and flushed per trace so a crash loses at most the
    in-flight line.  With ``max_mb`` set (``--trace-file-max-mb``), the
    file rotates atomically via :func:`os.replace` once a write would
    push it past the budget — ``trace.jsonl → trace.jsonl.1 → … →
    trace.jsonl.<generations>`` — keeping ``generations`` rotated files
    and deleting older ones, so the sink's disk footprint is bounded at
    roughly ``(generations + 1) × max_mb``.
    """

    def __init__(
        self,
        path: str,
        max_mb: float | None = None,
        generations: int = 3,
    ) -> None:
        if max_mb is not None and max_mb <= 0:
            raise ValueError(f"max_mb must be > 0, got {max_mb}")
        if generations < 1:
            raise ValueError(f"generations must be >= 1, got {generations}")
        self.path = path
        self.max_bytes = None if max_mb is None else int(max_mb * 1024 * 1024)
        self.generations = generations
        self._lock = threading.Lock()
        self._handle = None
        self._size = 0
        self.traces_written = 0
        self.rotations = 0

    def _open(self) -> None:
        self._handle = open(self.path, "a", encoding="utf-8")
        try:
            self._size = os.path.getsize(self.path)
        except OSError:  # pragma: no cover - defensive
            self._size = 0

    def _rotate(self) -> None:
        """Shift generations up and start a fresh file. Caller holds the lock."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        oldest = f"{self.path}.{self.generations}"
        try:
            os.remove(oldest)
        except FileNotFoundError:
            pass
        for gen in range(self.generations - 1, 0, -1):
            src = f"{self.path}.{gen}"
            if os.path.exists(src):
                os.replace(src, f"{self.path}.{gen + 1}")
        os.replace(self.path, f"{self.path}.1")
        self.rotations += 1
        self._open()

    def __call__(self, trace: Trace) -> None:
        line = json.dumps(trace.to_dict(), default=str) + "\n"
        with self._lock:
            if self._handle is None:
                self._open()
            if (
                self.max_bytes is not None
                and self._size > 0
                and self._size + len(line) > self.max_bytes
            ):
                self._rotate()
            self._handle.write(line)
            self._handle.flush()
            self._size += len(line)
            self.traces_written += 1

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


def render_tree(node: dict[str, Any], indent: int = 0) -> str:
    """A human-readable one-line-per-span rendering of a span tree."""
    pad = "  " * indent
    attrs = node.get("attributes") or {}
    attr_text = (
        " " + " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
        if attrs
        else ""
    )
    status = "" if node.get("status", "ok") == "ok" else f" [{node['status']}]"
    lines = [
        f"{pad}{node['name']} {node['duration_ms']:.1f}ms{status}{attr_text}"
    ]
    for child in node.get("children", ()):
        lines.append(render_tree(child, indent + 1))
    return "\n".join(lines)


class SlowTraceLog:
    """Log traces slower than ``threshold_ms`` at WARNING with their tree.

    Emission is rate-limited with one token bucket **per operation** (the
    root span's ``route`` attribute when present, else its name): each
    operation may log ``burst`` trees back-to-back, refilling at
    ``rate_per_second`` — so a saturated workload where *every* request is
    slow cannot flood the log sink.  First-and-counts semantics: the
    first slow trace of an operation always logs (the bucket starts
    full), suppressed occurrences are counted, and the next permitted
    line carries ``suppressed=N`` so nothing disappears silently.
    """

    def __init__(
        self,
        threshold_ms: float,
        logger: logging.Logger | None = None,
        rate_per_second: float = 0.5,
        burst: int = 5,
        clock=time.monotonic,
    ) -> None:
        if threshold_ms < 0:
            raise ValueError(f"threshold_ms must be >= 0, got {threshold_ms}")
        if rate_per_second <= 0:
            raise ValueError(
                f"rate_per_second must be > 0, got {rate_per_second}"
            )
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.threshold_ms = float(threshold_ms)
        self.rate_per_second = float(rate_per_second)
        self.burst = int(burst)
        self._clock = clock
        self._logger = logger or logging.getLogger("repro.obs.slow")
        self._lock = threading.Lock()
        #: operation → [tokens, last_refill, suppressed_since_last_log]
        self._buckets: dict[str, list[float]] = {}
        self.slow_traces = 0
        self.suppressed_total = 0

    def _operation(self, trace: Trace) -> str:
        route = trace.root.attributes.get("route")
        return str(route) if route else trace.root.name

    def __call__(self, trace: Trace) -> None:
        if trace.duration_ms < self.threshold_ms:
            return
        operation = self._operation(trace)
        now = self._clock()
        with self._lock:
            self.slow_traces += 1
            bucket = self._buckets.get(operation)
            if bucket is None:
                bucket = self._buckets[operation] = [float(self.burst), now, 0.0]
            tokens, last, suppressed = bucket
            tokens = min(
                float(self.burst),
                tokens + (now - last) * self.rate_per_second,
            )
            if tokens < 1.0:
                bucket[0] = tokens
                bucket[1] = now
                bucket[2] = suppressed + 1.0
                self.suppressed_total += 1
                return
            bucket[0] = tokens - 1.0
            bucket[1] = now
            bucket[2] = 0.0
        suffix = (
            f" suppressed={int(suppressed)}" if suppressed else ""
        )
        self._logger.warning(
            "slow request %s: %s took %.1fms (threshold %.0fms)%s\n%s",
            trace.trace_id,
            trace.root.name,
            trace.duration_ms,
            self.threshold_ms,
            suffix,
            render_tree(trace.tree()),
        )
