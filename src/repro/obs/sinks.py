"""Trace sinks: where finished traces go.

* :class:`TraceRingBuffer` — the last N traces in memory, filterable by
  duration; backs ``GET /debug/traces``;
* :class:`JsonlTraceSink` — one JSON line per trace appended to a file
  (``--trace-file``), for offline analysis;
* :class:`SlowTraceLog` — root spans over a threshold are logged at
  WARNING with their rendered span tree, so slow requests self-report
  without anyone polling the debug endpoint.

Sinks are plain callables ``sink(trace)``; the tracer swallows sink
exceptions (observability must not take requests down), so each sink is
also individually defensive about I/O.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from collections import deque
from typing import Any

from .tracing import Trace

__all__ = ["JsonlTraceSink", "SlowTraceLog", "TraceRingBuffer", "render_tree"]


class TraceRingBuffer:
    """A bounded in-memory buffer of the most recent finished traces."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._traces: deque[Trace] = deque(maxlen=capacity)
        self.total_recorded = 0

    def __call__(self, trace: Trace) -> None:
        with self._lock:
            self._traces.append(trace)
            self.total_recorded += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()

    def snapshot(
        self, min_ms: float = 0.0, limit: int | None = None
    ) -> list[dict[str, Any]]:
        """Most-recent-first trace dicts, at least ``min_ms`` long."""
        with self._lock:
            traces = list(self._traces)
        selected = [t for t in reversed(traces) if t.duration_ms >= min_ms]
        if limit is not None:
            selected = selected[: max(0, limit)]
        return [t.to_dict() for t in selected]


class JsonlTraceSink:
    """Append one JSON line per finished trace to ``path``.

    The file handle is opened lazily and kept open; writes are serialised
    behind a lock and flushed per trace so a crash loses at most the
    in-flight line.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._handle = None
        self.traces_written = 0

    def __call__(self, trace: Trace) -> None:
        line = json.dumps(trace.to_dict(), default=str)
        with self._lock:
            if self._handle is None:
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(line + "\n")
            self._handle.flush()
            self.traces_written += 1

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


def render_tree(node: dict[str, Any], indent: int = 0) -> str:
    """A human-readable one-line-per-span rendering of a span tree."""
    pad = "  " * indent
    attrs = node.get("attributes") or {}
    attr_text = (
        " " + " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
        if attrs
        else ""
    )
    status = "" if node.get("status", "ok") == "ok" else f" [{node['status']}]"
    lines = [
        f"{pad}{node['name']} {node['duration_ms']:.1f}ms{status}{attr_text}"
    ]
    for child in node.get("children", ()):
        lines.append(render_tree(child, indent + 1))
    return "\n".join(lines)


class SlowTraceLog:
    """Log traces slower than ``threshold_ms`` at WARNING with their tree.

    Emission is rate-limited with one token bucket **per operation** (the
    root span's ``route`` attribute when present, else its name): each
    operation may log ``burst`` trees back-to-back, refilling at
    ``rate_per_second`` — so a saturated workload where *every* request is
    slow cannot flood the log sink.  First-and-counts semantics: the
    first slow trace of an operation always logs (the bucket starts
    full), suppressed occurrences are counted, and the next permitted
    line carries ``suppressed=N`` so nothing disappears silently.
    """

    def __init__(
        self,
        threshold_ms: float,
        logger: logging.Logger | None = None,
        rate_per_second: float = 0.5,
        burst: int = 5,
        clock=time.monotonic,
    ) -> None:
        if threshold_ms < 0:
            raise ValueError(f"threshold_ms must be >= 0, got {threshold_ms}")
        if rate_per_second <= 0:
            raise ValueError(
                f"rate_per_second must be > 0, got {rate_per_second}"
            )
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.threshold_ms = float(threshold_ms)
        self.rate_per_second = float(rate_per_second)
        self.burst = int(burst)
        self._clock = clock
        self._logger = logger or logging.getLogger("repro.obs.slow")
        self._lock = threading.Lock()
        #: operation → [tokens, last_refill, suppressed_since_last_log]
        self._buckets: dict[str, list[float]] = {}
        self.slow_traces = 0
        self.suppressed_total = 0

    def _operation(self, trace: Trace) -> str:
        route = trace.root.attributes.get("route")
        return str(route) if route else trace.root.name

    def __call__(self, trace: Trace) -> None:
        if trace.duration_ms < self.threshold_ms:
            return
        operation = self._operation(trace)
        now = self._clock()
        with self._lock:
            self.slow_traces += 1
            bucket = self._buckets.get(operation)
            if bucket is None:
                bucket = self._buckets[operation] = [float(self.burst), now, 0.0]
            tokens, last, suppressed = bucket
            tokens = min(
                float(self.burst),
                tokens + (now - last) * self.rate_per_second,
            )
            if tokens < 1.0:
                bucket[0] = tokens
                bucket[1] = now
                bucket[2] = suppressed + 1.0
                self.suppressed_total += 1
                return
            bucket[0] = tokens - 1.0
            bucket[1] = now
            bucket[2] = 0.0
        suffix = (
            f" suppressed={int(suppressed)}" if suppressed else ""
        )
        self._logger.warning(
            "slow request %s: %s took %.1fms (threshold %.0fms)%s\n%s",
            trace.trace_id,
            trace.root.name,
            trace.duration_ms,
            self.threshold_ms,
            suffix,
            render_tree(trace.tree()),
        )
