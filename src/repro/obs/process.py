"""Process-level health collectors for the metrics registry.

Request-scoped metrics (latency histograms, cache hit rates) say how the
workload behaves; these gauges say how the *process* is doing while it
serves that workload — resident memory, GC pressure, thread count and
uptime.  They are the first thing to check when latency drifts with no
code change: a growing RSS or a busy GC explains a lot of mysteries.

:class:`ProcessCollector` is a scrape-time collector — register it with
:meth:`~repro.obs.metrics.MetricsRegistry.register_collector` and every
``collect()`` (JSON or Prometheus exposition) reads fresh values.  No
background thread, no state beyond the start timestamp.

Everything here is stdlib.  RSS comes from ``/proc/self/statm`` where
available (Linux), falling back to ``resource.getrusage`` (portable, but
peak-RSS semantics on Linux and byte-unit differences on macOS — the
fallback normalises to bytes best-effort and is clearly better than
nothing).
"""

from __future__ import annotations

import gc
import os
import sys
import threading
import time
from typing import Any

from .metrics import MetricFamily

__all__ = ["ProcessCollector", "rss_bytes"]

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def rss_bytes() -> int | None:
    """Current resident set size in bytes, or ``None`` if unobtainable."""
    try:
        with open("/proc/self/statm", "rb") as handle:
            fields = handle.read().split()
        return int(fields[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        pass
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports kilobytes, macOS bytes; normalise to bytes
        return peak * 1024 if sys.platform != "darwin" else peak
    except (ImportError, OSError):
        return None


class ProcessCollector:
    """Scrape-time process gauges: RSS, GC, threads, uptime."""

    def __init__(self, started_monotonic: float | None = None) -> None:
        self._started = (
            started_monotonic
            if started_monotonic is not None
            else time.monotonic()
        )

    @property
    def uptime_seconds(self) -> float:
        return max(0.0, time.monotonic() - self._started)

    def snapshot(self) -> dict[str, Any]:
        """The ``process`` section of the JSON ``/metrics`` payload."""
        counts = gc.get_count()
        collections = [stats["collections"] for stats in gc.get_stats()]
        return {
            "rss_bytes": rss_bytes(),
            "gc_objects_pending": sum(counts),
            "gc_collections": {
                f"gen{index}": count
                for index, count in enumerate(collections)
            },
            "threads": threading.active_count(),
            "uptime_seconds": self.uptime_seconds,
        }

    def __call__(self) -> list[MetricFamily]:
        """Registry collector protocol: fresh families per scrape."""
        families: list[MetricFamily] = []
        rss = rss_bytes()
        if rss is not None:
            family = MetricFamily(
                "subdex_process_resident_memory_bytes",
                "gauge",
                "Resident set size of the server process.",
            )
            family.add(float(rss))
            families.append(family)
        collections = MetricFamily(
            "subdex_process_gc_collections_total",
            "counter",
            "Garbage collections per generation since process start.",
        )
        for index, stats in enumerate(gc.get_stats()):
            collections.add(stats["collections"], generation=str(index))
        families.append(collections)
        threads = MetricFamily(
            "subdex_process_threads",
            "gauge",
            "Live Python threads in the server process.",
        )
        threads.add(float(threading.active_count()))
        families.append(threads)
        uptime = MetricFamily(
            "subdex_process_uptime_seconds",
            "gauge",
            "Seconds since the server process started.",
        )
        uptime.add(self.uptime_seconds)
        families.append(uptime)
        return families
