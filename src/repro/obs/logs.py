"""Logging setup: text/JSON formatters that carry the active trace id.

The repo previously had not a single ``logging`` call; the serving and
resilience layers now log through module-level loggers under the
``"repro"`` namespace.  :func:`setup_logging` is the CLI entry point
(``python -m repro serve --log-level debug --log-format json``): it
configures the ``repro`` logger only — library users who never call it
keep logging silent (a :class:`logging.NullHandler` guards against
"no handler" warnings), and embedding applications keep control of their
own root logger.

Both formatters ask :func:`repro.obs.tracing.current_trace_id` for the
ambient trace, so a log line emitted anywhere under a request span is
correlatable with the trace that produced it.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Any, TextIO

from .tracing import current_trace_id

__all__ = ["JsonLogFormatter", "TextLogFormatter", "setup_logging"]

_LEVELS = {"debug", "info", "warning", "error", "critical"}


class TextLogFormatter(logging.Formatter):
    """``HH:MM:SS LEVEL logger: message [trace=...]``."""

    default_time_format = "%H:%M:%S"

    def __init__(self) -> None:
        super().__init__("%(asctime)s %(levelname)s %(name)s: %(message)s")

    def format(self, record: logging.LogRecord) -> str:
        text = super().format(record)
        trace_id = getattr(record, "trace_id", None) or current_trace_id()
        if trace_id:
            text += f" trace={trace_id}"
        return text


class JsonLogFormatter(logging.Formatter):
    """One JSON object per line: ts, level, logger, message, trace_id.

    Extra attributes passed via ``logger.info(..., extra={...})`` are
    included verbatim when JSON-serialisable.
    """

    _RESERVED = frozenset(
        logging.LogRecord(
            "", 0, "", 0, "", (), None
        ).__dict__
    ) | {"message", "asctime", "taskName"}

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": round(record.created, 6),
            "time": time.strftime(
                "%Y-%m-%dT%H:%M:%S", time.localtime(record.created)
            ),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        trace_id = getattr(record, "trace_id", None) or current_trace_id()
        if trace_id:
            payload["trace_id"] = trace_id
        if record.exc_info and record.exc_info[0] is not None:
            payload["exception"] = self.formatException(record.exc_info)
        for key, value in record.__dict__.items():
            if key in self._RESERVED or key == "trace_id":
                continue
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                value = repr(value)
            payload[key] = value
        return json.dumps(payload, default=str)


def setup_logging(
    level: str = "info",
    fmt: str = "text",
    stream: TextIO | None = None,
) -> logging.Logger:
    """Configure the ``repro`` logger tree; returns the top logger.

    Idempotent: a second call replaces the previously installed handler
    instead of stacking duplicates.
    """
    level = level.lower()
    if level not in _LEVELS:
        raise ValueError(
            f"unknown log level {level!r} (choose from {sorted(_LEVELS)})"
        )
    if fmt not in ("text", "json"):
        raise ValueError(f"unknown log format {fmt!r} (choose text or json)")
    logger = logging.getLogger("repro")
    logger.setLevel(getattr(logging, level.upper()))
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(
        JsonLogFormatter() if fmt == "json" else TextLogFormatter()
    )
    for existing in list(logger.handlers):
        logger.removeHandler(existing)
    logger.addHandler(handler)
    logger.propagate = False
    return logger


# library default: silent unless the embedding application configures
# logging (or the CLI calls setup_logging)
logging.getLogger("repro").addHandler(logging.NullHandler())
