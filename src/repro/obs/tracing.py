"""Tracing: ``contextvars``-propagated spans over the exploration hot path.

One *trace* covers one logical request (an HTTP request, a CLI exploration
step) and is a tree of *spans* — named, timed regions with attributes
(``with span("phase.scan", phase=3): ...``).  The design goals, in order:

1. **near-zero cost when disabled** — every instrumented call site goes
   through :func:`span`, which, with no active trace and the default
   tracer disabled, returns a shared no-op context manager: one contextvar
   read and one attribute check, no allocation;
2. **thread-correct propagation** — the active span lives in a
   :class:`~contextvars.ContextVar`, so concurrent requests on different
   server threads never see each other's spans.  Worker pools do *not*
   inherit contextvars; callers that fan work out (the Recommendation
   Builder) capture :func:`current_context` once and re-install it with
   :func:`activate` inside each pooled task, so worker spans join the
   request's trace instead of starting orphan traces;
3. **no plumbing** — engine layers call the module-level :func:`span`
   and attach to whatever trace is ambient.  The serving layer owns a
   private :class:`Tracer` (isolated from other servers in the same
   process); library/CLI users enable the module default via
   :func:`configure`.

A span that raises records ``status="error"`` with the exception type.
Finished traces are delivered to the tracer's sinks (see
:mod:`repro.obs.sinks`); a sink failure is swallowed — observability must
never take the serving path down with it.
"""

from __future__ import annotations

import threading
import time
import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Callable, Iterator, Mapping

__all__ = [
    "Span",
    "Trace",
    "Tracer",
    "activate",
    "annotate",
    "configure",
    "current_context",
    "current_trace_id",
    "current_trace_partial",
    "get_tracer",
    "span",
    "span_tree",
]


def _new_trace_id() -> str:
    return uuid.uuid4().hex


def _new_span_id() -> str:
    return uuid.uuid4().hex[:16]


class Span:
    """One named, timed region of a trace.

    ``start``/``end`` are ``perf_counter`` readings (durations only);
    ``started_at`` is wall-clock for log correlation.  Attributes must be
    JSON-serialisable scalars (the sinks dump them verbatim).
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "started_at",
        "start",
        "end",
        "attributes",
        "status",
        "thread_name",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        attributes: dict[str, Any],
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.started_at = time.time()
        self.start = time.perf_counter()
        self.end: float | None = None
        self.attributes = attributes
        self.status = "ok"
        self.thread_name = threading.current_thread().name

    def set(self, **attributes: Any) -> "Span":
        """Attach attributes mid-span (``sp.set(rows_seen=n)``)."""
        self.attributes.update(attributes)
        return self

    @property
    def duration_seconds(self) -> float:
        end = self.end if self.end is not None else time.perf_counter()
        return end - self.start

    @property
    def duration_ms(self) -> float:
        return self.duration_seconds * 1000.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "started_at": self.started_at,
            "duration_ms": self.duration_ms,
            "status": self.status,
            "thread": self.thread_name,
            "attributes": dict(self.attributes),
        }


class _NoopSpan:
    """The shared do-nothing span handed out when tracing is off."""

    __slots__ = ()

    def set(self, **attributes: Any) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NOOP = _NoopSpan()


class Trace:
    """A finished trace: the root span plus every descendant, start-ordered."""

    __slots__ = ("trace_id", "spans")

    def __init__(self, trace_id: str, spans: tuple[Span, ...]) -> None:
        self.trace_id = trace_id
        self.spans = spans

    @property
    def root(self) -> Span:
        return self.spans[0]

    @property
    def duration_ms(self) -> float:
        return self.root.duration_ms

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "name": self.root.name,
            "started_at": self.root.started_at,
            "duration_ms": self.duration_ms,
            "status": self.root.status,
            "n_spans": len(self.spans),
            "spans": [s.to_dict() for s in self.spans],
        }

    def tree(self) -> dict[str, Any]:
        return span_tree(self.spans)


def span_tree(spans: Mapping | tuple[Span, ...] | list[Span]) -> dict[str, Any]:
    """Nest flat spans into the root's ``{name, duration_ms, children}`` tree.

    Spans whose parent is missing (e.g. a partial snapshot taken while
    ancestors are still open) are attached to the root so no timing is
    silently dropped.
    """
    ordered = sorted(spans, key=lambda s: s.start)
    if not ordered:
        return {}
    nodes: dict[str, dict[str, Any]] = {}
    for s in ordered:
        nodes[s.span_id] = {
            "name": s.name,
            "duration_ms": s.duration_ms,
            "status": s.status,
            "attributes": dict(s.attributes),
            "children": [],
        }
    root = ordered[0]
    for s in ordered[1:]:
        parent = nodes.get(s.parent_id or "")
        if parent is None:
            parent = nodes[root.span_id]
        parent["children"].append(nodes[s.span_id])
    return nodes[root.span_id]


class _TraceBuffer:
    """Mutable collection point for one in-flight trace (thread-safe)."""

    __slots__ = ("trace_id", "root_span_id", "finished", "lock")

    def __init__(self, trace_id: str, root_span_id: str) -> None:
        self.trace_id = trace_id
        self.root_span_id = root_span_id
        self.finished: list[Span] = []
        self.lock = threading.Lock()

    def add(self, span_: Span) -> None:
        with self.lock:
            self.finished.append(span_)

    def snapshot(self) -> list[Span]:
        with self.lock:
            return list(self.finished)


class _Context:
    """What the contextvar holds: which tracer, which trace, which span.

    ``parent`` links to the enclosing context so a partial snapshot can
    walk the chain of still-open ancestor spans (contextvar tokens alone
    cannot be traversed).
    """

    __slots__ = ("tracer", "buffer", "span", "parent")

    def __init__(
        self,
        tracer: "Tracer",
        buffer: _TraceBuffer,
        span_: Span,
        parent: "_Context | None" = None,
    ) -> None:
        self.tracer = tracer
        self.buffer = buffer
        self.span = span_
        self.parent = parent


_CURRENT: ContextVar[_Context | None] = ContextVar("subdex_trace", default=None)


class _ActiveSpan:
    """Context manager for one live span (root or child)."""

    __slots__ = ("_tracer", "_buffer", "_span", "_token", "_is_root")

    def __init__(
        self,
        tracer: "Tracer",
        buffer: _TraceBuffer | None,
        name: str,
        attributes: dict[str, Any],
        trace_id: str | None = None,
    ) -> None:
        self._tracer = tracer
        if buffer is None:
            tid = trace_id or _new_trace_id()
            sid = _new_span_id()
            self._span = Span(name, tid, sid, None, attributes)
            self._buffer = _TraceBuffer(tid, sid)
            self._is_root = True
        else:
            parent = _CURRENT.get()
            parent_id = parent.span.span_id if parent is not None else buffer.root_span_id
            self._span = Span(
                name, buffer.trace_id, _new_span_id(), parent_id, attributes
            )
            self._buffer = buffer
            self._is_root = False
        self._token = None

    def __enter__(self) -> Span:
        self._token = _CURRENT.set(
            _Context(self._tracer, self._buffer, self._span, _CURRENT.get())
        )
        # start is stamped in Span.__init__; restamp on enter so time spent
        # between construction and entry (none, in practice) is excluded
        self._span.start = time.perf_counter()
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._span.end = time.perf_counter()
        if exc_type is not None:
            self._span.status = "error"
            self._span.attributes.setdefault("error", exc_type.__name__)
        if self._token is not None:
            _CURRENT.reset(self._token)
        if self._is_root:
            spans = self._buffer.snapshot()
            spans.append(self._span)
            spans.sort(key=lambda s: s.start)
            self._tracer._deliver(Trace(self._buffer.trace_id, tuple(spans)))
        else:
            self._buffer.add(self._span)


class Tracer:
    """Owns the enabled flag and the sinks; hands out spans.

    One module-level default tracer exists for library/CLI use
    (:func:`configure`, :func:`get_tracer`); the server builds a private
    instance so concurrent servers in one process don't share sinks.
    """

    def __init__(self, enabled: bool = False) -> None:
        self._enabled = bool(enabled)
        self._sinks: list[Callable[[Trace], None]] = []
        self._sinks_lock = threading.Lock()
        self.traces_recorded = 0
        self.sink_errors = 0

    @property
    def enabled(self) -> bool:
        return self._enabled

    def configure(self, enabled: bool) -> None:
        self._enabled = bool(enabled)

    def add_sink(self, sink: Callable[[Trace], None]) -> None:
        """Register a callable receiving every finished trace."""
        with self._sinks_lock:
            self._sinks.append(sink)

    def remove_sink(self, sink: Callable[[Trace], None]) -> None:
        with self._sinks_lock:
            if sink in self._sinks:
                self._sinks.remove(sink)

    def clear_sinks(self) -> None:
        with self._sinks_lock:
            self._sinks.clear()

    def span(
        self, name: str, trace_id: str | None = None, **attributes: Any
    ) -> "_ActiveSpan | _NoopSpan":
        """A span under the ambient trace, or a new root span.

        ``trace_id`` seeds a *root* span's trace id (e.g. from an incoming
        ``X-Trace-Id`` header); it is ignored for child spans.
        """
        if not self._enabled:
            return _NOOP
        ctx = _CURRENT.get()
        buffer = ctx.buffer if ctx is not None else None
        return _ActiveSpan(self, buffer, name, dict(attributes), trace_id)

    def _deliver(self, trace: Trace) -> None:
        self.traces_recorded += 1
        with self._sinks_lock:
            sinks = list(self._sinks)
        for sink in sinks:
            try:
                sink(trace)
            except Exception:  # noqa: BLE001 - sinks must not break serving
                self.sink_errors += 1


_default_tracer = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The module-level default tracer (disabled until :func:`configure`)."""
    return _default_tracer


def configure(enabled: bool) -> Tracer:
    """Enable/disable the default tracer; returns it for sink attachment."""
    _default_tracer.configure(enabled)
    return _default_tracer


def span(name: str, **attributes: Any) -> "_ActiveSpan | _NoopSpan":
    """The instrumentation entry point used by the engine layers.

    Attaches to the ambient trace whichever tracer started it; with no
    ambient trace, starts a new root trace on the default tracer (or
    no-ops when it is disabled).
    """
    ctx = _CURRENT.get()
    if ctx is not None:
        if not ctx.tracer._enabled:
            return _NOOP
        return _ActiveSpan(ctx.tracer, ctx.buffer, name, dict(attributes))
    if not _default_tracer._enabled:
        return _NOOP
    return _ActiveSpan(_default_tracer, None, name, dict(attributes))


def current_context() -> _Context | None:
    """The ambient trace context — capture before fanning out to a pool."""
    return _CURRENT.get()


def annotate(**attributes: Any) -> None:
    """Set attributes on the innermost open span, if any.

    Lets code that learns a fact mid-span (e.g. a handler resolving its
    dataset) pin it to the trace without threading the span object
    through; a no-op outside any trace.
    """
    ctx = _CURRENT.get()
    if ctx is not None:
        ctx.span.attributes.update(attributes)


@contextmanager
def activate(ctx: _Context | None) -> Iterator[None]:
    """Re-install a captured context in a worker thread.

    ``activate(None)`` is a no-op, so call sites need no conditional.
    """
    if ctx is None:
        yield
        return
    token = _CURRENT.set(ctx)
    try:
        yield
    finally:
        _CURRENT.reset(token)


def current_trace_id() -> str | None:
    """The ambient trace id, if a trace is active (for log correlation)."""
    ctx = _CURRENT.get()
    return ctx.buffer.trace_id if ctx is not None else None


def current_trace_partial() -> dict[str, Any] | None:
    """A span-tree snapshot of the in-flight trace (for ``?debug=1``).

    Finished spans are exact; still-open ancestors (the request root span,
    typically) report their elapsed-so-far duration.
    """
    ctx = _CURRENT.get()
    if ctx is None:
        return None
    spans = ctx.buffer.snapshot()
    seen_ids = {s.span_id for s in spans}
    node: _Context | None = ctx
    while node is not None:  # still-open ancestors, innermost first
        if node.span.span_id not in seen_ids:
            spans.append(node.span)
            seen_ids.add(node.span.span_id)
        node = node.parent
    return {
        "trace_id": ctx.buffer.trace_id,
        "spans": span_tree(spans),
    }
