"""A generic metrics registry: labelled counters, gauges, bounded histograms.

Instruments are created once (``registry.counter("subdex_events_total",
"...", labelnames=("event",))``) and mutated from any thread; each
instrument guards its samples with one lock, and mutation is a dict lookup
plus an integer add — far cheaper than anything it measures.

Besides direct instruments the registry accepts **collectors** — callables
producing :class:`MetricFamily` values at scrape time.  Layers that
already keep their own counters (cache stats, posting-store stats, the
admission gate, circuit breakers) register a collector instead of double
accounting on their hot paths.

Two renderings:

* :meth:`MetricsRegistry.to_dict` — JSON, merged into the ``/metrics``
  payload;
* :meth:`MetricsRegistry.render_prometheus` — the Prometheus text
  exposition format (``# HELP`` / ``# TYPE`` lines, escaped labels,
  cumulative histogram buckets), served at ``/metrics?format=prometheus``.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

__all__ = [
    "Counter",
    "Exemplar",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "Sample",
    "escape_label_value",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Exponential-ish latency buckets in seconds, 1 ms – 30 s.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

_NAME_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:"
)


def _check_name(name: str) -> str:
    if not name or name[0].isdigit() or not set(name) <= _NAME_OK:
        raise ValueError(f"invalid metric name {name!r}")
    return name


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format."""
    return (
        value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')
    )


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _render_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{escape_label_value(str(value))}"'
        for name, value in labels.items()
    )
    return "{" + inner + "}"


@dataclass(frozen=True)
class Exemplar:
    """An OpenMetrics exemplar: a traced observation pinned to a bucket.

    Rendered as ``# {trace_id="…"} value [timestamp]`` after a
    ``_bucket`` sample line, linking the aggregate back to one concrete
    trace (``GET /debug/traces/<trace_id>``).  Only emitted by the
    OpenMetrics rendering — exemplars are not part of the classic
    Prometheus text format.
    """

    labels: Mapping[str, str]
    value: float
    timestamp: float | None = None

    def render(self) -> str:
        inner = ",".join(
            f'{name}="{escape_label_value(str(value))}"'
            for name, value in self.labels.items()
        )
        text = f"# {{{inner}}} {_format_value(self.value)}"
        if self.timestamp is not None:
            text += f" {self.timestamp:.3f}"
        return text


@dataclass(frozen=True)
class Sample:
    """One exposition line: ``name+suffix{labels} value``."""

    suffix: str
    labels: Mapping[str, str]
    value: float
    exemplar: Exemplar | None = None


@dataclass
class MetricFamily:
    """A named group of samples sharing a type and help string."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    help: str = ""
    samples: list[Sample] = field(default_factory=list)

    def add(
        self,
        value: float,
        suffix: str = "",
        exemplar: Exemplar | None = None,
        **labels: Any,
    ) -> None:
        self.samples.append(
            Sample(
                suffix,
                {k: str(v) for k, v in labels.items()},
                float(value),
                exemplar,
            )
        )

    def render(self, openmetrics: bool = False) -> str:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        for sample in self.samples:
            line = (
                f"{self.name}{sample.suffix}"
                f"{_render_labels(sample.labels)} {_format_value(sample.value)}"
            )
            # exemplars are only legal on histogram bucket lines
            if (
                openmetrics
                and sample.exemplar is not None
                and sample.suffix == "_bucket"
            ):
                line += " " + sample.exemplar.render()
            lines.append(line)
        return "\n".join(lines)


class _Instrument:
    """Shared labelled-sample machinery of the three instrument types."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str]) -> None:
        self.name = _check_name(name)
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._samples: dict[tuple[str, ...], Any] = {}

    def _key(self, labels: Mapping[str, Any]) -> tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {tuple(labels)}"
            )
        return tuple(str(labels[n]) for n in self.labelnames)

    def _label_dict(self, key: tuple[str, ...]) -> dict[str, str]:
        return dict(zip(self.labelnames, key))

    def clear(self) -> None:
        with self._lock:
            self._samples.clear()


class Counter(_Instrument):
    """A monotonically increasing labelled counter."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        key = self._key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        with self._lock:
            return float(self._samples.get(self._key(labels), 0.0))

    def collect(self) -> MetricFamily:
        family = MetricFamily(self.name, self.kind, self.help)
        with self._lock:
            for key, value in sorted(self._samples.items()):
                family.samples.append(Sample("", self._label_dict(key), value))
        return family


class Gauge(_Instrument):
    """A labelled value that can go up and down (or be read via callback)."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._samples[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        with self._lock:
            return float(self._samples.get(self._key(labels), 0.0))

    def collect(self) -> MetricFamily:
        family = MetricFamily(self.name, self.kind, self.help)
        with self._lock:
            for key, value in sorted(self._samples.items()):
                family.samples.append(Sample("", self._label_dict(key), value))
        return family


class Histogram(_Instrument):
    """A bounded-bucket histogram (cumulative buckets at render time).

    ``buckets`` are finite upper bounds, strictly increasing; the implicit
    ``+Inf`` bucket is always present.  Memory per label set is
    ``len(buckets) + 2`` floats, independent of observation count.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ) or any(math.isinf(b) or math.isnan(b) for b in bounds):
            raise ValueError(
                f"buckets must be finite and strictly increasing, got {buckets}"
            )
        self.buckets = bounds

    def observe(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        index = bisect_left(self.buckets, value)
        with self._lock:
            state = self._samples.get(key)
            if state is None:
                # per-bucket counts (+Inf last), then sum, then count
                state = self._samples[key] = [0] * (len(self.buckets) + 1) + [
                    0.0,
                    0,
                ]
            state[index] += 1
            state[-2] += value
            state[-1] += 1

    def bucket_counts(self, **labels: Any) -> dict[str, int]:
        """Cumulative counts keyed by upper bound (``"+Inf"`` last)."""
        with self._lock:
            state = self._samples.get(self._key(labels))
            raw = list(state[: len(self.buckets) + 1]) if state else [0] * (
                len(self.buckets) + 1
            )
        cumulative: dict[str, int] = {}
        running = 0
        for bound, count in zip(self.buckets, raw):
            running += count
            cumulative[_format_value(bound)] = running
        cumulative["+Inf"] = running + raw[-1]
        return cumulative

    def collect(self) -> MetricFamily:
        family = MetricFamily(self.name, self.kind, self.help)
        with self._lock:
            items = sorted(
                (key, list(state)) for key, state in self._samples.items()
            )
        for key, state in items:
            labels = self._label_dict(key)
            running = 0
            for bound, count in zip(self.buckets, state):
                running += count
                family.samples.append(
                    Sample(
                        "_bucket",
                        {**labels, "le": _format_value(bound)},
                        running,
                    )
                )
            family.samples.append(
                Sample("_bucket", {**labels, "le": "+Inf"}, running + state[-3])
            )
            family.samples.append(Sample("_sum", labels, state[-2]))
            family.samples.append(Sample("_count", labels, state[-1]))
        return family


class MetricsRegistry:
    """Instruments + collectors behind one scrape surface."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}
        self._collectors: list[Callable[[], Iterable[MetricFamily]]] = []

    def _get_or_create(
        self, cls: type, name: str, help: str, labelnames: Sequence[str], **kw: Any
    ) -> Any:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.labelnames != tuple(
                    labelnames
                ):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}{existing.labelnames}"
                    )
                return existing
            instrument = cls(name, help, labelnames, **kw)
            self._instruments[name] = instrument
            return instrument

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def register_collector(
        self, collector: Callable[[], Iterable[MetricFamily]]
    ) -> None:
        """Register a scrape-time producer of :class:`MetricFamily` values."""
        with self._lock:
            self._collectors.append(collector)

    def collect(self) -> list[MetricFamily]:
        with self._lock:
            instruments = list(self._instruments.values())
            collectors = list(self._collectors)
        families = [instrument.collect() for instrument in instruments]
        for collector in collectors:
            try:
                families.extend(collector())
            except Exception:  # noqa: BLE001 - a broken collector must not
                continue  # take the scrape endpoint down
        return sorted(families, key=lambda f: f.name)

    def to_dict(self) -> dict[str, Any]:
        """JSON rendering: ``{name: {"{label=value,...}": value}}``."""
        payload: dict[str, Any] = {}
        for family in self.collect():
            series: dict[str, float] = {}
            for sample in family.samples:
                key = f"{family.name}{sample.suffix}" + (
                    _render_labels(sample.labels) if sample.labels else ""
                )
                series[key] = sample.value
            payload[family.name] = {"type": family.kind, "samples": series}
        return payload

    def render_prometheus(self) -> str:
        return "\n".join(family.render() for family in self.collect()) + "\n"

    def render_openmetrics(self) -> str:
        """The OpenMetrics rendering: classic text plus exemplars on
        ``_bucket`` lines and the mandatory ``# EOF`` terminator."""
        body = "\n".join(
            family.render(openmetrics=True) for family in self.collect()
        )
        return body + "\n# EOF\n"
