"""SubDEx — Subjective Data Exploration.

A full reproduction of "Exploring Ratings in Subjective Databases"
(Amer-Yahia, Milo & Youngmann, SIGMOD 2021): the subjective data model, the
rating-map utility/diversity formulation, the phased pruning framework, the
three exploration modes, the paper's baselines, and the complete
experimental harness.

Quickstart::

    from repro import SubDEx, SelectionCriteria
    from repro.datasets import movielens

    engine = SubDEx(movielens(seed=7, scale_factor=0.2))
    result = engine.rating_maps(SelectionCriteria.of(reviewer={"gender": "F"}))
    for rating_map in result.selected:
        print(rating_map.render())
"""

from .core.engine import SubDEx, SubDExConfig
from .core.generator import GeneratorConfig, RMSetGenerator, RMSetResult
from .core.modes import ExplorationMode, ExplorationPath
from .core.rating_maps import RatingMap, RatingMapSpec, Subgroup
from .core.recommend import RecommenderConfig, ScoredOperation
from .core.session import ExplorationSession, StepRecord
from .core.utility import SeenMaps, UtilityConfig
from .exceptions import ReproError
from .model.database import Side, SubjectiveDatabase
from .model.groups import AVPair, RatingGroup, SelectionCriteria
from .model.operations import Operation, OperationKind

__version__ = "1.0.0"

__all__ = [
    "AVPair",
    "ExplorationMode",
    "ExplorationPath",
    "ExplorationSession",
    "GeneratorConfig",
    "Operation",
    "OperationKind",
    "RMSetGenerator",
    "RMSetResult",
    "RatingGroup",
    "RatingMap",
    "RatingMapSpec",
    "RecommenderConfig",
    "ReproError",
    "ScoredOperation",
    "SeenMaps",
    "SelectionCriteria",
    "Side",
    "StepRecord",
    "SubDEx",
    "SubDExConfig",
    "SubjectiveDatabase",
    "Subgroup",
    "UtilityConfig",
    "__version__",
]
