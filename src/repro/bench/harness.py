"""Benchmark harness utilities (S18).

Small, dependency-free helpers the ``benchmarks/`` suite shares: wall-clock
timing of engine steps, parameter sweeps, and aligned table / series
printing so every bench can put the paper's reported numbers next to the
measured ones.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Mapping, Sequence, TypeVar

import numpy as np

from ..perf.benchjson import Metric, write_bench_json

__all__ = [
    "Metric",
    "Timer",
    "time_call",
    "Sweep",
    "format_table",
    "format_series",
    "latency_summary",
    "paper_vs_measured",
    "percentile",
    "report",
]

T = TypeVar("T")


class Timer:
    """Accumulating wall-clock timer with mean/total reporting."""

    def __init__(self) -> None:
        self._samples: list[float] = []
        self._started: float | None = None

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._started is not None
        self._samples.append(time.perf_counter() - self._started)
        self._started = None

    @property
    def samples(self) -> list[float]:
        return list(self._samples)

    @property
    def total(self) -> float:
        return float(sum(self._samples))

    @property
    def mean(self) -> float:
        return float(np.mean(self._samples)) if self._samples else float("nan")


def time_call(fn: Callable[[], T], repeats: int = 1) -> tuple[T, float]:
    """Run ``fn`` ``repeats`` times; return (last result, mean seconds)."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    timer = Timer()
    result: T
    for __ in range(repeats):
        with timer:
            result = fn()
    return result, timer.mean


@dataclass
class Sweep:
    """A one-dimensional parameter sweep producing a printable series.

    ``rows[variant][x]`` collects the measured value for each variant at
    each sweep point.
    """

    parameter: str
    points: tuple = ()
    rows: dict[str, dict[object, float]] = field(default_factory=dict)

    def record(self, variant: str, point: object, value: float) -> None:
        self.rows.setdefault(variant, {})[point] = value
        if point not in self.points:
            self.points = tuple(list(self.points) + [point])

    def series(self, variant: str) -> list[float]:
        return [self.rows.get(variant, {}).get(p, float("nan")) for p in self.points]

    def format(self, value_fmt: str = "{:.4f}") -> str:
        return format_series(
            self.parameter, self.points, self.rows, value_fmt=value_fmt
        )


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0–100) of ``samples`` (NaN when empty)."""
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    if not samples:
        return float("nan")
    return float(np.percentile(np.asarray(samples, dtype=float), q))


def latency_summary(samples: Sequence[float]) -> dict[str, float]:
    """Headline latency statistics for a load run: n, mean, p50, p95, max.

    The shared shape for throughput benches and the serving layer's
    reports, so every latency table reads the same way.
    """
    return {
        "n": float(len(samples)),
        "mean": float(np.mean(samples)) if samples else float("nan"),
        "p50": percentile(samples, 50.0),
        "p95": percentile(samples, 95.0),
        "max": float(np.max(samples)) if samples else float("nan"),
    }


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    value_fmt: str = "{:.3f}",
) -> str:
    """An aligned plain-text table; floats formatted with ``value_fmt``."""
    rendered: list[list[str]] = []
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(value_fmt.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [
        max(len(str(headers[j])), *(len(r[j]) for r in rendered))
        if rendered
        else len(str(headers[j]))
        for j in range(len(headers))
    ]
    lines = [
        "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for cells in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)


def format_series(
    parameter: str,
    points: Sequence[object],
    rows: Mapping[str, Mapping[object, float]],
    value_fmt: str = "{:.4f}",
) -> str:
    """A figure-style series table: one column per sweep point."""
    headers = [parameter] + [str(p) for p in points]
    body = []
    for variant, values in rows.items():
        body.append(
            [variant]
            + [
                value_fmt.format(values[p]) if p in values else "—"
                for p in points
            ]
        )
    return format_table(headers, body, value_fmt)


def paper_vs_measured(
    title: str,
    paper: Mapping[str, object],
    measured: Mapping[str, object],
    note: str = "",
) -> str:
    """Side-by-side comparison block printed by every bench."""
    keys = list(paper)
    for key in measured:
        if key not in paper:
            keys.append(key)
    rows = [[k, paper.get(k, "—"), measured.get(k, "—")] for k in keys]
    table = format_table(["quantity", "paper", "measured"], rows, "{:.3f}")
    parts = [f"== {title} ==", table]
    if note:
        parts.append(f"note: {note}")
    return "\n".join(parts)


def report(
    name: str,
    text: str,
    metrics: Mapping[str, Metric | float] | None = None,
    config: Mapping[str, object] | None = None,
) -> str:
    """Print an experiment's table and persist it under the results dir.

    The directory defaults to ``benchmarks/results`` (override with the
    ``REPRO_BENCH_RESULTS`` environment variable); one ``<name>.txt`` file
    per experiment, so every table/figure regeneration leaves a reviewable
    artifact even when pytest captures stdout.

    When ``metrics`` is given, a schema-valid machine-readable
    ``BENCH_<name>.json`` (see :mod:`repro.perf.benchjson`) is written
    next to the ``.txt``: the input to ``scripts/check_regression.py`` and
    the repo's perf trajectory.  Plain floats become non-portable
    lower-is-better seconds; pass :class:`~repro.perf.benchjson.Metric`
    for ratios/scores (portable) or paper-reproduction values
    (``higher_is_better=None`` — informational, never gated).
    """
    directory = Path(os.environ.get("REPRO_BENCH_RESULTS", "benchmarks/results"))
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    written = str(path)
    if metrics:
        json_path = write_bench_json(
            name, metrics, config=config, directory=directory
        )
        written = f"{path}, {json_path}"
    print(f"\n{text}\n[written to {written}]")
    return str(path)
