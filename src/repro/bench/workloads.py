"""Shared benchmark workloads.

Every ``benchmarks/`` file needs the same ingredients: a dataset at a
CI-friendly scale, a Scenario-I task over it, and an engine per variant.
Centralising them keeps the per-bench files about *what* they measure.

Scales are configurable through environment variables so the same files
serve both quick CI runs and full paper-scale regeneration:

* ``REPRO_BENCH_SCALE`` — dataset scale factor (default 0.03);
* ``REPRO_BENCH_SUBJECTS`` — subjects per study cell (default 10).
"""

from __future__ import annotations

import os
from functools import lru_cache

from ..core.engine import SubDEx, SubDExConfig
from ..core.recommend import RecommenderConfig
from ..datasets import movielens, yelp
from ..model.database import SubjectiveDatabase
from ..userstudy.tasks import (
    ScenarioIITask,
    ScenarioITask,
    make_scenario1_task,
    make_scenario2_task,
)

__all__ = [
    "bench_scale",
    "bench_subjects",
    "bench_database",
    "bench_engine",
    "scenario1_task",
    "scenario2_task",
    "bench_recommender_config",
]


def bench_scale() -> float:
    """Dataset scale factor for benches (env ``REPRO_BENCH_SCALE``)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.03"))


def bench_subjects() -> int:
    """Subjects per study cell (env ``REPRO_BENCH_SUBJECTS``)."""
    return int(os.environ.get("REPRO_BENCH_SUBJECTS", "10"))


def bench_recommender_config() -> RecommenderConfig:
    """Bounded operation fan-out so RP paths stay interactive in benches."""
    return RecommenderConfig(max_values_per_attribute=5)


@lru_cache(maxsize=8)
def bench_database(name: str, seed: int = 2) -> SubjectiveDatabase:
    """A cached dataset instance at bench scale."""
    scale = bench_scale()
    if name == "movielens":
        # MovieLens needs density (≈100 records/reviewer in the original)
        # for subgroup extremes to stabilise; floor its scale accordingly
        return movielens(seed=seed, scale_factor=max(scale, 0.12))
    if name == "yelp":
        return yelp(seed=seed, scale_factor=scale)
    raise KeyError(f"unknown bench dataset {name!r}")


def bench_engine(
    database: SubjectiveDatabase, config: SubDExConfig | None = None
) -> SubDEx:
    """An engine over ``database`` with the bench recommender bounds."""
    if config is None:
        config = SubDExConfig(recommender=bench_recommender_config())
    return SubDEx(database, config)


@lru_cache(maxsize=8)
def scenario1_task(name: str, seed: int = 5) -> ScenarioITask:
    """A cached Scenario-I task (irregular groups injected) per dataset."""
    return make_scenario1_task(bench_database(name), seed=seed)


@lru_cache(maxsize=8)
def scenario2_task(name: str) -> ScenarioIITask:
    """A cached Scenario-II task (ground-truth insights) per dataset."""
    return make_scenario2_task(bench_database(name))


def restrict_attribute_count(
    database: SubjectiveDatabase, n_attributes: int, seed: int = 0
) -> SubjectiveDatabase:
    """Keep only ``n_attributes`` explorable attributes (Fig. 10b workload).

    Attributes are dropped at random (seeded), split proportionally between
    the reviewer and item tables.
    """
    import numpy as np

    from ..model.database import Side

    rng = np.random.default_rng(seed)
    pairs = list(database.grouping_attributes())
    keep_idx = rng.choice(
        len(pairs), size=min(n_attributes, len(pairs)), replace=False
    )
    keep = {pairs[int(i)] for i in keep_idx}
    reviewer_keep = tuple(a for s, a in keep if s is Side.REVIEWER)
    item_keep = tuple(a for s, a in keep if s is Side.ITEM)
    return database.restrict(reviewer_keep, item_keep)


def restrict_value_count(
    database: SubjectiveDatabase, max_values: int
) -> SubjectiveDatabase:
    """Cap every explorable attribute at its ``max_values`` most frequent
    values (Fig. 10c workload) — rarer values become missing.
    """
    from ..db.column import CategoricalColumn, column_from_values
    from ..db.types import ColumnType
    from ..model.database import Side
    from ..model.database import SubjectiveDatabase as SDB

    def capped(table, side):
        out = table
        for name in table.explorable_attributes:
            column = table.column(name)
            if not isinstance(column, CategoricalColumn):
                continue
            domain = database.catalog(side).domain(name)
            keep = set(domain.frequent_values()[:max_values])
            values = [
                v if (v in keep or v is None) else None
                for v in column.to_list()
            ]
            out = out.replace_column(
                name, column_from_values(values, ColumnType.CATEGORICAL)
            )
        return out

    return SDB(
        capped(database.reviewers, Side.REVIEWER),
        capped(database.items, Side.ITEM),
        database.ratings,
        database.dimensions,
        scale=database.scale,
        user_key=database.key(Side.REVIEWER),
        item_key=database.key(Side.ITEM),
        name=f"{database.name}[≤{max_values} vals]",
    )
