"""An SDE benchmark-suite generator (paper §1/§5: "a first step toward
designing an SDE-specific benchmark").

The paper argues SDE needs its own benchmark — unlike IDEBench-style EDA
benchmarks, tasks must target *user–item relationships*.  This module makes
that concrete: :func:`generate_suite` turns any subjective database into a
reproducible suite of graded SDE tasks,

* **anomaly tasks** (Scenario I): irregular-group instances whose measured
  difficulty is the planted block's *visibility* — how far its strongest
  one-attribute aggregation dip stands out;
* **insight tasks** (Scenario II): ground-truth facts with measured effect
  sizes;

plus per-task metadata (budget in steps, difficulty grade) and a scoring
routine so different SDE engines/modes can be compared on equal footing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..datasets.insights import verify_insight
from ..model.database import SubjectiveDatabase
from ..userstudy.tasks import (
    ScenarioIITask,
    ScenarioITask,
    make_scenario1_task,
    make_scenario2_task,
)

__all__ = [
    "BenchmarkTask",
    "BenchmarkSuite",
    "anomaly_visibility",
    "generate_suite",
]


@dataclass(frozen=True)
class BenchmarkTask:
    """One graded SDE task."""

    kind: str  # "anomaly" | "insight"
    task: ScenarioITask | ScenarioIITask
    step_budget: int
    difficulty: str  # "easy" | "medium" | "hard"
    #: the measured signal behind the grade (dip in stars / effect size)
    signal: float

    def describe(self) -> str:
        return (
            f"[{self.kind}/{self.difficulty}] budget {self.step_budget} "
            f"steps, signal {self.signal:.2f}"
        )


def anomaly_visibility(task: ScenarioITask) -> float:
    """How visible the planted blocks are at one-attribute aggregations.

    For each target and each of its description pairs, compute the average-
    score dip the forced block causes in that single-pair slice:
    ``fraction_forced × (slice_mean_without − 1)``.  The task's visibility
    is the *max* over targets' *best* dips — the strongest top-level clue
    any map can show.  Near 0 ⇒ only multi-step exploration can find it.
    """
    database = task.database
    best = 0.0
    for target in task.targets:
        table = database.entity_table(target.side)
        scores = database.dimension_scores(target.dimension)
        for pair in target.pairs:
            mask = table.column(pair.attribute).equals_mask(pair.value)
            record_mask = database.rating_rows_for_entities(target.side, mask)
            slice_records = int(record_mask.sum())
            if slice_records == 0:
                continue
            forced = len(target.record_rows)
            fraction = min(1.0, forced / slice_records)
            # the block sits at score 1; the rest of the slice near the mean
            slice_scores = scores[record_mask]
            slice_mean = float(slice_scores.mean())
            if math.isnan(slice_mean):
                continue
            # dip relative to an un-forced slice (approximate the clean
            # mean by removing the all-1 block's contribution)
            if fraction < 1.0:
                clean_mean = (slice_mean - fraction * 1.0) / (1.0 - fraction)
            else:
                clean_mean = slice_mean
            dip = fraction * max(0.0, clean_mean - 1.0)
            best = max(best, dip)
    return best


def _grade(signal: float, easy: float, hard: float) -> str:
    if signal >= easy:
        return "easy"
    if signal <= hard:
        return "hard"
    return "medium"


@dataclass
class BenchmarkSuite:
    """A reproducible suite of SDE tasks over one database."""

    database_name: str
    tasks: tuple[BenchmarkTask, ...] = ()
    metadata: dict = field(default_factory=dict)

    def by_kind(self, kind: str) -> list[BenchmarkTask]:
        return [t for t in self.tasks if t.kind == kind]

    def by_difficulty(self, difficulty: str) -> list[BenchmarkTask]:
        return [t for t in self.tasks if t.difficulty == difficulty]

    def describe(self) -> str:
        lines = [
            f"SDE benchmark suite over {self.database_name}: "
            f"{len(self.tasks)} tasks"
        ]
        for task in self.tasks:
            lines.append("  " + task.describe())
        return "\n".join(lines)

    def score_explorer(
        self,
        run_task: Callable[[BenchmarkTask], float],
    ) -> dict[str, float]:
        """Evaluate an explorer: ``run_task`` maps a task to a recall ∈ [0, 1].

        Returns mean recall overall and per difficulty grade — the suite's
        headline comparison numbers.
        """
        scores: dict[str, list[float]] = {"overall": []}
        for task in self.tasks:
            recall = run_task(task)
            if not 0.0 <= recall <= 1.0:
                raise ValueError(
                    f"run_task must return a recall in [0, 1], got {recall}"
                )
            scores["overall"].append(recall)
            scores.setdefault(task.difficulty, []).append(recall)
        return {
            key: sum(values) / len(values)
            for key, values in scores.items()
            if values
        }


def generate_suite(
    database: SubjectiveDatabase,
    n_anomaly_tasks: int = 3,
    n_insight_tasks: int = 1,
    seed: int = 0,
    anomaly_budget: int = 7,
    insight_budget: int = 10,
) -> BenchmarkSuite:
    """Build a graded task suite over ``database``.

    Anomaly instances are planted with distinct seeds and graded by
    :func:`anomaly_visibility` (dip ≥ 0.5 stars ⇒ easy, ≤ 0.15 ⇒ hard).
    Insight tasks are graded by the mean absolute effect size of their
    ground-truth facts (≥ 0.5 stars ⇒ easy, ≤ 0.2 ⇒ hard).
    """
    tasks: list[BenchmarkTask] = []
    for index in range(n_anomaly_tasks):
        task = make_scenario1_task(database, seed=seed + 31 * index)
        signal = anomaly_visibility(task)
        tasks.append(
            BenchmarkTask(
                kind="anomaly",
                task=task,
                step_budget=anomaly_budget,
                difficulty=_grade(signal, easy=0.5, hard=0.15),
                signal=signal,
            )
        )
    for __ in range(n_insight_tasks):
        task = make_scenario2_task(database)
        effects = []
        for insight in task.targets:
            inside, outside = verify_insight(database, insight)
            if not (math.isnan(inside) or math.isnan(outside)):
                effects.append(abs(inside - outside))
        signal = sum(effects) / len(effects) if effects else 0.0
        tasks.append(
            BenchmarkTask(
                kind="insight",
                task=task,
                step_budget=insight_budget,
                difficulty=_grade(signal, easy=0.5, hard=0.2),
                signal=signal,
            )
        )
    return BenchmarkSuite(
        database_name=database.name,
        tasks=tuple(tasks),
        metadata={"seed": seed, "summary": dict(database.summary())},
    )
