"""Benchmark harness (S18): timing, sweeps, tables, shared workloads."""

from .harness import (
    Metric,
    Sweep,
    Timer,
    format_series,
    format_table,
    latency_summary,
    paper_vs_measured,
    percentile,
    report,
    time_call,
)
from .sde_benchmark import (
    BenchmarkSuite,
    BenchmarkTask,
    anomaly_visibility,
    generate_suite,
)
from .workloads import (
    bench_database,
    bench_engine,
    bench_recommender_config,
    bench_scale,
    bench_subjects,
    restrict_attribute_count,
    restrict_value_count,
    scenario1_task,
    scenario2_task,
)

__all__ = [
    "BenchmarkSuite",
    "BenchmarkTask",
    "Metric",
    "Sweep",
    "Timer",
    "bench_database",
    "bench_engine",
    "bench_recommender_config",
    "bench_scale",
    "bench_subjects",
    "anomaly_visibility",
    "generate_suite",
    "format_series",
    "format_table",
    "latency_summary",
    "paper_vs_measured",
    "percentile",
    "report",
    "restrict_attribute_count",
    "restrict_value_count",
    "scenario1_task",
    "scenario2_task",
    "time_call",
]
