"""Consistent-hash routing of sessions onto worker slots.

Sessions are sticky: a session's engine state (display history, step log)
lives on exactly one worker, so every request carrying its id must land
on the same slot.  A consistent-hash ring over *stable slot indices*
(0..n_workers-1, not pids) gives that stickiness a form that survives
worker restarts — a restarted worker reoccupies its slot and the mapping
never moves — and balances new session ids across slots.
"""

from __future__ import annotations

import bisect
import hashlib

__all__ = ["HashRing"]


def _point(key: str) -> int:
    return int.from_bytes(hashlib.md5(key.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """A fixed ring of ``n_slots`` slots with ``vnodes`` points per slot."""

    def __init__(self, n_slots: int, vnodes: int = 64) -> None:
        if n_slots < 1:
            raise ValueError(f"n_slots must be >= 1, got {n_slots}")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self._n_slots = n_slots
        points = sorted(
            (_point(f"slot-{slot}:{replica}"), slot)
            for slot in range(n_slots)
            for replica in range(vnodes)
        )
        self._hashes = [h for h, _ in points]
        self._slots = [s for _, s in points]

    @property
    def n_slots(self) -> int:
        return self._n_slots

    def slot_for(self, key: str) -> int:
        """The slot owning ``key`` (deterministic across processes)."""
        index = bisect.bisect_right(self._hashes, _point(key))
        if index == len(self._hashes):
            index = 0
        return self._slots[index]
