"""The worker pool: spawn, route, scatter/gather, supervise, drain.

The :class:`WorkerPool` is the front's handle on the cluster.  It

* exports every dataset into shared memory once and spawns ``N`` workers
  that attach zero-copy views (:mod:`repro.cluster.partition`);
* routes session ops to their owning worker via the consistent-hash ring
  (:mod:`repro.cluster.hashing`) behind a per-worker circuit breaker —
  a dead worker fails fast with a retryable 503 + ``Retry-After``
  instead of hanging callers;
* scatters phase scans across workers by shard and gathers the partial
  count matrices (:mod:`repro.cluster.merge`); a worker that fails
  mid-scatter has its shards re-scanned *exactly* on the survivors
  (every worker holds the full database), so failover changes nothing
  in the merged bytes — only if re-scatter also fails does the result
  degrade (reported per scan) or the request 503;
* runs a heartbeat monitor that detects dead or wedged workers and
  restarts them; the replacement reoccupies the same ring slot and
  replays its own checkpoint store, so routed sessions survive a crash;
* on shutdown drains workers (final checkpoint flush inside the worker),
  joins the processes, and unlinks every shared-memory segment.

Observability crosses the pool: RPCs run inside ``worker.rpc`` spans on
the caller's ambient trace (scatter threads re-activate the captured
context), worker span summaries are scraped for
``/debug/spans/summary``, and :meth:`metric_families` feeds
``worker``-labelled families into ``/metrics``.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import shutil
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from ..core.engine import SubDExConfig
from ..exceptions import ReproError
from ..model.database import SubjectiveDatabase
from ..obs.metrics import MetricFamily
from ..obs.tracing import activate, current_context, current_trace_id, span
from ..resilience.breaker import BreakerOpenError, CircuitBreaker
from ..resilience.deadline import current_deadline
from . import ipc
from .hashing import HashRing
from .merge import PartialScan
from .partition import ShardMap, share_database
from .shm import SegmentRegistry, purge_stale_segments
from .worker import WorkerSpec, worker_main

__all__ = ["ClusterConfig", "WorkerPool", "WorkerUnavailableError"]

_log = logging.getLogger("repro.cluster.supervisor")


class WorkerUnavailableError(ReproError):
    """A worker RPC failed at the transport layer (dead, wedged, restarting)."""

    def __init__(self, worker: int, reason: str, retry_after: float) -> None:
        super().__init__(f"worker {worker} unavailable: {reason}")
        self.worker = worker
        self.retry_after = retry_after


@dataclass(frozen=True)
class ClusterConfig:
    """Knobs of the sharded deployment (``serve --workers N --shards M``)."""

    workers: int = 2
    #: Shard count; ``None`` → ``4 × workers`` so shards outnumber workers
    #: and failover re-scatter spreads a dead worker's load evenly.
    shards: int | None = None
    heartbeat_interval_seconds: float = 0.5
    heartbeat_timeout_seconds: float = 1.0
    #: consecutive failed heartbeats before a live-looking worker is
    #: declared wedged and restarted
    heartbeat_misses: int = 3
    rpc_timeout_seconds: float = 30.0
    start_timeout_seconds: float = 30.0
    restart_backoff_seconds: float = 0.1
    #: per-worker restart budget; beyond it the slot is marked failed and
    #: its sessions answer 503 until the operator intervenes
    max_restarts: int = 8
    breaker_failure_threshold: int = 3
    breaker_reset_seconds: float = 1.0
    retry_after_seconds: float = 1.0

    @property
    def n_shards(self) -> int:
        return self.shards if self.shards is not None else 4 * self.workers

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.shards is not None and self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")


@dataclass
class _WorkerHandle:
    index: int
    socket_path: str
    breaker: CircuitBreaker
    process: multiprocessing.process.BaseProcess | None = None
    state: str = "starting"  # starting | up | restarting | failed
    restarts: int = 0
    heartbeat_misses: int = 0
    rpcs_ok: int = 0
    rpcs_error: int = 0
    #: live-session count cached from the last successful heartbeat ping,
    #: so /metrics never blocks on per-worker IPC
    sessions: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock)


class WorkerPool:
    """Owns the worker processes, their shared memory, and all routing."""

    def __init__(
        self,
        datasets: Mapping[str, tuple[SubjectiveDatabase, SubDExConfig]],
        config: ClusterConfig | None = None,
        *,
        max_sessions: int = 64,
        session_ttl_seconds: float = 1800.0,
        group_cache_capacity: int = 256,
        result_cache_capacity: int = 128,
        checkpoint_dir: str | None = None,
        checkpoint_interval_seconds: float = 30.0,
        tracing_enabled: bool = True,
        slo_config: Mapping[str, Any] | None = None,
        trace_max_spans: int = 512,
    ) -> None:
        if not datasets:
            raise ValueError("WorkerPool needs at least one dataset")
        self.config = config or ClusterConfig()
        self._datasets = dict(datasets)
        self.default_dataset = next(iter(self._datasets))
        self._max_sessions = max_sessions
        self._session_ttl_seconds = session_ttl_seconds
        self._group_cache_capacity = group_cache_capacity
        self._result_cache_capacity = result_cache_capacity
        self._checkpoint_dir = checkpoint_dir
        self._checkpoint_interval_seconds = checkpoint_interval_seconds
        self._tracing_enabled = tracing_enabled
        self._slo_config = dict(slo_config) if slo_config is not None else None
        self._trace_max_spans = trace_max_spans
        #: Fleet trace collection: when ``collect_traces`` is on, every
        #: RPC message asks the worker to ship its finished span tree
        #: back on the reply, and the fragment is handed to
        #: ``trace_sink`` (the front's TraceCollector.add_fragment).
        #: Sink exceptions are swallowed — collection must never fail an
        #: RPC that already succeeded.
        self.collect_traces = False
        self.trace_sink: Callable[[Mapping[str, Any]], None] | None = None
        self.shard_map = ShardMap(self.config.n_shards)
        self.ring = HashRing(self.config.workers)
        self.segments = SegmentRegistry()
        self._run_dir: str | None = None
        self._manifests: dict[str, dict[str, Any]] | None = None
        self._handles: list[_WorkerHandle] = []
        self._ctx = multiprocessing.get_context("spawn")
        self._executor: ThreadPoolExecutor | None = None
        self._monitor: threading.Thread | None = None
        self._stop = threading.Event()
        self._started = False

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        """Export datasets, spawn every worker, wait until all answer ping."""
        if self._started:
            return
        purge_stale_segments()
        self._run_dir = tempfile.mkdtemp(prefix="subdex-cluster-")
        self.segments.install_cleanup()
        self._manifests = {
            name: share_database(db, self.segments)
            for name, (db, _) in self._datasets.items()
        }
        self._executor = ThreadPoolExecutor(
            max_workers=max(4, 2 * self.config.workers),
            thread_name_prefix="subdex-scatter",
        )
        for index in range(self.config.workers):
            handle = _WorkerHandle(
                index=index,
                socket_path=os.path.join(self._run_dir, f"worker-{index}.sock"),
                breaker=CircuitBreaker(
                    f"worker {index}",
                    failure_threshold=self.config.breaker_failure_threshold,
                    reset_seconds=self.config.breaker_reset_seconds,
                ),
            )
            self._handles.append(handle)
            self._spawn(handle)
        deadline = time.monotonic() + self.config.start_timeout_seconds
        for handle in self._handles:
            self._wait_ready(handle, deadline)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="subdex-cluster-monitor", daemon=True
        )
        self._monitor.start()
        self._started = True

    def _spec(self, index: int) -> WorkerSpec:
        assert self._manifests is not None and self._run_dir is not None
        return WorkerSpec(
            index=index,
            n_workers=self.config.workers,
            n_shards=self.config.n_shards,
            socket_path=os.path.join(self._run_dir, f"worker-{index}.sock"),
            manifests=self._manifests,
            configs={
                name: cfg for name, (_, cfg) in self._datasets.items()
            },
            default_dataset=self.default_dataset,
            max_sessions=self._max_sessions,
            session_ttl_seconds=self._session_ttl_seconds,
            group_cache_capacity=self._group_cache_capacity,
            result_cache_capacity=self._result_cache_capacity,
            checkpoint_dir=self._checkpoint_dir,
            checkpoint_interval_seconds=self._checkpoint_interval_seconds,
            tracing_enabled=self._tracing_enabled,
            slo_config=self._slo_config,
            trace_max_spans=self._trace_max_spans,
        )

    def _spawn(self, handle: _WorkerHandle) -> None:
        if os.path.exists(handle.socket_path):
            os.unlink(handle.socket_path)
        process = self._ctx.Process(
            target=worker_main,
            args=(self._spec(handle.index),),
            name=f"subdex-worker-{handle.index}",
            daemon=True,
        )
        process.start()
        handle.process = process
        handle.heartbeat_misses = 0

    def _wait_ready(self, handle: _WorkerHandle, deadline: float) -> None:
        while time.monotonic() < deadline:
            try:
                reply = ipc.request(
                    handle.socket_path,
                    {"op": "ping", "payload": {}},
                    timeout=self.config.heartbeat_timeout_seconds,
                )
                handle.sessions = int(reply["payload"].get("sessions", 0))
                handle.state = "up"
                handle.breaker.record_success()
                return
            except ipc.WorkerIPCError:
                if handle.process is not None and not handle.process.is_alive():
                    break
                time.sleep(0.02)
        handle.state = "failed"
        raise WorkerUnavailableError(
            handle.index,
            "did not become ready in time",
            self.config.retry_after_seconds,
        )

    # -- supervision ---------------------------------------------------------
    def _monitor_loop(self) -> None:
        interval = self.config.heartbeat_interval_seconds
        while not self._stop.wait(interval):
            for handle in list(self._handles):
                if self._stop.is_set() or handle.state == "failed":
                    continue
                process = handle.process
                dead = process is None or not process.is_alive()
                if not dead:
                    try:
                        # bypass the breaker: liveness probing must keep
                        # working while the breaker is open
                        reply = ipc.request(
                            handle.socket_path,
                            {"op": "ping", "payload": {}},
                            timeout=self.config.heartbeat_timeout_seconds,
                        )
                        handle.sessions = int(
                            reply["payload"].get("sessions", 0)
                        )
                        handle.heartbeat_misses = 0
                        handle.state = "up"
                        continue
                    except ipc.WorkerIPCError:
                        handle.heartbeat_misses += 1
                        if handle.heartbeat_misses < self.config.heartbeat_misses:
                            continue
                        # wedged: kill it so the restart starts clean
                        process.kill()
                        process.join(5.0)
                self._restart(handle)

    def _restart(self, handle: _WorkerHandle) -> None:
        with handle.lock:
            if self._stop.is_set() or handle.state == "failed":
                return
            handle.restarts += 1
            if handle.restarts > self.config.max_restarts:
                handle.state = "failed"
                _log.error(
                    "worker %d exceeded %d restarts; marking failed",
                    handle.index,
                    self.config.max_restarts,
                )
                return
            handle.state = "restarting"
            _log.warning(
                "worker %d died; restarting (attempt %d/%d)",
                handle.index,
                handle.restarts,
                self.config.max_restarts,
            )
            if handle.process is not None:
                handle.process.join(0.1)
            time.sleep(self.config.restart_backoff_seconds)
            self._spawn(handle)
            try:
                self._wait_ready(
                    handle,
                    time.monotonic() + self.config.start_timeout_seconds,
                )
            except WorkerUnavailableError:
                _log.error("worker %d failed to come back up", handle.index)

    # -- routing + RPC -------------------------------------------------------
    @property
    def n_workers(self) -> int:
        return self.config.workers

    @property
    def dataset_names(self) -> tuple[str, ...]:
        return tuple(self._datasets)

    def dataset(self, name: str) -> tuple[SubjectiveDatabase, SubDExConfig]:
        """The (database, engine config) pair served under ``name``."""
        return self._datasets[name]

    def route(self, session_id: str) -> int:
        """The ring slot (worker index) owning ``session_id``."""
        return self.ring.slot_for(session_id)

    def _message(self, op: str, payload: Mapping[str, Any]) -> dict[str, Any]:
        deadline = current_deadline()
        remaining = None
        if deadline is not None:
            remaining = max(deadline.remaining, 0.001)
        return {
            "op": op,
            "payload": dict(payload),
            "trace_id": current_trace_id(),
            "deadline_s": remaining,
            "collect": self.collect_traces and self.trace_sink is not None,
        }

    def call(
        self,
        worker: int,
        op: str,
        payload: Mapping[str, Any],
        timeout: float | None = None,
    ) -> tuple[int, dict[str, Any]]:
        """One breaker-guarded RPC; returns the worker's (status, payload).

        Raises :class:`BreakerOpenError` while the worker's breaker is
        open and :class:`WorkerUnavailableError` on transport failure —
        both map to a retryable 503 at the HTTP layer.
        """
        handle = self._handles[worker]
        if handle.state == "failed":
            raise WorkerUnavailableError(
                worker, "worker is failed", self.config.retry_after_seconds
            )
        handle.breaker.before_call()
        with span("worker.rpc", worker=worker, op=op):
            try:
                reply = ipc.request(
                    handle.socket_path,
                    self._message(op, payload),
                    timeout=timeout or self.config.rpc_timeout_seconds,
                )
            except ipc.WorkerIPCError as error:
                handle.rpcs_error += 1
                handle.breaker.record_failure(error)
                raise WorkerUnavailableError(
                    worker, str(error), self.config.retry_after_seconds
                ) from error
        handle.rpcs_ok += 1
        handle.breaker.record_success()
        fragment = reply.get("trace") if isinstance(reply, dict) else None
        sink = self.trace_sink
        if fragment is not None and sink is not None:
            try:
                sink(fragment)
            except Exception:  # noqa: BLE001 - collection must not fail RPCs
                pass
        return reply["status"], reply["payload"]

    # -- scatter/gather ------------------------------------------------------
    def scatter_scan(
        self,
        dataset: str,
        criteria: Any,
        specs: Sequence[Any],
        timeout: float | None = None,
    ) -> tuple[list[PartialScan], dict[str, Any]]:
        """Scan ``criteria`` across all workers; gather the partials.

        Each worker scans its owned shards; shards of workers that fail
        are re-scattered to the survivors (exact — any worker can scan
        any shard).  Returns the partials plus scatter metadata:
        ``degraded`` is True iff some shards ended up uncovered, and
        ``missing_shards`` lists them.  Raises
        :class:`WorkerUnavailableError` if no worker answered at all.
        """
        assert self._executor is not None, "pool not started"
        assignment = {
            w: list(self.shard_map.owned_shards(w, self.n_workers))
            for w in range(self.n_workers)
        }
        ctx = current_context()

        def scan_on(worker: int, shards: list[int]) -> PartialScan:
            with activate(ctx):
                status, payload = self.call(
                    worker,
                    "scan",
                    {
                        "dataset": dataset,
                        "criteria": criteria,
                        "specs": tuple(specs),
                        "shards": tuple(shards),
                    },
                    timeout=timeout,
                )
            if status != 200:
                raise WorkerUnavailableError(
                    worker,
                    f"scan answered {status}",
                    self.config.retry_after_seconds,
                )
            return PartialScan(
                shards=tuple(payload["shards"]),
                group_size=payload["group_size"],
                counts=payload["counts"],
            )

        partials: list[PartialScan] = []
        scanned_by: list[dict[str, Any]] = []
        pending = {w: shards for w, shards in assignment.items() if shards}
        failed_shards: list[int] = []
        failed_workers: set[int] = set()

        def run_round(work: dict[int, list[int]]) -> None:
            futures = {
                w: self._executor.submit(scan_on, w, shards)
                for w, shards in work.items()
            }
            for w, future in futures.items():
                try:
                    partial = future.result()
                except (WorkerUnavailableError, BreakerOpenError):
                    failed_workers.add(w)
                    failed_shards.extend(work[w])
                    continue
                partials.append(partial)
                scanned_by.append(
                    {
                        "worker": w,
                        "shards": list(partial.shards),
                        "rows": partial.group_size,
                    }
                )

        with span("cluster.scatter", dataset=dataset, workers=len(pending)):
            run_round(pending)
            missing = list(failed_shards)
            if missing:
                survivors = [
                    w for w in range(self.n_workers) if w not in failed_workers
                ]
                if survivors:
                    failed_shards.clear()
                    retry = {w: [] for w in survivors}
                    for i, shard in enumerate(missing):
                        retry[survivors[i % len(survivors)]].append(shard)
                    run_round({w: s for w, s in retry.items() if s})
                    missing = list(failed_shards)
        if not partials and missing:
            raise WorkerUnavailableError(
                -1, "no worker answered the scatter", self.config.retry_after_seconds
            )
        meta = {
            "workers": scanned_by,
            "degraded": bool(missing),
            "missing_shards": sorted(missing),
        }
        return partials, meta

    # -- introspection -------------------------------------------------------
    def worker_states(self) -> list[dict[str, Any]]:
        states = []
        for handle in self._handles:
            process = handle.process
            states.append(
                {
                    "worker": handle.index,
                    "state": handle.state,
                    "pid": process.pid if process is not None else None,
                    "alive": bool(process is not None and process.is_alive()),
                    "restarts": handle.restarts,
                    "breaker": handle.breaker.snapshot(),
                    "rpcs": {
                        "ok": handle.rpcs_ok,
                        "error": handle.rpcs_error,
                    },
                }
            )
        return states

    def _scrape_all(
        self, op: str, payload: Mapping[str, Any], timeout: float
    ) -> dict[int, dict[str, Any] | None]:
        """Fan ``op`` out to every worker concurrently; gather best-effort.

        ``timeout`` bounds the *whole* scrape, not each worker: one wedged
        worker costs at most ``timeout`` total, regardless of pool size.
        Unreachable or late workers map to ``None``.
        """
        assert self._executor is not None, "pool not started"
        futures = {
            handle.index: self._executor.submit(
                ipc.request,
                handle.socket_path,
                {"op": op, "payload": dict(payload)},
                timeout=timeout,
            )
            for handle in self._handles
        }
        deadline = time.monotonic() + timeout
        out: dict[int, dict[str, Any] | None] = {}
        for index, future in futures.items():
            try:
                reply = future.result(max(0.0, deadline - time.monotonic()))
                out[index] = reply["payload"]
            except (ipc.WorkerIPCError, FuturesTimeoutError):
                out[index] = None
        return out

    def stats(
        self, limit: int | None = None, timeout: float = 1.0
    ) -> dict[str, Any]:
        """Best-effort per-worker stats scrape (skips unreachable workers)."""
        return {
            str(index): payload if payload is not None else {"unreachable": True}
            for index, payload in self._scrape_all(
                "stats", {"limit": limit}, timeout
            ).items()
        }

    def slo_totals(
        self, timeout: float = 1.0
    ) -> dict[int, dict[str, Any] | None]:
        """Best-effort per-worker SLO window scrape (None = unreachable).

        Returns each reachable worker's per-class per-window raw counts;
        the front merges them by addition into the fleet scorecard (the
        math lives in :func:`repro.slo.tracker.scorecard_from_totals`).
        """
        out: dict[int, dict[str, Any] | None] = {}
        for index, payload in self._scrape_all("slo", {}, timeout).items():
            out[index] = (
                payload.get("totals") if payload is not None else None
            )
        return out

    def live_sessions(self, timeout: float = 2.0) -> list[dict[str, Any]]:
        """Merge every reachable worker's session list (for GET /sessions)."""
        merged: list[dict[str, Any]] = []
        for index, payload in sorted(
            self._scrape_all("sessions.list", {}, timeout).items()
        ):
            if payload is None:
                continue
            for summary in payload["sessions"]:
                summary["worker"] = index
                merged.append(summary)
        return merged

    def metric_families(self) -> list[MetricFamily]:
        """``worker``-labelled families for the front's ``/metrics``."""
        up = MetricFamily(
            "subdex_worker_up",
            "gauge",
            "Worker liveness (1 up, 0 down/restarting/failed).",
        )
        restarts = MetricFamily(
            "subdex_worker_restarts_total",
            "counter",
            "Worker restarts by the supervisor.",
        )
        rpcs = MetricFamily(
            "subdex_worker_rpcs_total",
            "counter",
            "Front-to-worker RPCs by worker and outcome.",
        )
        sessions = MetricFamily(
            "subdex_worker_sessions",
            "gauge",
            "Live sessions owned by each worker.",
        )
        for handle in self._handles:
            alive = (
                handle.state == "up"
                and handle.process is not None
                and handle.process.is_alive()
            )
            up.add(1.0 if alive else 0.0, worker=handle.index)
            restarts.add(handle.restarts, worker=handle.index)
            rpcs.add(handle.rpcs_ok, worker=handle.index, outcome="ok")
            rpcs.add(handle.rpcs_error, worker=handle.index, outcome="error")
            if alive:
                # cached from the heartbeat monitor's last ping — /metrics
                # must never block on per-worker IPC
                sessions.add(handle.sessions, worker=handle.index)
        return [up, restarts, rpcs, sessions]

    # -- shutdown ------------------------------------------------------------
    def shutdown(self, drain_seconds: float = 10.0) -> None:
        """Drain and join every worker, then unlink all shared memory."""
        if not self._started and not self._handles:
            return
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(
                self.config.heartbeat_interval_seconds
                + self.config.heartbeat_timeout_seconds
                + 1.0
            )
        deadline = time.monotonic() + drain_seconds
        for handle in self._handles:
            try:
                ipc.request(
                    handle.socket_path,
                    {"op": "shutdown", "payload": {"drain": True}},
                    timeout=min(2.0, drain_seconds),
                )
            except ipc.WorkerIPCError:
                pass
        for handle in self._handles:
            process = handle.process
            if process is None:
                continue
            process.join(max(0.0, deadline - time.monotonic()))
            if process.is_alive():
                process.terminate()
                process.join(2.0)
            if process.is_alive():
                process.kill()
                process.join(1.0)
            handle.state = "stopped"
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
        self.segments.unlink_all()
        if self._run_dir is not None:
            shutil.rmtree(self._run_dir, ignore_errors=True)
        self._started = False
