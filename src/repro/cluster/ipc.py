"""Front↔worker IPC: length-prefixed pickles over ``AF_UNIX`` sockets.

One request/response per connection keeps failure handling trivial: a
worker that dies mid-call surfaces as a connection error on *this* call
only, with no stale pooled connections to invalidate after its restart.
Unix-socket connects cost microseconds against engine work costing
milliseconds, so the simplicity is free.

Messages are dicts pickled with protocol 5.  Pickle is acceptable here —
and only here — because both ends are the same trusted process tree: the
socket directory is created ``0700`` by the supervisor and only its own
spawned workers bind inside it.  Every request carries the front's
``trace_id`` and remaining deadline so observability and time budgets
cross the process boundary.
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any, Mapping

from ..exceptions import ReproError

__all__ = [
    "MAX_MESSAGE_BYTES",
    "WorkerIPCError",
    "read_message",
    "request",
    "write_message",
]

#: Upper bound on one message — far above any real scan reply, low enough
#: to fail fast on a corrupt length prefix.
MAX_MESSAGE_BYTES = 1 << 30

_HEADER = struct.Struct("!I")


class WorkerIPCError(ReproError):
    """The worker connection failed (refused, reset, timed out, EOF)."""


def write_message(sock: socket.socket, message: Mapping[str, Any]) -> None:
    payload = pickle.dumps(dict(message), protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_MESSAGE_BYTES:
        raise WorkerIPCError(
            f"message of {len(payload)} bytes exceeds the IPC limit"
        )
    try:
        sock.sendall(_HEADER.pack(len(payload)) + payload)
    except OSError as error:
        raise WorkerIPCError(f"send failed: {error}") from error


def _read_exactly(sock: socket.socket, n: int) -> bytes:
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        try:
            chunk = sock.recv(min(remaining, 1 << 20))
        except OSError as error:
            raise WorkerIPCError(f"receive failed: {error}") from error
        if not chunk:
            raise WorkerIPCError(
                f"connection closed mid-message ({n - remaining}/{n} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_message(sock: socket.socket) -> dict[str, Any]:
    (length,) = _HEADER.unpack(_read_exactly(sock, _HEADER.size))
    if length > MAX_MESSAGE_BYTES:
        raise WorkerIPCError(f"message length {length} exceeds the IPC limit")
    message = pickle.loads(_read_exactly(sock, length))
    if not isinstance(message, dict):
        raise WorkerIPCError(
            f"expected a dict message, got {type(message).__name__}"
        )
    return message


def request(
    socket_path: str,
    message: Mapping[str, Any],
    timeout: float | None = None,
) -> dict[str, Any]:
    """One round trip to the worker listening on ``socket_path``."""
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(timeout)
    try:
        try:
            sock.connect(socket_path)
        except OSError as error:
            raise WorkerIPCError(
                f"cannot reach worker at {socket_path}: {error}"
            ) from error
        write_message(sock, message)
        return read_message(sock)
    finally:
        sock.close()
