"""Dataset partitioning: shared-memory export/attach + shard assignment.

**Export/attach.**  :func:`share_database` copies a
:class:`~repro.model.database.SubjectiveDatabase` into shared-memory
segments and returns a picklable *manifest*; :func:`attach_database`
rebuilds the database in another process with the heavy arrays as
zero-copy views over those segments.  Numeric data (``float64``) and
categorical codes (``int32``) travel by segment; small metadata (schemas,
category lists, multi-valued row sets) travels pickled inside the
manifest.  The record→entity alignment arrays are exported too, so the
attaching side skips the per-record id-resolution loops entirely.

**Sharding.**  A :class:`ShardMap` assigns every *reviewer* (and thereby
every rating record, via the alignment) to one of ``n_shards`` shards.
Shards partition the record set exactly — scanning each shard and adding
the per-shard count matrices reproduces a full scan bit-for-bit, which is
what makes scatter/gather phase scans byte-identical to the
single-process path (see :mod:`repro.cluster.merge`).  Workers *own*
shards (``shard % n_workers == worker``) for routing purposes but every
worker holds the full attached database, so any worker can scan any
shard — the supervisor exploits this for exact failover when a worker
dies mid-scatter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from ..db.column import (
    CategoricalColumn,
    Column,
    MultiValuedColumn,
    NumericColumn,
)
from ..db.table import Table
from ..model.database import Side, SubjectiveDatabase
from .shm import SegmentRegistry, attach_array, share_array

__all__ = [
    "ShardMap",
    "attach_database",
    "attach_table",
    "share_database",
    "share_table",
]


def _share_column(column: Column, registry: SegmentRegistry) -> dict[str, Any]:
    if isinstance(column, NumericColumn):
        return {"kind": "numeric", "data": share_array(column.data, registry)}
    if isinstance(column, CategoricalColumn):
        return {
            "kind": "categorical",
            "codes": share_array(column.codes, registry),
            "categories": list(column.categories),
        }
    if isinstance(column, MultiValuedColumn):
        # multi-valued columns live on the (small) entity tables; their
        # per-row frozensets ride inside the manifest itself
        return {"kind": "multi", "rows": column.to_list()}
    raise TypeError(f"cannot share column of type {type(column).__name__}")


def _attach_column(
    manifest: Mapping[str, Any], registry: SegmentRegistry
) -> Column:
    kind = manifest["kind"]
    if kind == "numeric":
        return NumericColumn(attach_array(manifest["data"], registry))
    if kind == "categorical":
        return CategoricalColumn(
            attach_array(manifest["codes"], registry), manifest["categories"]
        )
    if kind == "multi":
        return MultiValuedColumn(
            [frozenset(row or ()) for row in manifest["rows"]]
        )
    raise TypeError(f"unknown shared column kind {kind!r}")


def share_table(table: Table, registry: SegmentRegistry) -> dict[str, Any]:
    return {
        "schema": table.schema,  # frozen dataclasses: picklable as-is
        "columns": {
            name: _share_column(table.column(name), registry)
            for name in table.attribute_names
        },
    }


def attach_table(
    manifest: Mapping[str, Any], registry: SegmentRegistry
) -> Table:
    return Table(
        manifest["schema"],
        {
            name: _attach_column(column, registry)
            for name, column in manifest["columns"].items()
        },
    )


def share_database(
    database: SubjectiveDatabase, registry: SegmentRegistry
) -> dict[str, Any]:
    """Export a validated database into shared memory; returns its manifest."""
    user_rows = database.entity_rows_for_ratings(Side.REVIEWER)
    item_rows = database.entity_rows_for_ratings(Side.ITEM)
    return {
        "name": database.name,
        "dimensions": tuple(database.dimensions),
        "scale": database.scale,
        "user_key": database.key(Side.REVIEWER),
        "item_key": database.key(Side.ITEM),
        "reviewers": share_table(database.reviewers, registry),
        "items": share_table(database.items, registry),
        "ratings": share_table(database.ratings, registry),
        "alignment": {
            "user_rows": share_array(user_rows, registry),
            "item_rows": share_array(item_rows, registry),
        },
    }


def attach_database(
    manifest: Mapping[str, Any], registry: SegmentRegistry
) -> SubjectiveDatabase:
    """Rebuild a shared database; heavy columns are zero-copy views."""
    alignment = (
        attach_array(manifest["alignment"]["user_rows"], registry),
        attach_array(manifest["alignment"]["item_rows"], registry),
    )
    return SubjectiveDatabase(
        attach_table(manifest["reviewers"], registry),
        attach_table(manifest["items"], registry),
        attach_table(manifest["ratings"], registry),
        manifest["dimensions"],
        scale=manifest["scale"],
        user_key=manifest["user_key"],
        item_key=manifest["item_key"],
        name=manifest["name"],
        alignment=alignment,
    )


@dataclass(frozen=True)
class ShardMap:
    """Deterministic reviewer→shard assignment for one database.

    Reviewer row ``r`` lands in shard ``r % n_shards`` — balanced, stable
    across processes, and requiring no data movement.  A rating record's
    shard is its reviewer's, so one reviewer's records never straddle
    shards (sessions grouped by reviewer attributes stay shard-local).
    """

    n_shards: int

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")

    def record_shards(self, database: SubjectiveDatabase) -> np.ndarray:
        """Per-rating-record shard index (``int64``, length ``n_ratings``)."""
        user_rows = database.entity_rows_for_ratings(Side.REVIEWER)
        return user_rows % self.n_shards

    def owned_shards(self, worker: int, n_workers: int) -> tuple[int, ...]:
        """The shards worker ``worker`` of ``n_workers`` owns by default."""
        if not 0 <= worker < n_workers:
            raise ValueError(
                f"worker must be in [0, {n_workers}), got {worker}"
            )
        return tuple(
            shard
            for shard in range(self.n_shards)
            if shard % n_workers == worker
        )
